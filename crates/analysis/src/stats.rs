//! Summary statistics for repeated seeded experiments.

use serde::{Deserialize, Serialize};

/// Streaming summary statistics (Welford's algorithm).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 for an empty summary).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample standard deviation (0 with fewer than two observations).
    pub fn stddev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / (self.count - 1) as f64).sqrt()
        }
    }

    /// Minimum observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Half-width of the ~95 % confidence interval of the mean (normal
    /// approximation; 0 with fewer than two observations).
    pub fn ci95_half_width(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            1.96 * self.stddev() / (self.count as f64).sqrt()
        }
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

/// The Wilson score interval for a binomial proportion: the `(lo, hi)`
/// confidence bounds on the true success probability after observing
/// `successes` out of `trials`, at normal quantile `z` (1.96 ≈ 95 %).
///
/// Unlike the normal approximation, the Wilson interval stays inside
/// `[0, 1]` and remains usable at 0 or `trials` successes — exactly the
/// regimes the false-isolation sweeps probe. Returns `(0, 1)` for an
/// empty sample.
///
/// # Panics
///
/// Panics if `successes > trials` or `z` is not positive and finite.
pub fn wilson_interval(successes: u64, trials: u64, z: f64) -> (f64, f64) {
    assert!(successes <= trials, "more successes than trials");
    assert!(z.is_finite() && z > 0.0, "invalid z: {z}");
    if trials == 0 {
        return (0.0, 1.0);
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = p + z2 / (2.0 * n);
    let half = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    (
        ((center - half) / denom).max(0.0),
        ((center + half) / denom).min(1.0),
    )
}

/// The `q`-th percentile (0..=100, nearest-rank) of a sample.
///
/// Returns `None` for an empty sample.
///
/// # Panics
///
/// Panics if `q` exceeds 100 or any value is NaN.
pub fn percentile(values: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=100.0).contains(&q), "percentile out of range");
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in sample"));
    let rank = ((q / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    Some(sorted[rank])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_computes_known_values() {
        let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stddev() - 2.138089935299395).abs() < 1e-9);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert!(s.ci95_half_width() > 0.0);
    }

    #[test]
    fn empty_summary_is_safe() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn extend_accumulates() {
        let mut s = Summary::new();
        s.extend([1.0, 2.0, 3.0]);
        s.extend([4.0]);
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn percentiles() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 50.0), Some(51.0)); // nearest rank
        assert_eq!(percentile(&v, 100.0), Some(100.0));
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn percentile_rejects_bad_q() {
        let _ = percentile(&[1.0], 101.0);
    }

    #[test]
    fn wilson_matches_hand_computed_textbook_values() {
        // 3/10 at 95 %: the classic worked example, (0.1078, 0.6032).
        let (lo, hi) = wilson_interval(3, 10, 1.96);
        assert!((lo - 0.107_787).abs() < 1e-5, "lo = {lo}");
        assert!((hi - 0.603_227).abs() < 1e-5, "hi = {hi}");
        // 0/20 at 95 %: lo pinned to 0, hi = z²/(n + z²) = 0.16113.
        let (lo, hi) = wilson_interval(0, 20, 1.96);
        assert_eq!(lo, 0.0);
        assert!((hi - 0.161_131).abs() < 1e-5, "hi = {hi}");
        // n/n mirrors 0/n around 1/2.
        let (lo, hi) = wilson_interval(20, 20, 1.96);
        assert!((hi - 1.0).abs() < 1e-12, "hi = {hi}");
        assert!((lo - (1.0 - 0.161_131)).abs() < 1e-5, "lo = {lo}");
    }

    #[test]
    fn wilson_interval_contains_the_point_estimate_and_shrinks() {
        for (s, t) in [(1u64, 8u64), (50, 100), (499, 500)] {
            let p = s as f64 / t as f64;
            let (lo, hi) = wilson_interval(s, t, 1.96);
            assert!(lo <= p && p <= hi);
            let (lo10, hi10) = wilson_interval(s * 10, t * 10, 1.96);
            assert!(hi10 - lo10 < hi - lo, "more trials tighten the interval");
        }
        assert_eq!(wilson_interval(0, 0, 1.96), (0.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "more successes than trials")]
    fn wilson_rejects_impossible_counts() {
        let _ = wilson_interval(5, 4, 1.96);
    }
}
