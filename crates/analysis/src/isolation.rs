//! Time to incorrect isolation under abnormal transients (paper Table 4).
//!
//! Under the adverse external conditions of Table 3 (bus-wide transient
//! bursts with short times to reappearance), the p/r algorithm eventually
//! correlates the *external* transients and incorrectly isolates healthy
//! nodes. The paper measures how long each criticality class survives:
//! lower criticality levels tolerate longer abnormal periods, which is the
//! availability argument for criticality-weighted penalties.

use serde::{Deserialize, Serialize};

use tt_core::{DiagJob, ProtocolConfig};
use tt_fault::{DisturbanceNode, TransientScenario};
use tt_sim::{ClusterBuilder, Nanos, NodeId, TraceMode};

/// The outcome of one time-to-isolation measurement.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IsolationMeasurement {
    /// The scenario that was replayed.
    pub scenario: String,
    /// The criticality level `s` of the observed class.
    pub criticality: u64,
    /// The penalty threshold `P` in force.
    pub penalty_threshold: u64,
    /// Simulated time from the first burst to the isolation decision, or
    /// `None` if the whole scenario passed without isolating anyone.
    pub time_to_isolation: Option<Nanos>,
    /// Penalty counter of the first isolated node at the end of the run
    /// (or the maximum penalty reached if nobody was isolated).
    pub final_penalty: u64,
}

/// Replays `scenario` against a cluster whose nodes all host functions of
/// criticality `s`, with thresholds `p` and `r` (from the Table 2 tuning),
/// and measures the time until the first (incorrect) isolation decision.
///
/// Every node is healthy — all faults are external bus transients — so any
/// isolation is by definition incorrect.
pub fn measure_time_to_isolation(
    scenario: &TransientScenario,
    s: u64,
    p: u64,
    r: u64,
    round: Nanos,
    n_nodes: usize,
) -> IsolationMeasurement {
    let config = ProtocolConfig::builder(n_nodes)
        .penalty_threshold(p)
        .reward_threshold(r)
        .uniform_criticality(s)
        .build()
        .expect("tuned parameters are valid");
    let sched = tt_sim::CommunicationSchedule::new(n_nodes, round).expect("valid schedule");
    // Bursts start once the protocol pipeline is warm, at a round boundary.
    let offset_rounds = 8u64;
    let offset = round * offset_rounds;
    let pipeline = scenario.install(DisturbanceNode::new(0), &sched, offset);
    let mut cluster = ClusterBuilder::new(n_nodes)
        .round_length(round)
        .trace_mode(TraceMode::Off)
        .build_with_jobs(
            |id| Box::new(DiagJob::with_logging(id, config.clone(), false)),
            Box::new(pipeline),
        );
    // Run through the scenario plus a slack of one diagnosis pipeline.
    let end = scenario.duration(offset) + round * 16;
    let total_rounds = end.as_nanos().div_ceil(round.as_nanos());
    let observer = NodeId::new(1);
    cluster.run_until(total_rounds, |c| {
        let job: Result<&DiagJob, _> = c.job_as(observer);
        job.map(|j| !j.isolations().is_empty()).unwrap_or(false)
    });
    let job: &DiagJob = cluster.job_as(observer).expect("observer runs DiagJob");
    let (time_to_isolation, final_penalty) = match job.isolations().first() {
        Some(event) => {
            let decided = event.decided_at.start_time(round);
            (
                Some(decided.saturating_sub(offset)),
                job.penalty(event.node),
            )
        }
        None => {
            let max_penalty = NodeId::all(n_nodes).map(|i| job.penalty(i)).max();
            (None, max_penalty.unwrap_or(0))
        }
    };
    IsolationMeasurement {
        scenario: scenario.name().to_string(),
        criticality: s,
        penalty_threshold: p,
        time_to_isolation,
        final_penalty,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: Nanos = Nanos::from_micros(2_500);

    #[test]
    fn automotive_sc_isolated_around_half_a_second() {
        // Paper Table 4: SC isolated after 0.518 s. In the simulator the
        // second burst's first diagnosed round pushes 160 + 40 > 197 at
        // t = 510 ms + one round + diagnosis lag ≈ 0.5175 s.
        let m = measure_time_to_isolation(
            &TransientScenario::blinking_light(),
            40,
            197,
            1_000_000,
            T,
            4,
        );
        let t = m
            .time_to_isolation
            .expect("SC must be isolated")
            .as_secs_f64();
        assert!((0.50..0.54).contains(&t), "got {t}");
    }

    #[test]
    fn automotive_nsr_survives_much_longer_than_sc() {
        let sc = measure_time_to_isolation(
            &TransientScenario::blinking_light(),
            40,
            197,
            1_000_000,
            T,
            4,
        );
        let nsr = measure_time_to_isolation(
            &TransientScenario::blinking_light(),
            1,
            197,
            1_000_000,
            T,
            4,
        );
        let (t_sc, t_nsr) = (
            sc.time_to_isolation.unwrap().as_secs_f64(),
            nsr.time_to_isolation.unwrap().as_secs_f64(),
        );
        // Paper: 0.518 s vs 24.475 s — roughly 50x.
        assert!(t_nsr / t_sc > 30.0, "sc {t_sc}, nsr {t_nsr}");
        assert!((20.0..30.0).contains(&t_nsr), "nsr {t_nsr}");
    }

    #[test]
    fn aerospace_sc_isolated_by_second_lightning_burst() {
        // Paper Table 4: 0.205 s. The second 40 ms burst starts at 200 ms;
        // one more diagnosed faulty round exceeds P = 17.
        let m =
            measure_time_to_isolation(&TransientScenario::lightning_bolt(), 1, 17, 1_000_000, T, 4);
        let t = m.time_to_isolation.expect("isolated").as_secs_f64();
        assert!((0.19..0.23).contains(&t), "got {t}");
    }

    #[test]
    fn immediate_isolation_baseline_dies_on_first_burst() {
        // Without the p/r delay (P = 0 is invalid, so use P = 1 with high
        // criticality: isolation on the first fault), a single burst kills
        // every node — the availability argument of Sec. 9.
        let m =
            measure_time_to_isolation(&TransientScenario::blinking_light(), 2, 1, 1_000_000, T, 4);
        let t = m.time_to_isolation.expect("isolated").as_secs_f64();
        assert!(t < 0.02, "first burst, got {t}");
    }

    #[test]
    fn benign_scenario_never_isolates() {
        // A single short burst within the reward horizon isolates nobody.
        let one = TransientScenario::new(
            "one burst",
            vec![tt_fault::scenario::BurstSegment {
                burst: Nanos::from_millis(10),
                reappearance: Nanos::from_millis(500),
                count: 1,
            }],
        );
        let m = measure_time_to_isolation(&one, 1, 197, 1_000_000, T, 4);
        assert_eq!(m.time_to_isolation, None);
        assert_eq!(m.final_penalty, 4, "four faulty rounds remembered");
    }
}
