//! The reward-threshold trade-off model (paper Fig. 3).
//!
//! The p/r algorithm correlates two faults of the same node when the second
//! appears within `R` rounds (i.e. `R × T` time) of the first. Choosing `R`
//! trades off two risks (Sec. 9):
//!
//! * a *small* `R` fails to correlate genuine intermittent faults with a
//!   large time to reappearance (an unhealthy node escapes);
//! * a *large* `R` falsely correlates independent external transients (a
//!   healthy node accumulates penalties).
//!
//! Modelling independent external transients as a Poisson process with rate
//! `λ`, the probability of falsely correlating a second transient within
//! the window is `1 − exp(−λ·R·T)`. The paper's operating point — `R =
//! 10^6`, `T = 2.5 ms`, window `R·T ≈ 42 min` — keeps this probability
//! below 1 % for the transient rates of its environments, which pins
//! `λ ≲ 1.4 × 10⁻² faults/hour`; the default rate sweep below brackets that
//! regime.

use serde::{Deserialize, Serialize};

use tt_sim::Nanos;

/// One point of a Fig. 3 curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorrelationPoint {
    /// The reward threshold `R` (rounds).
    pub reward_threshold: u64,
    /// The correlation window `R × T`.
    pub window: Nanos,
    /// Probability of falsely correlating a second independent transient.
    pub probability: f64,
}

/// Probability that a second independent transient arrives within the
/// window `R × T`, for Poisson arrivals at `rate_per_hour`.
///
/// # Panics
///
/// Panics if `rate_per_hour` is negative or not finite.
pub fn correlation_probability(rate_per_hour: f64, reward_threshold: u64, round: Nanos) -> f64 {
    assert!(
        rate_per_hour.is_finite() && rate_per_hour >= 0.0,
        "invalid rate: {rate_per_hour}"
    );
    let window_hours = round.as_secs_f64() * reward_threshold as f64 / 3600.0;
    1.0 - (-rate_per_hour * window_hours).exp()
}

/// The largest reward threshold keeping the false-correlation probability
/// at or below `target` for the given transient rate.
///
/// Returns 0 if even `R = 1` exceeds the target.
///
/// # Panics
///
/// Panics if `target` is not within `(0, 1)` or the rate is invalid.
pub fn max_reward_threshold(rate_per_hour: f64, round: Nanos, target: f64) -> u64 {
    assert!((0.0..1.0).contains(&target) && target > 0.0, "bad target");
    assert!(
        rate_per_hour.is_finite() && rate_per_hour > 0.0,
        "invalid rate: {rate_per_hour}"
    );
    // 1 - exp(-λ·R·T) <= target  ⇔  R <= -ln(1 - target) / (λ·T)
    let t_hours = round.as_secs_f64() / 3600.0;
    let r = -(1.0 - target).ln() / (rate_per_hour * t_hours);
    r.floor() as u64
}

/// Generates one Fig. 3 curve: false-correlation probability as a function
/// of `R` (log-spaced through `r_values`) for a fixed transient rate.
pub fn curve(
    rate_per_hour: f64,
    round: Nanos,
    r_values: impl IntoIterator<Item = u64>,
) -> Vec<CorrelationPoint> {
    r_values
        .into_iter()
        .map(|r| CorrelationPoint {
            reward_threshold: r,
            window: round * r,
            probability: correlation_probability(rate_per_hour, r, round),
        })
        .collect()
}

/// The default log-spaced `R` sweep used by the Fig. 3 bench (10^2…10^8,
/// three points per decade).
pub fn default_r_sweep() -> Vec<u64> {
    let mut out = Vec::new();
    for exp in 2..=8u32 {
        let base = 10u64.pow(exp);
        for mult in [1, 2, 5] {
            let r = base * mult;
            if r <= 10u64.pow(8) {
                out.push(r);
            }
        }
    }
    out.push(10u64.pow(8));
    out.dedup();
    out
}

/// The default transient-rate sweep (faults/hour) bracketing the paper's
/// implied operating regime.
pub fn default_rates() -> Vec<f64> {
    vec![0.001, 0.005, 0.014, 0.05, 0.2]
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: Nanos = Nanos::from_micros(2_500);

    #[test]
    fn paper_operating_point_is_below_one_percent() {
        // R = 10^6 rounds of 2.5 ms => 2500 s ≈ 41.7 min, as in Sec. 9.
        let window = T * 1_000_000;
        assert_eq!(window.as_secs_f64(), 2500.0);
        assert!((window.as_secs_f64() / 60.0 - 41.7).abs() < 0.1);
        // At the implied rate the false-correlation probability is < 1 %.
        let p = correlation_probability(0.014, 1_000_000, T);
        assert!(p < 0.01, "p = {p}");
    }

    #[test]
    fn probability_is_monotone_in_r_and_rate() {
        let p1 = correlation_probability(0.01, 10_000, T);
        let p2 = correlation_probability(0.01, 1_000_000, T);
        let p3 = correlation_probability(0.1, 1_000_000, T);
        assert!(p1 < p2 && p2 < p3);
        assert_eq!(correlation_probability(0.0, 1_000_000, T), 0.0);
    }

    #[test]
    fn probability_saturates_at_one() {
        let p = correlation_probability(1e6, u64::MAX / 2, T);
        assert!((p - 1.0).abs() < 1e-12);
    }

    #[test]
    fn max_reward_threshold_inverts_probability() {
        for rate in [0.01, 0.1, 1.0] {
            let r = max_reward_threshold(rate, T, 0.01);
            assert!(correlation_probability(rate, r, T) <= 0.01);
            assert!(correlation_probability(rate, r + r / 10 + 1, T) > 0.01);
        }
    }

    #[test]
    fn curve_is_well_formed() {
        let c = curve(0.014, T, default_r_sweep());
        assert!(c.len() > 15);
        assert!(c.windows(2).all(|w| {
            w[0].reward_threshold < w[1].reward_threshold && w[0].probability <= w[1].probability
        }));
        // The point nearest the paper's choice sits below 1 %.
        let near = c
            .iter()
            .find(|p| p.reward_threshold == 1_000_000)
            .expect("10^6 in sweep");
        assert!(near.probability < 0.01);
    }

    #[test]
    #[should_panic(expected = "invalid rate")]
    fn negative_rate_rejected() {
        let _ = correlation_probability(-1.0, 10, T);
    }
}
