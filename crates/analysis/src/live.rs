//! Incremental aggregation of live feeds for `ttdiag watch` and
//! `ttdiag tail`.
//!
//! A live subscriber consumes [`Framed`] events from a `StreamHub` feed
//! (possibly with gaps, if it fell behind and the hub evicted frames from
//! its ring). [`GapTracker`] verifies sequence continuity and accounts for
//! any gap, and [`LiveJobView`] folds the `progress` feed into a one-line
//! terminal summary per update — the incremental counterpart of the batch
//! report renderers.

use tt_sim::{Framed, ProgressEvent};

/// Sequence-continuity accounting for one feed subscription.
///
/// Feed sequence numbers are feed-global and monotone, so a subscriber
/// that keeps up sees consecutive `seq` values; any jump is exactly the
/// number of frames the hub evicted for that subscriber.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GapTracker {
    next: Option<u64>,
    /// Frames observed.
    pub seen: u64,
    /// Frames skipped over (sum of all observed seq gaps).
    pub missed: u64,
}

impl GapTracker {
    /// A tracker that has seen nothing yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one observed sequence number; returns the gap before it
    /// (0 when contiguous).
    pub fn observe(&mut self, seq: u64) -> u64 {
        let gap = match self.next {
            Some(expected) => seq.saturating_sub(expected),
            // The first frame a late subscriber sees is not a drop.
            None => 0,
        };
        self.next = Some(seq + 1);
        self.seen += 1;
        self.missed += gap;
        gap
    }

    /// Whether every observed frame was contiguous.
    pub fn gap_free(&self) -> bool {
        self.missed == 0
    }
}

/// Incremental state of one job, folded from the `progress` feed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LiveJobView {
    /// The job id this view follows.
    pub job: u64,
    /// Job kind label, once a `job_started` event was seen.
    pub kind: String,
    /// Items settled so far.
    pub completed: u64,
    /// Total items (0 until the first event carrying it).
    pub total: u64,
    /// Items quarantined so far.
    pub quarantined: u64,
    /// Checkpoints written so far.
    pub checkpoint_seq: u64,
    /// Most recent per-chunk throughput (items/s).
    pub items_per_sec: f64,
    /// Terminal verdict, once `job_finished` was seen.
    pub passed: Option<bool>,
    /// Whether the job halted (resumable) rather than finished.
    pub halted: bool,
    /// Sequence continuity of the watched feed.
    pub gaps: GapTracker,
}

impl LiveJobView {
    /// A view following job `job`.
    pub fn new(job: u64) -> Self {
        LiveJobView {
            job,
            ..LiveJobView::default()
        }
    }

    /// Whether the job reached a terminal or parked state.
    pub fn done(&self) -> bool {
        self.passed.is_some() || self.halted
    }

    /// Folds one framed progress event into the view. Frames for other
    /// jobs are counted for gap accounting but otherwise ignored; returns
    /// whether the view changed (i.e. the frame was for this job).
    pub fn apply(&mut self, frame: &Framed<ProgressEvent>) -> bool {
        self.gaps.observe(frame.seq);
        if frame.event.job() != self.job {
            return false;
        }
        match &frame.event {
            ProgressEvent::JobStarted {
                kind,
                total,
                resumed_from,
                ..
            } => {
                self.kind = kind.clone();
                self.total = *total;
                self.completed = *resumed_from;
                self.halted = false;
            }
            ProgressEvent::Settled {
                completed,
                total,
                quarantined,
                ..
            } => {
                self.completed = *completed;
                self.total = *total;
                self.quarantined = *quarantined;
            }
            ProgressEvent::Chunk {
                completed,
                total,
                quarantined,
                checkpoint_seq,
                items_per_sec,
                ..
            } => {
                self.completed = *completed;
                self.total = *total;
                self.quarantined = *quarantined;
                self.checkpoint_seq = *checkpoint_seq;
                self.items_per_sec = *items_per_sec;
            }
            ProgressEvent::Halted {
                completed,
                checkpoint_seq,
                ..
            } => {
                self.completed = *completed;
                self.checkpoint_seq = *checkpoint_seq;
                self.halted = true;
            }
            ProgressEvent::JobFinished {
                completed,
                total,
                quarantined,
                passed,
                ..
            } => {
                self.completed = *completed;
                self.total = *total;
                self.quarantined = *quarantined;
                self.passed = Some(*passed);
            }
        }
        true
    }

    /// The one-line terminal summary `ttdiag watch` redraws per update.
    pub fn render_line(&self) -> String {
        let kind = if self.kind.is_empty() {
            "job"
        } else {
            &self.kind
        };
        let mut line = format!(
            "job {} [{kind}] {}/{} settled",
            self.job, self.completed, self.total
        );
        if self.quarantined > 0 {
            line.push_str(&format!(", {} quarantined", self.quarantined));
        }
        if self.checkpoint_seq > 0 {
            line.push_str(&format!(", checkpoint #{}", self.checkpoint_seq));
        }
        if self.items_per_sec > 0.0 {
            line.push_str(&format!(", {:.1} items/s", self.items_per_sec));
        }
        match self.passed {
            Some(true) => line.push_str(" — PASS"),
            Some(false) => line.push_str(" — FAIL"),
            None if self.halted => line.push_str(" — halted (resumable)"),
            None => {}
        }
        if self.gaps.missed > 0 {
            line.push_str(&format!(" [{} frames missed]", self.gaps.missed));
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(seq: u64, event: ProgressEvent) -> Framed<ProgressEvent> {
        Framed { seq, event }
    }

    #[test]
    fn gap_tracker_counts_exact_gaps() {
        let mut t = GapTracker::new();
        // A late joiner's first frame is not a gap.
        assert_eq!(t.observe(5), 0);
        assert_eq!(t.observe(6), 0);
        assert_eq!(t.observe(9), 2);
        assert_eq!(t.observe(10), 0);
        assert_eq!(t.seen, 4);
        assert_eq!(t.missed, 2);
        assert!(!t.gap_free());
        assert!(GapTracker::new().gap_free());
    }

    #[test]
    fn view_folds_a_job_lifecycle() {
        let mut view = LiveJobView::new(3);
        assert!(view.apply(&frame(
            0,
            ProgressEvent::JobStarted {
                job: 3,
                kind: "campaign".into(),
                total: 18,
                resumed_from: 0,
            }
        )));
        // Another job's frame: gap-accounted, not folded.
        assert!(!view.apply(&frame(
            1,
            ProgressEvent::Settled {
                job: 4,
                completed: 1,
                total: 9,
                quarantined: 0,
            }
        )));
        view.apply(&frame(
            2,
            ProgressEvent::Chunk {
                job: 3,
                completed: 7,
                total: 18,
                quarantined: 1,
                checkpoint_seq: 1,
                items_per_sec: 42.5,
            },
        ));
        assert!(!view.done());
        let line = view.render_line();
        assert!(line.contains("7/18"), "{line}");
        assert!(line.contains("1 quarantined"), "{line}");
        assert!(line.contains("checkpoint #1"), "{line}");
        view.apply(&frame(
            3,
            ProgressEvent::JobFinished {
                job: 3,
                completed: 18,
                total: 18,
                quarantined: 1,
                passed: false,
            },
        ));
        assert!(view.done());
        assert!(view.render_line().contains("FAIL"));
        assert!(view.gaps.gap_free());
    }

    #[test]
    fn halted_view_renders_resumable() {
        let mut view = LiveJobView::new(1);
        view.apply(&frame(
            0,
            ProgressEvent::Halted {
                job: 1,
                completed: 6,
                checkpoint_seq: 2,
            },
        ));
        assert!(view.done());
        assert!(view.render_line().contains("halted (resumable)"));
        // A resumed job starts a fresh lifecycle on the same id.
        view.apply(&frame(
            4,
            ProgressEvent::JobStarted {
                job: 1,
                kind: "campaign".into(),
                total: 18,
                resumed_from: 6,
            },
        ));
        assert!(!view.done());
        assert_eq!(view.completed, 6);
        assert_eq!(view.gaps.missed, 3);
    }
}
