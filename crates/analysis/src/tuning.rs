//! The experimental tuning procedure of the p/r algorithm (paper Table 2).
//!
//! For each criticality class the paper injects a *continuous faulty
//! burst* into a node and observes the penalty counter value reached when
//! the class's maximum tolerated diagnostic latency expires (recovery is
//! assumed instantaneous). With classes `c_1 … c_i` yielding penalties
//! `p_1 … p_i`, the parameters are set to `P = max(p_1, …, p_i)` and
//! `s_i = ⌈P / p_i⌉`.
//!
//! Reproducing this procedure on the simulator with the paper's inputs
//! (Table 2's tolerated outages, 2.5 ms rounds) regenerates the paper's
//! constants exactly: automotive `P = 197`, `s = 40/6/1`; aerospace
//! `P = 17`, `s = 1`.

use serde::{Deserialize, Serialize};

use tt_core::{DiagJob, ProtocolConfig};
use tt_fault::{ContinuousFault, DisturbanceNode};
use tt_sim::{ClusterBuilder, Nanos, NodeId, RoundIndex, TraceMode};

/// One criticality class and its availability requirement.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CriticalityClass {
    /// Class name, e.g. "Safety Critical (SC)".
    pub name: String,
    /// Example functionality from the paper, e.g. "X-by-wire".
    pub example: String,
    /// Lower bound of the tolerated transient outage (the binding budget).
    pub tolerated_outage: Nanos,
    /// Optional upper bound (Table 2 reports ranges for automotive).
    pub tolerated_outage_hi: Option<Nanos>,
}

/// A domain configuration to tune: classes, cluster size, round length.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DomainSetup {
    /// Domain name ("Automotive" / "Aerospace").
    pub domain: String,
    /// The criticality classes integrated on the platform.
    pub classes: Vec<CriticalityClass>,
    /// Cluster size.
    pub n_nodes: usize,
    /// TDMA round length `T`.
    pub round: Nanos,
    /// The reward threshold chosen from the Fig. 3 analysis.
    pub reward_threshold: u64,
}

/// The paper's automotive setup (Table 2).
pub fn automotive_setup() -> DomainSetup {
    DomainSetup {
        domain: "Automotive".into(),
        classes: vec![
            CriticalityClass {
                name: "Safety Critical (SC)".into(),
                example: "X-by-wire".into(),
                tolerated_outage: Nanos::from_millis(20),
                tolerated_outage_hi: Some(Nanos::from_millis(50)),
            },
            CriticalityClass {
                name: "Safety Relevant (SR)".into(),
                example: "Stability control".into(),
                tolerated_outage: Nanos::from_millis(100),
                tolerated_outage_hi: Some(Nanos::from_millis(200)),
            },
            CriticalityClass {
                name: "Non Safety Relevant (NSR)".into(),
                example: "Door control".into(),
                tolerated_outage: Nanos::from_millis(500),
                tolerated_outage_hi: Some(Nanos::from_millis(1000)),
            },
        ],
        n_nodes: 4,
        round: Nanos::from_micros(2_500),
        reward_threshold: 1_000_000,
    }
}

/// The paper's aerospace setup (Table 2).
pub fn aerospace_setup() -> DomainSetup {
    DomainSetup {
        domain: "Aerospace".into(),
        classes: vec![CriticalityClass {
            name: "Safety Critical (SC)".into(),
            example: "High Lift, Landing Gear".into(),
            tolerated_outage: Nanos::from_millis(50),
            tolerated_outage_hi: None,
        }],
        n_nodes: 4,
        round: Nanos::from_micros(2_500),
        reward_threshold: 1_000_000,
    }
}

/// The tuned outcome for one class.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TunedClass {
    /// The class this row belongs to.
    pub class: CriticalityClass,
    /// The penalty counter value observed when the class's tolerated
    /// outage expired (`p_i` in the paper's procedure).
    pub penalty_budget: u64,
    /// The derived criticality level `s_i = ⌈P / p_i⌉`.
    pub criticality: u64,
}

/// The tuned parameters of one domain (one block of Table 2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TuningResult {
    /// The domain that was tuned.
    pub domain: String,
    /// Per-class measurements and criticality levels.
    pub rows: Vec<TunedClass>,
    /// The derived penalty threshold `P = max(p_i)`.
    pub penalty_threshold: u64,
    /// The reward threshold (input, from the Fig. 3 analysis).
    pub reward_threshold: u64,
    /// The TDMA round length used.
    pub round: Nanos,
}

/// Measures the penalty counter reachable within `outage` of a fault's
/// occurrence: injects a continuous faulty burst into one node and reads an
/// obedient node's penalty counter when the outage budget expires.
///
/// The counter uses criticality 1, so the value is the number of faulty
/// rounds diagnosed within the budget — the class's *penalty budget*.
pub fn measure_penalty_budget(setup: &DomainSetup, outage: Nanos) -> u64 {
    let faulty = NodeId::new(1);
    let observer = NodeId::new(2);
    let fault_round = RoundIndex::new(8); // clear of protocol warm-up
    let config = ProtocolConfig::builder(setup.n_nodes)
        .penalty_threshold(u64::MAX / 2) // never isolate while measuring
        .reward_threshold(setup.reward_threshold)
        .uniform_criticality(1)
        .build()
        .expect("static tuning config is valid");
    let pipeline = DisturbanceNode::new(0).with(ContinuousFault::new(faulty, fault_round));
    let mut cluster = ClusterBuilder::new(setup.n_nodes)
        .round_length(setup.round)
        .trace_mode(TraceMode::Off)
        .build_with_jobs(
            |id| Box::new(DiagJob::with_logging(id, config.clone(), false)),
            Box::new(pipeline),
        );
    // Run until the outage budget expires, then read the counter. The
    // activation at the start of round k has processed diagnosed rounds up
    // to k - lag, so the counter reflects the detections available to a
    // recovery action triggered at the deadline.
    let budget_rounds = outage.as_nanos() / setup.round.as_nanos();
    cluster.run_rounds(fault_round.as_u64() + budget_rounds);
    let job: &DiagJob = cluster.job_as(observer).expect("observer runs DiagJob");
    job.penalty(faulty)
}

/// Runs the full tuning procedure for a domain: measure every class's
/// penalty budget, set `P = max(p_i)` and `s_i = ⌈P / p_i⌉`.
///
/// # Panics
///
/// Panics if a class's tolerated outage is shorter than the protocol's
/// detection latency (no penalty budget at all).
pub fn tune(setup: &DomainSetup) -> TuningResult {
    let budgets: Vec<u64> = setup
        .classes
        .iter()
        .map(|c| {
            let p = measure_penalty_budget(setup, c.tolerated_outage);
            assert!(
                p > 0,
                "tolerated outage {} of class {} is below the detection latency",
                c.tolerated_outage,
                c.name
            );
            p
        })
        .collect();
    let penalty_threshold = *budgets.iter().max().expect("at least one class");
    let rows = setup
        .classes
        .iter()
        .zip(&budgets)
        .map(|(class, &p)| TunedClass {
            class: class.clone(),
            penalty_budget: p,
            criticality: penalty_threshold.div_ceil(p),
        })
        .collect();
    TuningResult {
        domain: setup.domain.clone(),
        rows,
        penalty_threshold,
        reward_threshold: setup.reward_threshold,
        round: setup.round,
    }
}

impl TuningResult {
    /// The criticality level tuned for the class named `name`.
    pub fn criticality_of(&self, name: &str) -> Option<u64> {
        self.rows
            .iter()
            .find(|r| r.class.name.contains(name))
            .map(|r| r.criticality)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn automotive_tuning_reproduces_table2() {
        let result = tune(&automotive_setup());
        assert_eq!(result.penalty_threshold, 197, "paper: P = 197");
        let s: Vec<u64> = result.rows.iter().map(|r| r.criticality).collect();
        assert_eq!(s, vec![40, 6, 1], "paper: s = 40 / 6 / 1");
        assert_eq!(result.reward_threshold, 1_000_000);
    }

    #[test]
    fn aerospace_tuning_reproduces_table2() {
        let result = tune(&aerospace_setup());
        assert_eq!(result.penalty_threshold, 17, "paper: P = 17");
        assert_eq!(result.rows[0].criticality, 1);
    }

    #[test]
    fn penalty_budget_equals_outage_rounds_minus_latency() {
        // With a 2.5 ms round and 3-round diagnosis lag, an outage budget
        // of m rounds leaves m - 3 diagnosable faulty rounds.
        let setup = automotive_setup();
        for (outage_ms, expect) in [(20u64, 5u64), (100, 37), (500, 197)] {
            let p = measure_penalty_budget(&setup, Nanos::from_millis(outage_ms));
            assert_eq!(p, expect, "{outage_ms} ms");
        }
    }

    #[test]
    fn criticality_of_lookup() {
        let result = tune(&automotive_setup());
        assert_eq!(result.criticality_of("SC"), Some(40));
        assert_eq!(result.criticality_of("SR"), Some(6));
        assert_eq!(result.criticality_of("NSR"), Some(1));
        assert_eq!(result.criticality_of("bogus"), None);
    }

    #[test]
    #[should_panic(expected = "below the detection latency")]
    fn outage_below_latency_is_rejected() {
        let mut setup = aerospace_setup();
        setup.classes[0].tolerated_outage = Nanos::from_millis_f64(7.5); // = 3 rounds
        let _ = tune(&setup);
    }
}
