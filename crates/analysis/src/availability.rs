//! Availability metrics derived from protocol runs.
//!
//! The paper's core tuning argument is about *availability*: the p/r
//! algorithm delays isolation to keep healthy nodes in service through
//! external transients (Sec. 9). These helpers turn a run's isolation
//! events into the availability figures that argument is made in.

use serde::{Deserialize, Serialize};

use tt_core::{DiagJob, IsolationEvent};
use tt_sim::{Nanos, NodeId};

/// Availability of one node over an observation window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeAvailability {
    /// The node.
    pub node: NodeId,
    /// Rounds the node was considered active by the observer.
    pub active_rounds: u64,
    /// Total rounds observed.
    pub total_rounds: u64,
}

impl NodeAvailability {
    /// Availability as a fraction in `[0, 1]`.
    pub fn fraction(&self) -> f64 {
        if self.total_rounds == 0 {
            1.0
        } else {
            self.active_rounds as f64 / self.total_rounds as f64
        }
    }
}

/// System-level availability over an observation window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AvailabilityReport {
    /// Per-node availability, in node order.
    pub nodes: Vec<NodeAvailability>,
    /// Total rounds observed.
    pub total_rounds: u64,
}

impl AvailabilityReport {
    /// Mean availability across nodes.
    pub fn mean(&self) -> f64 {
        if self.nodes.is_empty() {
            1.0
        } else {
            self.nodes
                .iter()
                .map(NodeAvailability::fraction)
                .sum::<f64>()
                / self.nodes.len() as f64
        }
    }

    /// The worst node's availability.
    pub fn min(&self) -> f64 {
        self.nodes
            .iter()
            .map(NodeAvailability::fraction)
            .fold(1.0, f64::min)
    }

    /// Number of nodes isolated during the window.
    pub fn isolated_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|a| a.active_rounds < a.total_rounds)
            .count()
    }

    /// Cumulative node-seconds of lost service at the given round length.
    pub fn lost_service(&self, round: Nanos) -> Nanos {
        let lost_rounds: u64 = self
            .nodes
            .iter()
            .map(|a| a.total_rounds - a.active_rounds)
            .sum();
        round * lost_rounds
    }
}

/// Computes availability from isolation events over `total_rounds`
/// (baseline behaviour: isolation is permanent, as in Alg. 2 without the
/// reintegration extension).
pub fn availability_from_isolations(
    n: usize,
    isolations: &[IsolationEvent],
    total_rounds: u64,
) -> AvailabilityReport {
    let nodes = NodeId::all(n)
        .map(|node| {
            let active_rounds = isolations
                .iter()
                .find(|iso| iso.node == node)
                .map(|iso| iso.decided_at.as_u64().min(total_rounds))
                .unwrap_or(total_rounds);
            NodeAvailability {
                node,
                active_rounds,
                total_rounds,
            }
        })
        .collect();
    AvailabilityReport {
        nodes,
        total_rounds,
    }
}

/// Convenience: availability as seen by one observer's [`DiagJob`] after a
/// run of `total_rounds`.
pub fn availability_of(job: &DiagJob, total_rounds: u64) -> AvailabilityReport {
    availability_from_isolations(job.config().n_nodes(), job.isolations(), total_rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_core::ProtocolConfig;
    use tt_fault::{ContinuousFault, DisturbanceNode};
    use tt_sim::{ClusterBuilder, RoundIndex};

    #[test]
    fn fault_free_run_is_fully_available() {
        let r = availability_from_isolations(4, &[], 100);
        assert_eq!(r.mean(), 1.0);
        assert_eq!(r.min(), 1.0);
        assert_eq!(r.isolated_count(), 0);
        assert_eq!(r.lost_service(Nanos::from_micros(2_500)), Nanos::ZERO);
    }

    #[test]
    fn isolation_reduces_availability() {
        let iso = IsolationEvent {
            node: NodeId::new(3),
            decided_at: RoundIndex::new(25),
            diagnosed: RoundIndex::new(22),
        };
        let r = availability_from_isolations(4, &[iso], 100);
        assert_eq!(r.nodes[2].active_rounds, 25);
        assert!((r.nodes[2].fraction() - 0.25).abs() < 1e-12);
        assert_eq!(r.isolated_count(), 1);
        assert!((r.mean() - (3.0 + 0.25) / 4.0).abs() < 1e-12);
        assert!((r.min() - 0.25).abs() < 1e-12);
        assert_eq!(
            r.lost_service(Nanos::from_micros(2_500)),
            Nanos::from_micros(2_500) * 75
        );
    }

    #[test]
    fn end_to_end_from_a_real_run() {
        let config = ProtocolConfig::builder(4)
            .penalty_threshold(3)
            .reward_threshold(100)
            .build()
            .unwrap();
        let pipeline =
            DisturbanceNode::new(1).with(ContinuousFault::new(NodeId::new(2), RoundIndex::new(10)));
        let mut cluster = ClusterBuilder::new(4).build_with_jobs(
            |id| Box::new(DiagJob::new(id, config.clone())),
            Box::new(pipeline),
        );
        cluster.run_rounds(40);
        let job: &DiagJob = cluster.job_as(NodeId::new(1)).unwrap();
        let r = availability_of(job, 40);
        assert_eq!(r.isolated_count(), 1);
        // Isolation at round 17 (P = 3: 4th fault, diagnosed 13, + lag 3...
        // decided at round 16 or 17 depending on counting; just bound it).
        let frac = r.nodes[1].fraction();
        assert!((0.3..0.5).contains(&frac), "got {frac}");
        assert_eq!(r.nodes[0].fraction(), 1.0);
    }

    #[test]
    fn observation_window_shorter_than_isolation() {
        let iso = IsolationEvent {
            node: NodeId::new(1),
            decided_at: RoundIndex::new(250),
            diagnosed: RoundIndex::new(247),
        };
        let r = availability_from_isolations(2, &[iso], 100);
        assert_eq!(r.nodes[0].active_rounds, 100, "clamped to the window");
        assert_eq!(r.isolated_count(), 0);
    }
}
