//! Paper-vs-measured experiment records (the backing data of
//! EXPERIMENTS.md).

use serde::{Deserialize, Serialize};

use crate::table::Table;

/// One paper-vs-measured comparison line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentRecord {
    /// Experiment id, e.g. "Table 4 / Automotive SC".
    pub id: String,
    /// The value the paper reports (free text, e.g. "0.518 s").
    pub paper: String,
    /// The value this reproduction measures.
    pub measured: String,
    /// Whether the measured value matches the paper's within the stated
    /// tolerance ("shape" agreement).
    pub matches: bool,
    /// Free-text note on deviations or substitutions.
    pub note: String,
}

/// Collects experiment records and renders them.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ReportBuilder {
    records: Vec<ExperimentRecord>,
}

impl ReportBuilder {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one comparison line.
    pub fn record(
        &mut self,
        id: impl Into<String>,
        paper: impl Into<String>,
        measured: impl Into<String>,
        matches: bool,
        note: impl Into<String>,
    ) -> &mut Self {
        self.records.push(ExperimentRecord {
            id: id.into(),
            paper: paper.into(),
            measured: measured.into(),
            matches,
            note: note.into(),
        });
        self
    }

    /// All records, in insertion order.
    pub fn records(&self) -> &[ExperimentRecord] {
        &self.records
    }

    /// True iff every record matched.
    pub fn all_match(&self) -> bool {
        self.records.iter().all(|r| r.matches)
    }

    /// Renders the report as an ASCII table.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec!["Experiment", "Paper", "Measured", "OK", "Note"]);
        for r in &self.records {
            t.row(vec![
                r.id.clone(),
                r.paper.clone(),
                r.measured.clone(),
                if r.matches { "yes" } else { "NO" }.to_string(),
                r.note.clone(),
            ]);
        }
        t.render()
    }

    /// Renders the report as a GitHub-flavoured markdown table.
    pub fn render_markdown(&self) -> String {
        let mut out = String::from("| Experiment | Paper | Measured | Match | Note |\n");
        out.push_str("|---|---|---|---|---|\n");
        for r in &self.records {
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} |\n",
                r.id,
                r.paper,
                r.measured,
                if r.matches { "✓" } else { "✗" },
                r.note
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_and_renders() {
        let mut b = ReportBuilder::new();
        b.record("Table 2 / P (auto)", "197", "197", true, "exact")
            .record(
                "Table 4 / SR",
                "4.595 s",
                "4.09 s",
                true,
                "one burst period off",
            );
        assert_eq!(b.records().len(), 2);
        assert!(b.all_match());
        let ascii = b.render();
        assert!(ascii.contains("Table 2 / P (auto)"));
        let md = b.render_markdown();
        assert!(md.starts_with("| Experiment |"));
        assert!(md.contains("| ✓ |"));
    }

    #[test]
    fn mismatches_are_flagged() {
        let mut b = ReportBuilder::new();
        b.record("x", "1", "2", false, "");
        assert!(!b.all_match());
        assert!(b.render().contains("NO"));
        assert!(b.render_markdown().contains("✗"));
    }
}
