//! Consumers of the `tt-sim` observability layer: event-stream summaries
//! and CSV export.
//!
//! A [`tt_sim::RecordingSink`] turns a simulation into a
//! [`tt_sim::MetricsReport`]; this module turns that report into the three
//! shapes the tooling needs — a per-kind [`EventSummary`], a rendered
//! summary table for terminals, and a flat CSV for spreadsheets and
//! plotting scripts (`ttdiag metrics --format csv`).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use tt_sim::{MetricsEvent, MetricsReport};

use crate::table::Table;

/// Aggregated view of one recorded event stream.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EventSummary {
    /// Events per kind label (see [`MetricsEvent::kind`]), sorted by kind.
    pub by_kind: BTreeMap<&'static str, u64>,
    /// Rounds spanned by the stream: `(first, last)` stamped round.
    pub round_span: Option<(u64, u64)>,
}

impl EventSummary {
    /// Summarizes an event stream.
    pub fn of(events: &[MetricsEvent]) -> Self {
        let mut by_kind = BTreeMap::new();
        let mut round_span: Option<(u64, u64)> = None;
        for e in events {
            *by_kind.entry(e.kind()).or_insert(0) += 1;
            let r = e.round().as_u64();
            round_span = Some(match round_span {
                None => (r, r),
                Some((lo, hi)) => (lo.min(r), hi.max(r)),
            });
        }
        EventSummary {
            by_kind,
            round_span,
        }
    }

    /// Count of events of the given kind label.
    pub fn count(&self, kind: &str) -> u64 {
        self.by_kind.get(kind).copied().unwrap_or(0)
    }
}

/// Renders a human-readable summary of a metrics report: counters, gauges,
/// histogram means, and event counts per kind (`ttdiag metrics --format
/// summary`).
pub fn render_summary(report: &MetricsReport) -> String {
    let mut out = String::new();
    if !report.counters.is_empty() {
        let mut t = Table::new(vec!["Counter", "Value"]);
        for c in &report.counters {
            t.row(vec![c.name.clone(), c.value.to_string()]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    if !report.gauges.is_empty() {
        let mut t = Table::new(vec!["Gauge", "Value"]);
        for g in &report.gauges {
            t.row(vec![g.name.clone(), g.value.to_string()]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    if !report.histograms.is_empty() {
        let mut t = Table::new(vec!["Histogram", "Count", "Mean", "Min", "Max"]);
        for h in &report.histograms {
            t.row(vec![
                h.name.clone(),
                h.summary.count.to_string(),
                format!("{:.1}", h.summary.mean()),
                h.summary.min.to_string(),
                h.summary.max.to_string(),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    let summary = EventSummary::of(&report.events);
    if let Some((lo, hi)) = summary.round_span {
        let _ = writeln!(
            out,
            "{} events over rounds {lo}..={hi}:",
            report.events.len()
        );
        let mut t = Table::new(vec!["Event kind", "Count"]);
        for (kind, count) in &summary.by_kind {
            t.row(vec![(*kind).to_string(), count.to_string()]);
        }
        out.push_str(&t.render());
    } else {
        out.push_str("no events recorded\n");
    }
    out
}

/// CSV header matching [`events_to_csv`] rows.
pub const EVENTS_CSV_HEADER: &str = "kind,round,node,subject,diagnosed,value,detail";

/// Flattens an event stream into CSV (one row per event, header included).
///
/// The generic columns are: `kind`, the stamped `round`, the observing
/// `node` (or the faulty sender for slot faults), the `subject` node where
/// one exists, the `diagnosed` round where one exists, a kind-specific
/// numeric `value` (penalty, reward, wall-ns, ε rows, …) and a free-form
/// `detail` column. Absent fields are left empty.
pub fn events_to_csv(events: &[MetricsEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 32 + EVENTS_CSV_HEADER.len() + 1);
    out.push_str(EVENTS_CSV_HEADER);
    out.push('\n');
    for e in events {
        // (node, subject, diagnosed, value, detail) per kind.
        let (node, subject, diagnosed, value, detail) = match e {
            MetricsEvent::RoundCompleted { wall_ns, .. } => {
                (None, None, None, Some(*wall_ns), String::new())
            }
            MetricsEvent::SlotFault { sender, class, .. } => {
                (Some(*sender), None, None, None, format!("{class:?}"))
            }
            MetricsEvent::Dissemination {
                node,
                tx_round,
                accusations,
                ..
            } => (
                Some(*node),
                None,
                None,
                Some(*accusations),
                format!("tx_round={}", tx_round.as_u64()),
            ),
            MetricsEvent::Aggregation {
                node, epsilon_rows, ..
            } => (Some(*node), None, None, Some(*epsilon_rows), String::new()),
            MetricsEvent::VoteTally {
                node,
                diagnosed,
                subject,
                ok,
                faulty,
                epsilon,
                decided,
                ..
            } => (
                Some(*node),
                Some(*subject),
                Some(*diagnosed),
                Some(*faulty),
                format!(
                    "ok={ok} faulty={faulty} eps={epsilon} decided={}",
                    match decided {
                        Some(true) => "healthy",
                        Some(false) => "faulty",
                        None => "undecidable",
                    }
                ),
            ),
            MetricsEvent::PenaltyCharged {
                node,
                diagnosed,
                subject,
                penalty,
                ..
            } => (
                Some(*node),
                Some(*subject),
                Some(*diagnosed),
                Some(*penalty),
                String::new(),
            ),
            MetricsEvent::RewardEarned {
                node,
                diagnosed,
                subject,
                reward,
                ..
            } => (
                Some(*node),
                Some(*subject),
                Some(*diagnosed),
                Some(*reward),
                String::new(),
            ),
            MetricsEvent::Forgiveness {
                node,
                diagnosed,
                subject,
                ..
            } => (
                Some(*node),
                Some(*subject),
                Some(*diagnosed),
                None,
                String::new(),
            ),
            MetricsEvent::Isolation {
                node,
                diagnosed,
                subject,
                penalty,
                ..
            } => (
                Some(*node),
                Some(*subject),
                Some(*diagnosed),
                Some(*penalty),
                String::new(),
            ),
            MetricsEvent::Reintegration {
                node,
                diagnosed,
                subject,
                ..
            } => (
                Some(*node),
                Some(*subject),
                Some(*diagnosed),
                None,
                String::new(),
            ),
            MetricsEvent::ViewInstalled {
                node,
                view_id,
                diagnosed,
                members,
                ..
            } => (
                Some(*node),
                None,
                Some(*diagnosed),
                Some(*view_id),
                format!(
                    "members={}",
                    members
                        .iter()
                        .map(|m| m.get().to_string())
                        .collect::<Vec<_>>()
                        .join("+")
                ),
            ),
        };
        // 1-based numeric ids (not the `N2` display form) for spreadsheets.
        let fmt_node =
            |n: Option<tt_sim::NodeId>| n.map(|n| n.get().to_string()).unwrap_or_default();
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{}",
            e.kind(),
            e.round().as_u64(),
            fmt_node(node),
            fmt_node(subject),
            diagnosed
                .map(|d| d.as_u64().to_string())
                .unwrap_or_default(),
            value.map(|v| v.to_string()).unwrap_or_default(),
            detail,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_sim::{NodeId, RoundIndex, SlotFaultClass};

    fn sample_events() -> Vec<MetricsEvent> {
        vec![
            MetricsEvent::SlotFault {
                round: RoundIndex::new(8),
                sender: NodeId::new(2),
                class: SlotFaultClass::Benign,
            },
            MetricsEvent::VoteTally {
                node: NodeId::new(1),
                decided_at: RoundIndex::new(11),
                diagnosed: RoundIndex::new(8),
                subject: NodeId::new(2),
                ok: 0,
                faulty: 2,
                epsilon: 1,
                decided: Some(false),
            },
            MetricsEvent::PenaltyCharged {
                node: NodeId::new(1),
                decided_at: RoundIndex::new(11),
                diagnosed: RoundIndex::new(8),
                subject: NodeId::new(2),
                penalty: 1,
            },
        ]
    }

    #[test]
    fn summary_counts_by_kind_and_spans_rounds() {
        let s = EventSummary::of(&sample_events());
        assert_eq!(s.count("slot_fault"), 1);
        assert_eq!(s.count("vote_tally"), 1);
        assert_eq!(s.count("penalty_charged"), 1);
        assert_eq!(s.count("absent"), 0);
        assert_eq!(s.round_span, Some((8, 11)));
        assert_eq!(EventSummary::of(&[]).round_span, None);
    }

    #[test]
    fn csv_has_header_and_one_row_per_event() {
        let csv = events_to_csv(&sample_events());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], EVENTS_CSV_HEADER);
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with("slot_fault,8,2,"));
        assert!(lines[2].contains("decided=faulty"));
        assert!(lines[3].starts_with("penalty_charged,11,1,2,8,1,"));
        // Every row has the full column count.
        for line in &lines[1..] {
            assert_eq!(line.matches(',').count(), 6, "{line}");
        }
    }

    #[test]
    fn render_summary_includes_counters_and_kinds() {
        let sink = tt_sim::RecordingSink::new();
        use tt_sim::MetricsSink as _;
        sink.counter("sim.rounds", 20);
        sink.histogram("sim.round_ns", 500);
        for e in sample_events() {
            sink.emit(&e);
        }
        let text = render_summary(&sink.report());
        assert!(text.contains("sim.rounds"));
        assert!(text.contains("sim.round_ns"));
        assert!(text.contains("3 events over rounds 8..=11"));
        assert!(text.contains("penalty_charged"));
    }

    #[test]
    fn render_summary_handles_empty_report() {
        let text = render_summary(&MetricsReport::default());
        assert!(text.contains("no events recorded"));
    }
}
