//! Monte Carlo tuning sweeps at campaign scale (paper Sec. 9, measured
//! rather than derived).
//!
//! `docs/TUNING.md` walks the paper's tuning procedure analytically:
//! choose `R` from the false-correlation model behind Fig. 3, derive `P`
//! and the criticality levels `s_i` from outage budgets (Tables 2–4).
//! This module is the empirical counterpart. A [`SweepConfig`] spans a
//! grid over `(N, rounds, P, R, s, λ, intermittent period)`; every
//! [`SweepCell`] runs a batch of seeded randomized fault campaigns —
//! Poisson transients striking a healthy victim node, optionally next to
//! a genuinely intermittent node — through the lockstep batched engine
//! ([`tt_fault::observe_schedules_batched`], falling back to the scalar
//! path when a cell's shape is unsupported) and estimates:
//!
//! * **false-isolation probability** of the healthy victim, with Wilson
//!   confidence intervals ([`crate::stats::wilson_interval`]);
//! * the **false-correlation probability**: among experiments whose first
//!   transient leaves a full correlation window inside the run, how often
//!   a second independent transient lands within `R` rounds — the
//!   measured Fig. 3 boundary, cross-checked against the analytic
//!   [`crate::correlation_probability`];
//! * **time-to-(correct|incorrect)-isolation** distributions
//!   (mean/p50/p99, plus deciles for the safety-curve export);
//! * **forgiveness / reintegration** counts.
//!
//! Sweeps stream through the `tt_fault` checkpoint machinery
//! ([`SweepCheckpoint`], written atomically after every cell), so a run
//! halted after any number of cells resumes byte-identically — cells are
//! independent and seeded per `(base_seed, cell index, repetition)`.
//!
//! Results export as JSON ([`sweep_json`]), paper-style CSV tables
//! ([`fig3_csv`], [`isolation_csv`], [`safety_curve_csv`]) and a human
//! summary ([`render_sweep_summary`]); [`check_analytic_agreement`] turns
//! the Fig. 3 cross-check into a pass/fail verdict.

use std::io;
use std::path::PathBuf;

use serde::{Deserialize, Serialize};

use tt_fault::{
    experiment_seed, first_victim_arrival, max_fault_round, observe_schedule,
    observe_schedules_batched, round_for, sampled_schedule, victim_arrivals, write_json_atomic,
    FaultSchedule, TransientCell, CHECKPOINT_VERSION, MIN_FAULT_ROUND,
};

use crate::correlation::correlation_probability;
use crate::stats::{percentile, wilson_interval, Summary};
use crate::table::Table;

/// Normal quantile of the reported confidence intervals (95 %).
pub const SWEEP_Z: f64 = 1.96;

/// The grid a sweep spans: one cell per element of the cartesian product
/// of the axes, in nested field order (`nodes` outermost, then `rounds`,
/// `penalty_thresholds`, `reward_thresholds`, `criticalities`,
/// `rates_per_hour`, `intermittent_periods` innermost).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Cluster sizes `N` (each ≥ 4).
    pub nodes: Vec<usize>,
    /// Round budgets per experiment.
    pub rounds: Vec<u64>,
    /// Alg. 2 penalty thresholds `P`.
    pub penalty_thresholds: Vec<u64>,
    /// Alg. 2 reward thresholds `R`.
    pub reward_thresholds: Vec<u64>,
    /// Uniform criticality levels `s` (penalty increment per conviction).
    pub criticalities: Vec<u64>,
    /// Poisson transient rates `λ` (faults/hour) striking the victim.
    pub rates_per_hour: Vec<f64>,
    /// Periods (rounds) of the genuinely intermittent node; 0 = absent.
    pub intermittent_periods: Vec<u64>,
    /// Seeded experiments per cell.
    pub experiments: u64,
    /// Lanes per lockstep batch.
    pub batch_size: usize,
    /// Base seed; experiment seeds derive per `(cell index, repetition)`.
    pub base_seed: u64,
}

impl Default for SweepConfig {
    /// The pinned small grid behind `tests/golden/tune_sweep_small.json`
    /// and the CI `tune-goldens` job: N ∈ {4, 8}, short rounds, fixed
    /// seeds. The transient rate is accelerated so the dimensionless
    /// product `λ·R·T` — the only quantity the Fig. 3 model depends on —
    /// spans the knee of the curve within a 64-round budget.
    fn default() -> Self {
        SweepConfig {
            nodes: vec![4, 8],
            rounds: vec![64],
            penalty_thresholds: vec![1, 41],
            reward_thresholds: vec![2, 8, 24],
            criticalities: vec![1, 40],
            rates_per_hour: vec![72_000.0],
            intermittent_periods: vec![0, 6],
            experiments: 192,
            batch_size: 64,
            base_seed: 2_007,
        }
    }
}

impl SweepConfig {
    /// Checks the grid is well-formed.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        let axes: [(&str, bool); 7] = [
            ("nodes", self.nodes.is_empty()),
            ("rounds", self.rounds.is_empty()),
            ("penalty_thresholds", self.penalty_thresholds.is_empty()),
            ("reward_thresholds", self.reward_thresholds.is_empty()),
            ("criticalities", self.criticalities.is_empty()),
            ("rates_per_hour", self.rates_per_hour.is_empty()),
            ("intermittent_periods", self.intermittent_periods.is_empty()),
        ];
        if let Some((name, _)) = axes.iter().find(|(_, empty)| *empty) {
            return Err(format!("axis {name} is empty"));
        }
        if let Some(&n) = self.nodes.iter().find(|&&n| n < 4) {
            return Err(format!("cluster size {n} below the minimum of 4"));
        }
        let min_rounds = MIN_FAULT_ROUND + 5;
        if let Some(&r) = self.rounds.iter().find(|&&r| r < min_rounds) {
            return Err(format!(
                "round budget {r} below the minimum of {min_rounds}"
            ));
        }
        if self.penalty_thresholds.contains(&0) || self.reward_thresholds.contains(&0) {
            return Err("thresholds must be at least 1".into());
        }
        if self.criticalities.contains(&0) {
            return Err("criticality levels must be at least 1".into());
        }
        if let Some(&rate) = self
            .rates_per_hour
            .iter()
            .find(|r| !r.is_finite() || **r < 0.0)
        {
            return Err(format!("invalid transient rate {rate}"));
        }
        if self.experiments == 0 || self.batch_size == 0 {
            return Err("experiments and batch_size must be at least 1".into());
        }
        Ok(())
    }

    /// Materializes the grid, one cell per axis combination.
    pub fn cells(&self) -> Vec<SweepCell> {
        let mut out = Vec::new();
        for &n in &self.nodes {
            for &rounds in &self.rounds {
                for &penalty_threshold in &self.penalty_thresholds {
                    for &reward_threshold in &self.reward_thresholds {
                        for &criticality in &self.criticalities {
                            for &rate_per_hour in &self.rates_per_hour {
                                for &intermittent_period in &self.intermittent_periods {
                                    out.push(SweepCell {
                                        index: out.len(),
                                        n,
                                        rounds,
                                        penalty_threshold,
                                        reward_threshold,
                                        criticality,
                                        rate_per_hour,
                                        intermittent_period,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// One grid point: a complete protocol + environment configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepCell {
    /// Position in grid order (also the seed class of its experiments).
    pub index: usize,
    /// Cluster size `N`.
    pub n: usize,
    /// Rounds per experiment.
    pub rounds: u64,
    /// Alg. 2 penalty threshold `P`.
    pub penalty_threshold: u64,
    /// Alg. 2 reward threshold `R`.
    pub reward_threshold: u64,
    /// Uniform criticality level `s`.
    pub criticality: u64,
    /// Poisson transient rate `λ` (faults/hour).
    pub rate_per_hour: f64,
    /// Intermittent-node period (rounds); 0 = absent.
    pub intermittent_period: u64,
}

impl SweepCell {
    /// Whether the false-correlation boundary is observable in this cell:
    /// one transient must not isolate (`s ≤ P`) while two correlated ones
    /// must (`2s > P`) — then "victim isolated within `R` rounds of its
    /// first transient" is *exactly* "two transients correlated".
    pub fn correlation_measurable(&self) -> bool {
        self.criticality <= self.penalty_threshold && self.penalty_threshold < 2 * self.criticality
    }
}

/// A binomial estimate with its Wilson confidence interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Proportion {
    /// Observed successes.
    pub successes: u64,
    /// Observed trials.
    pub trials: u64,
    /// Point estimate `successes / trials` (0 for an empty sample).
    pub p: f64,
    /// Lower Wilson bound at [`SWEEP_Z`].
    pub lo: f64,
    /// Upper Wilson bound at [`SWEEP_Z`].
    pub hi: f64,
}

impl Proportion {
    /// Estimates from raw counts.
    pub fn of(successes: u64, trials: u64) -> Self {
        let (lo, hi) = wilson_interval(successes, trials, SWEEP_Z);
        Proportion {
            successes,
            trials,
            p: if trials == 0 {
                0.0
            } else {
                successes as f64 / trials as f64
            },
            lo,
            hi,
        }
    }
}

/// Distribution summary of a time-to-isolation sample, in rounds and
/// (via the cell's round length) seconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IsolationLatency {
    /// Number of isolation events observed.
    pub count: u64,
    /// Mean latency in rounds.
    pub mean_rounds: f64,
    /// Median latency in rounds (nearest rank).
    pub p50_rounds: f64,
    /// 99th-percentile latency in rounds (nearest rank).
    pub p99_rounds: f64,
    /// Mean latency in seconds.
    pub mean_seconds: f64,
}

impl IsolationLatency {
    fn of(samples: &[f64], round_seconds: f64) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let summary: Summary = samples.iter().copied().collect();
        Some(IsolationLatency {
            count: summary.count(),
            mean_rounds: summary.mean(),
            p50_rounds: percentile(samples, 50.0).expect("non-empty"),
            p99_rounds: percentile(samples, 99.0).expect("non-empty"),
            mean_seconds: summary.mean() * round_seconds,
        })
    }
}

/// The measured false-correlation boundary of one cell, next to its
/// analytic Fig. 3 prediction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorrelationEstimate {
    /// Measured probability that a second independent transient falls
    /// within `R` rounds of the first (with Wilson bounds).
    pub measured: Proportion,
    /// The analytic `1 − exp(−λ·R·T)` prediction.
    pub analytic: f64,
}

/// Everything estimated for one cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellEstimate {
    /// Experiments run.
    pub experiments: u64,
    /// Total sampled transient arrivals on the victim.
    pub arrivals: u64,
    /// Probability that the healthy victim is (falsely) isolated within
    /// the round budget.
    pub false_isolation: Proportion,
    /// The Fig. 3 boundary measurement, where observable
    /// ([`SweepCell::correlation_measurable`] and the window fits).
    pub correlation: Option<CorrelationEstimate>,
    /// Time from the victim's first transient to its (incorrect)
    /// isolation decision.
    pub time_to_false_isolation: Option<IsolationLatency>,
    /// Decile latencies (rounds, q = 10 % … 100 %) of the false
    /// isolations — the raw material of the safety-curve export.
    pub false_isolation_deciles: Vec<f64>,
    /// Time from the intermittent node's first fault to its (correct)
    /// isolation decision.
    pub time_to_correct_isolation: Option<IsolationLatency>,
    /// Forgiveness events, summed over observers, subjects, experiments.
    pub forgiveness: u64,
    /// Reintegrations (always 0: sweeps run with reintegration disabled).
    pub reintegrations: u64,
    /// Whether every batch ran on the lockstep engine (`false` = at least
    /// one chunk fell back to the scalar path).
    pub batched: bool,
}

/// One completed cell: its configuration and its estimates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellReport {
    /// The grid point.
    pub cell: SweepCell,
    /// Its Monte Carlo estimates.
    pub estimate: CellEstimate,
}

/// A completed (or partially completed, when halted) sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepReport {
    /// The grid definition.
    pub config: SweepConfig,
    /// Completed cells, in grid order.
    pub cells: Vec<CellReport>,
}

/// Progress snapshot of a sweep, written atomically after every cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepCheckpoint {
    /// Format version ([`tt_fault::CHECKPOINT_VERSION`]).
    pub version: u32,
    /// The grid definition the snapshot belongs to.
    pub config: SweepConfig,
    /// Cells completed so far, in grid order.
    pub completed: Vec<CellReport>,
}

impl SweepCheckpoint {
    /// Whether this snapshot belongs to `config`. A resume against a
    /// mismatching checkpoint must be rejected, not silently merged.
    pub fn matches(&self, config: &SweepConfig) -> bool {
        self.version == CHECKPOINT_VERSION && self.config == *config
    }
}

/// Supervision knobs of a sweep run.
#[derive(Debug, Clone, Default)]
pub struct SweepSupervisor {
    /// Where to stream [`SweepCheckpoint`]s (after every completed cell).
    pub checkpoint_path: Option<PathBuf>,
    /// Halt after newly completing this many cells (the chaos/CI hook
    /// behind byte-identical halt/resume).
    pub halt_after_cells: Option<u64>,
}

/// The outcome of [`run_sweep`] / [`resume_sweep`].
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOutcome {
    /// The (possibly partial) report.
    pub report: SweepReport,
    /// Total cells in the grid.
    pub total_cells: usize,
    /// Whether the run stopped at the halt bound with cells remaining.
    pub halted: bool,
}

/// Runs a sweep from scratch.
///
/// # Errors
///
/// Fails with [`io::ErrorKind::InvalidInput`] on a malformed grid and
/// propagates checkpoint write errors.
pub fn run_sweep(config: &SweepConfig, supervisor: &SweepSupervisor) -> io::Result<SweepOutcome> {
    config
        .validate()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
    run_from(config.clone(), Vec::new(), supervisor)
}

/// Resumes a sweep from a [`SweepCheckpoint`], continuing cell-by-cell
/// exactly where the snapshot stopped. The final report is byte-identical
/// to an uninterrupted run: cells are independent and seeded by index.
///
/// # Errors
///
/// Fails with [`io::ErrorKind::InvalidData`] if the snapshot is
/// malformed, [`io::ErrorKind::InvalidInput`] if its grid is, and
/// propagates checkpoint write errors.
pub fn resume_sweep(
    checkpoint: SweepCheckpoint,
    supervisor: &SweepSupervisor,
) -> io::Result<SweepOutcome> {
    checkpoint
        .config
        .validate()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
    if checkpoint.version != CHECKPOINT_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "checkpoint version {} (expected {CHECKPOINT_VERSION})",
                checkpoint.version
            ),
        ));
    }
    run_from(checkpoint.config, checkpoint.completed, supervisor)
}

fn run_from(
    config: SweepConfig,
    mut completed: Vec<CellReport>,
    supervisor: &SweepSupervisor,
) -> io::Result<SweepOutcome> {
    let cells = config.cells();
    if completed.len() > cells.len()
        || completed
            .iter()
            .zip(&cells)
            .any(|(done, cell)| done.cell != *cell)
    {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "checkpoint cells do not form a prefix of the configured grid",
        ));
    }
    for (newly, cell) in cells[completed.len()..].iter().enumerate() {
        if supervisor
            .halt_after_cells
            .is_some_and(|h| newly as u64 >= h)
        {
            if let Some(path) = &supervisor.checkpoint_path {
                write_json_atomic(
                    path,
                    &SweepCheckpoint {
                        version: CHECKPOINT_VERSION,
                        config: config.clone(),
                        completed: completed.clone(),
                    },
                )?;
            }
            let total_cells = cells.len();
            return Ok(SweepOutcome {
                report: SweepReport {
                    config,
                    cells: completed,
                },
                total_cells,
                halted: true,
            });
        }
        let estimate = run_cell(&config, cell);
        completed.push(CellReport {
            cell: cell.clone(),
            estimate,
        });
        if let Some(path) = &supervisor.checkpoint_path {
            write_json_atomic(
                path,
                &SweepCheckpoint {
                    version: CHECKPOINT_VERSION,
                    config: config.clone(),
                    completed: completed.clone(),
                },
            )?;
        }
    }
    let total_cells = cells.len();
    Ok(SweepOutcome {
        report: SweepReport {
            config,
            cells: completed,
        },
        total_cells,
        halted: false,
    })
}

/// Runs every experiment of one cell and folds the observations into its
/// estimate. Chunks of `batch_size` run on the lockstep engine; a chunk
/// whose shape the engine rejects (e.g. `N > 64`) falls back to the
/// scalar path, observation for observation identical.
fn run_cell(config: &SweepConfig, cell: &SweepCell) -> CellEstimate {
    let crit = vec![cell.criticality; cell.n];
    let workload = TransientCell {
        n: cell.n,
        rounds: cell.rounds,
        penalty_threshold: cell.penalty_threshold,
        reward_threshold: cell.reward_threshold,
        rate_per_hour: cell.rate_per_hour,
        intermittent_period: cell.intermittent_period,
    };
    let round = round_for(cell.n);
    let max_arrival = max_fault_round(cell.rounds);
    let measurable = cell.correlation_measurable();

    let mut arrivals = 0u64;
    let mut false_isolated = 0u64;
    let mut corr_trials = 0u64;
    let mut corr_hits = 0u64;
    let mut tti_false: Vec<f64> = Vec::new();
    let mut tti_correct: Vec<f64> = Vec::new();
    let mut forgiveness = 0u64;
    let mut batched = true;

    let mut rep = 0u64;
    while rep < config.experiments {
        let chunk = (config.experiments - rep).min(config.batch_size as u64);
        let schedules: Vec<FaultSchedule> = (rep..rep + chunk)
            .map(|r| sampled_schedule(&workload, experiment_seed(config.base_seed, cell.index, r)))
            .collect();
        let observations = match observe_schedules_batched(&schedules, &crit) {
            Ok(obs) => obs,
            Err(_) => {
                batched = false;
                schedules
                    .iter()
                    .map(|s| observe_schedule(s, &crit))
                    .collect()
            }
        };
        for (schedule, obs) in schedules.iter().zip(&observations) {
            arrivals += victim_arrivals(schedule);
            let first = first_victim_arrival(schedule);
            let victim_iso = obs.isolation_of(0);
            if let Some(iso) = victim_iso {
                false_isolated += 1;
                let a = first.expect("an isolated victim was struck at least once");
                tti_false.push((iso.decided_at - a) as f64);
            }
            if measurable {
                if let Some(a) = first {
                    if a.saturating_add(cell.reward_threshold) <= max_arrival {
                        corr_trials += 1;
                        corr_hits += u64::from(
                            victim_iso
                                .is_some_and(|iso| iso.diagnosed <= a + cell.reward_threshold),
                        );
                    }
                }
            }
            if cell.intermittent_period > 0 {
                if let Some(iso) = obs.isolation_of(1) {
                    tti_correct.push((iso.decided_at - MIN_FAULT_ROUND) as f64);
                }
            }
            forgiveness += obs.forgiveness;
        }
        rep += chunk;
    }

    let round_seconds = round.as_secs_f64();
    let deciles = if tti_false.is_empty() {
        Vec::new()
    } else {
        (1..=10)
            .map(|d| percentile(&tti_false, d as f64 * 10.0).expect("non-empty"))
            .collect()
    };
    CellEstimate {
        experiments: config.experiments,
        arrivals,
        false_isolation: Proportion::of(false_isolated, config.experiments),
        correlation: measurable.then(|| CorrelationEstimate {
            measured: Proportion::of(corr_hits, corr_trials),
            analytic: correlation_probability(cell.rate_per_hour, cell.reward_threshold, round),
        }),
        time_to_false_isolation: IsolationLatency::of(&tti_false, round_seconds),
        false_isolation_deciles: deciles,
        time_to_correct_isolation: IsolationLatency::of(&tti_correct, round_seconds),
        forgiveness,
        reintegrations: 0,
        batched,
    }
}

/// Serializes a report as pretty JSON with a trailing newline — the byte
/// stream the goldens and the halt/resume equivalence tests compare.
pub fn sweep_json(report: &SweepReport) -> String {
    let mut json = serde_json::to_string_pretty(report).expect("report serializes");
    json.push('\n');
    json
}

/// One row of the Fig. 3 agreement check.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AgreementRow {
    /// Cell index.
    pub cell: usize,
    /// Reward threshold `R` of the cell.
    pub reward_threshold: u64,
    /// Transient rate `λ` of the cell.
    pub rate_per_hour: f64,
    /// Correlation trials observed.
    pub trials: u64,
    /// Measured false-correlation probability.
    pub measured: f64,
    /// Lower Wilson bound.
    pub lo: f64,
    /// Upper Wilson bound.
    pub hi: f64,
    /// Analytic `1 − exp(−λ·R·T)`.
    pub analytic: f64,
    /// Whether the analytic value falls within the Wilson interval.
    pub within: bool,
}

/// The Fig. 3 cross-check rows: every cell whose correlation boundary was
/// measured (observable and at least one trial).
pub fn analytic_agreement(report: &SweepReport) -> Vec<AgreementRow> {
    report
        .cells
        .iter()
        .filter_map(|c| {
            let corr = c.estimate.correlation.as_ref()?;
            if corr.measured.trials == 0 {
                return None;
            }
            Some(AgreementRow {
                cell: c.cell.index,
                reward_threshold: c.cell.reward_threshold,
                rate_per_hour: c.cell.rate_per_hour,
                trials: corr.measured.trials,
                measured: corr.measured.p,
                lo: corr.measured.lo,
                hi: corr.measured.hi,
                analytic: corr.analytic,
                within: corr.measured.lo <= corr.analytic && corr.analytic <= corr.measured.hi,
            })
        })
        .collect()
}

/// Verdict over the whole Fig. 3 cross-check: `Ok` with a summary when
/// every measured boundary contains its analytic prediction within the
/// Wilson interval, `Err` listing the disagreeing cells otherwise.
pub fn check_analytic_agreement(report: &SweepReport) -> Result<String, String> {
    let rows = analytic_agreement(report);
    let bad: Vec<&AgreementRow> = rows.iter().filter(|r| !r.within).collect();
    if bad.is_empty() {
        Ok(format!(
            "fig3 agreement: analytic within the 95% Wilson interval in {}/{} measured cells",
            rows.len(),
            rows.len()
        ))
    } else {
        Err(bad
            .iter()
            .map(|r| {
                format!(
                    "fig3 disagreement: cell {} (R={}, λ={}/h): analytic {:.4} outside [{:.4}, {:.4}] ({} trials)",
                    r.cell, r.reward_threshold, r.rate_per_hour, r.analytic, r.lo, r.hi, r.trials
                )
            })
            .collect::<Vec<_>>()
            .join("\n"))
    }
}

/// CSV of the measured Fig. 3 boundary: one row per cell with a measured
/// correlation estimate, next to the analytic curve.
pub fn fig3_csv(report: &SweepReport) -> String {
    let mut out = String::from(
        "cell,n,rounds,penalty_threshold,reward_threshold,criticality,rate_per_hour,\
         trials,correlated,measured,wilson_lo,wilson_hi,analytic,within_ci\n",
    );
    for row in analytic_agreement(report) {
        let cell = &report.cells[row.cell].cell;
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{:.6},{:.6},{:.6},{:.6},{}\n",
            row.cell,
            cell.n,
            cell.rounds,
            cell.penalty_threshold,
            cell.reward_threshold,
            cell.criticality,
            cell.rate_per_hour,
            row.trials,
            (row.measured * row.trials as f64).round() as u64,
            row.measured,
            row.lo,
            row.hi,
            row.analytic,
            row.within,
        ));
    }
    out
}

fn latency_csv_cells(latency: &Option<IsolationLatency>) -> String {
    match latency {
        Some(l) => format!(
            "{},{:.3},{:.3},{:.3},{:.6}",
            l.count, l.mean_rounds, l.p50_rounds, l.p99_rounds, l.mean_seconds
        ),
        None => ",,,,".into(),
    }
}

/// CSV of the per-cell isolation estimators (the Tables 2–4 analog):
/// false-isolation probability with Wilson bounds, time-to-isolation
/// distributions, forgiveness/reintegration counts.
pub fn isolation_csv(report: &SweepReport) -> String {
    let mut out = String::from(
        "cell,n,rounds,penalty_threshold,reward_threshold,criticality,rate_per_hour,\
         intermittent_period,experiments,arrivals,false_isolated,false_p,false_lo,false_hi,\
         tti_false_count,tti_false_mean_rounds,tti_false_p50_rounds,tti_false_p99_rounds,\
         tti_false_mean_s,tti_correct_count,tti_correct_mean_rounds,tti_correct_p50_rounds,\
         tti_correct_p99_rounds,tti_correct_mean_s,forgiveness,reintegrations,batched\n",
    );
    for c in &report.cells {
        let e = &c.estimate;
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{:.6},{:.6},{:.6},{},{},{},{},{}\n",
            c.cell.index,
            c.cell.n,
            c.cell.rounds,
            c.cell.penalty_threshold,
            c.cell.reward_threshold,
            c.cell.criticality,
            c.cell.rate_per_hour,
            c.cell.intermittent_period,
            e.experiments,
            e.arrivals,
            e.false_isolation.successes,
            e.false_isolation.p,
            e.false_isolation.lo,
            e.false_isolation.hi,
            latency_csv_cells(&e.time_to_false_isolation),
            latency_csv_cells(&e.time_to_correct_isolation),
            e.forgiveness,
            e.reintegrations,
            e.batched,
        ));
    }
    out
}

/// CSV of the empirical safety curves: for each cell, the cumulative
/// probability that the healthy victim has been falsely isolated by time
/// `t` (deciles of the observed false-isolation latencies, scaled by the
/// cell's false-isolation probability).
pub fn safety_curve_csv(report: &SweepReport) -> String {
    let mut out = String::from(
        "cell,n,reward_threshold,rate_per_hour,quantile,t_rounds,t_seconds,\
                      p_false_isolation_by_t\n",
    );
    for c in &report.cells {
        let round_seconds = round_for(c.cell.n).as_secs_f64();
        for (i, &t_rounds) in c.estimate.false_isolation_deciles.iter().enumerate() {
            let q = (i + 1) as f64 / 10.0;
            out.push_str(&format!(
                "{},{},{},{},{:.1},{:.3},{:.6},{:.6}\n",
                c.cell.index,
                c.cell.n,
                c.cell.reward_threshold,
                c.cell.rate_per_hour,
                q,
                t_rounds,
                t_rounds * round_seconds,
                q * c.estimate.false_isolation.p,
            ));
        }
    }
    out
}

/// Renders the human summary of a sweep: one table row per cell plus the
/// Fig. 3 agreement verdict line.
pub fn render_sweep_summary(report: &SweepReport) -> String {
    let mut table = Table::new(vec![
        "cell",
        "N",
        "rounds",
        "P",
        "R",
        "s",
        "lambda/h",
        "int",
        "false-iso p [95% CI]",
        "corr measured vs analytic",
        "tti-false p50/p99",
        "fgv",
        "engine",
    ]);
    for c in &report.cells {
        let e = &c.estimate;
        let corr = match &e.correlation {
            Some(corr) if corr.measured.trials > 0 => format!(
                "{:.3} [{:.3},{:.3}] vs {:.3}",
                corr.measured.p, corr.measured.lo, corr.measured.hi, corr.analytic
            ),
            Some(_) => "no trials".into(),
            None => "-".into(),
        };
        let tti = match &e.time_to_false_isolation {
            Some(l) => format!("{:.0}/{:.0}", l.p50_rounds, l.p99_rounds),
            None => "-".into(),
        };
        table.row(vec![
            c.cell.index.to_string(),
            c.cell.n.to_string(),
            c.cell.rounds.to_string(),
            c.cell.penalty_threshold.to_string(),
            c.cell.reward_threshold.to_string(),
            c.cell.criticality.to_string(),
            format!("{}", c.cell.rate_per_hour),
            c.cell.intermittent_period.to_string(),
            format!(
                "{:.3} [{:.3},{:.3}]",
                e.false_isolation.p, e.false_isolation.lo, e.false_isolation.hi
            ),
            corr,
            tti,
            e.forgiveness.to_string(),
            if e.batched { "batched" } else { "scalar" }.to_string(),
        ]);
    }
    let verdict = match check_analytic_agreement(report) {
        Ok(v) => v,
        Err(v) => v,
    };
    format!(
        "tune sweep: {} cells x {} experiments (base seed {})\n{}\n{}\n",
        report.cells.len(),
        report.config.experiments,
        report.config.base_seed,
        table.render(),
        verdict
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> SweepConfig {
        SweepConfig {
            nodes: vec![4],
            rounds: vec![32],
            penalty_thresholds: vec![1],
            reward_thresholds: vec![4],
            criticalities: vec![1],
            rates_per_hour: vec![72_000.0],
            intermittent_periods: vec![0, 3],
            experiments: 48,
            batch_size: 16,
            base_seed: 11,
        }
    }

    #[test]
    fn grid_enumeration_is_dense_and_indexed() {
        let cells = SweepConfig::default().cells();
        assert_eq!(cells.len(), 2 * 2 * 3 * 2 * 2);
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i);
        }
    }

    #[test]
    fn validation_rejects_malformed_grids() {
        let mut c = tiny_config();
        c.nodes = vec![];
        assert!(c.validate().is_err());
        let mut c = tiny_config();
        c.nodes = vec![3];
        assert!(c.validate().is_err());
        let mut c = tiny_config();
        c.rounds = vec![4];
        assert!(c.validate().is_err());
        let mut c = tiny_config();
        c.criticalities = vec![0];
        assert!(c.validate().is_err());
        let mut c = tiny_config();
        c.rates_per_hour = vec![f64::NAN];
        assert!(c.validate().is_err());
        assert!(tiny_config().validate().is_ok());
    }

    #[test]
    fn correlation_measurability_is_the_two_hit_condition() {
        let mut cell = SweepConfig::default().cells().remove(0);
        cell.criticality = 1;
        cell.penalty_threshold = 1;
        assert!(cell.correlation_measurable());
        cell.penalty_threshold = 2; // two hits reach exactly P, no isolation
        assert!(!cell.correlation_measurable());
        cell.criticality = 40;
        cell.penalty_threshold = 41;
        assert!(cell.correlation_measurable());
        cell.penalty_threshold = 39; // one hit already isolates
        assert!(!cell.correlation_measurable());
    }

    #[test]
    fn sweep_is_deterministic() {
        let sup = SweepSupervisor::default();
        let a = run_sweep(&tiny_config(), &sup).unwrap();
        let b = run_sweep(&tiny_config(), &sup).unwrap();
        assert!(!a.halted);
        assert_eq!(sweep_json(&a.report), sweep_json(&b.report));
    }

    #[test]
    fn estimates_are_internally_consistent() {
        let outcome = run_sweep(&tiny_config(), &SweepSupervisor::default()).unwrap();
        for c in &outcome.report.cells {
            let e = &c.estimate;
            assert_eq!(e.experiments, 48);
            assert!(e.arrivals > 0, "accelerated rate must produce arrivals");
            assert!(e.false_isolation.successes <= e.experiments);
            assert!(e.batched, "N=4 cells run on the lockstep engine");
            assert_eq!(e.reintegrations, 0);
            let corr = e.correlation.as_ref().expect("P=s cell is measurable");
            assert!(corr.measured.trials <= e.experiments);
            if c.cell.intermittent_period == 3 {
                // Period 3 < R=4: the intermittent node is correlated and
                // correctly isolated in every experiment.
                let tti = e.time_to_correct_isolation.as_ref().expect("isolated");
                assert_eq!(tti.count, e.experiments);
            } else {
                assert_eq!(e.time_to_correct_isolation, None);
            }
        }
    }

    #[test]
    fn halted_sweeps_resume_byte_identically() {
        let dir = std::env::temp_dir().join("tt-analysis-sweep-halt");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("sweep.json");
        let config = tiny_config();
        let uninterrupted = run_sweep(&config, &SweepSupervisor::default()).unwrap();
        let halted = run_sweep(
            &config,
            &SweepSupervisor {
                checkpoint_path: Some(path.clone()),
                halt_after_cells: Some(1),
            },
        )
        .unwrap();
        assert!(halted.halted);
        assert_eq!(halted.report.cells.len(), 1);
        let cp: SweepCheckpoint = tt_fault::read_json(&path).unwrap();
        assert!(cp.matches(&config));
        let resumed = resume_sweep(cp, &SweepSupervisor::default()).unwrap();
        assert!(!resumed.halted);
        assert_eq!(
            sweep_json(&resumed.report),
            sweep_json(&uninterrupted.report)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_checkpoints_are_rejected() {
        let config = tiny_config();
        let outcome = run_sweep(&config, &SweepSupervisor::default()).unwrap();
        let mut other = config.clone();
        other.base_seed ^= 1;
        let cp = SweepCheckpoint {
            version: CHECKPOINT_VERSION,
            config: other,
            completed: outcome.report.cells.clone(),
        };
        assert!(!cp.matches(&config));
        // The completed cells belong to a different grid prefix only if
        // the grids differ structurally; a wrong version always fails.
        let bad_version = SweepCheckpoint {
            version: CHECKPOINT_VERSION + 1,
            config: config.clone(),
            completed: Vec::new(),
        };
        assert!(resume_sweep(bad_version, &SweepSupervisor::default()).is_err());
    }

    #[test]
    fn exports_are_well_formed() {
        let outcome = run_sweep(&tiny_config(), &SweepSupervisor::default()).unwrap();
        let report = &outcome.report;
        let json = sweep_json(report);
        assert!(json.ends_with('\n'));
        let back: SweepReport = serde_json::from_str(&json).unwrap();
        assert_eq!(&back, report);
        let fig3 = fig3_csv(report);
        assert!(fig3.lines().count() >= 2, "{fig3}");
        assert!(fig3.starts_with("cell,"));
        let iso = isolation_csv(report);
        assert_eq!(iso.lines().count(), 1 + report.cells.len());
        let safety = safety_curve_csv(report);
        assert!(safety.starts_with("cell,"));
        let summary = render_sweep_summary(report);
        assert!(summary.contains("fig3 agreement") || summary.contains("fig3 disagreement"));
    }
}
