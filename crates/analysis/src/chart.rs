//! Minimal ASCII charts for experiment reports.
//!
//! Terminal-friendly renderings of the paper's figures: log-x line charts
//! (Fig. 3) and step charts (penalty/reward evolution).

/// Renders series of `(x, y)` points as an ASCII chart with linear y and
/// the x values taken as already spaced (one column per point).
///
/// Each series gets a glyph from `glyphs` (cycled). Returns a chart of
/// `height` rows plus an x-axis line.
pub fn line_chart(series: &[(&str, Vec<f64>)], height: usize, glyphs: &str) -> String {
    assert!(height >= 2, "chart too short");
    assert!(!glyphs.is_empty(), "need at least one glyph");
    let width = series.iter().map(|(_, s)| s.len()).max().unwrap_or(0);
    if width == 0 {
        return String::from("(no data)\n");
    }
    let y_max = series
        .iter()
        .flat_map(|(_, s)| s.iter())
        .cloned()
        .fold(f64::MIN, f64::max);
    let y_min = series
        .iter()
        .flat_map(|(_, s)| s.iter())
        .cloned()
        .fold(f64::MAX, f64::min);
    let span = (y_max - y_min).max(f64::MIN_POSITIVE);
    let mut grid = vec![vec![' '; width]; height];
    let glyph_vec: Vec<char> = glyphs.chars().collect();
    for (si, (_, points)) in series.iter().enumerate() {
        let glyph = glyph_vec[si % glyph_vec.len()];
        for (x, &y) in points.iter().enumerate() {
            let level = ((y - y_min) / span * (height - 1) as f64).round() as usize;
            let row = height - 1 - level.min(height - 1);
            grid[row][x] = glyph;
        }
    }
    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{y_max:>9.3} |")
        } else if i == height - 1 {
            format!("{y_min:>9.3} |")
        } else {
            format!("{:>9} |", "")
        };
        out.push_str(&label);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>9} +{}\n", "", "-".repeat(width)));
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(si, (name, _))| format!("{} {name}", glyph_vec[si % glyph_vec.len()]))
        .collect();
    out.push_str(&format!("{:>11}{}\n", "", legend.join("   ")));
    out
}

/// Renders an integer step series (e.g. a penalty counter per round) as a
/// compact bar chart: one column per sample, height scaled to `height`.
pub fn step_chart(label: &str, values: &[u64], height: usize) -> String {
    assert!(height >= 1, "chart too short");
    if values.is_empty() {
        return format!("{label}: (no data)\n");
    }
    let max = *values.iter().max().expect("non-empty") as f64;
    let mut out = format!("{label} (max {max})\n");
    for row in (1..=height).rev() {
        let threshold = max * row as f64 / height as f64;
        out.push_str("  |");
        for &v in values {
            out.push(if v as f64 >= threshold && v > 0 {
                '#'
            } else {
                ' '
            });
        }
        out.push('\n');
    }
    out.push_str(&format!("  +{}\n", "-".repeat(values.len())));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_chart_spans_min_to_max() {
        let s = vec![("up", vec![0.0, 1.0, 2.0, 3.0]), ("flat", vec![1.5; 4])];
        let chart = line_chart(&s, 5, "*o");
        assert!(chart.contains("3.000 |"), "{chart}");
        assert!(chart.contains("0.000 |"), "{chart}");
        assert!(chart.contains("* up"), "{chart}");
        assert!(chart.contains("o flat"), "{chart}");
        // The rising series occupies all corners.
        let lines: Vec<&str> = chart.lines().collect();
        assert!(lines[0].ends_with('*'));
        assert!(lines[4].starts_with("    0.000 |*"));
    }

    #[test]
    fn step_chart_shapes_bars() {
        let chart = step_chart("penalty", &[0, 1, 2, 3, 3, 0], 3);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 5);
        // Top row: only the max values.
        assert_eq!(lines[1], "  |   ## ");
        // Bottom row: every non-zero value.
        assert_eq!(lines[3], "  | #### ");
    }

    #[test]
    fn empty_input_is_safe() {
        assert!(line_chart(&[], 3, "*").contains("no data"));
        assert!(step_chart("x", &[], 3).contains("no data"));
    }
}
