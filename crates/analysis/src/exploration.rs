//! Consumers of the `tt-fault` explorer: coverage-frontier summaries for
//! `ttdiag explore` and the CI smoke job.
//!
//! The explorer itself ([`tt_fault::explore()`]) reports raw numbers; this
//! module turns an [`ExploreReport`] into the human-readable frontier
//! summary (unique fingerprints, schedules/sec, violations found and how
//! far the shrinker minimized them) that the CLI prints.

use tt_fault::explore::{ExploreConfig, ExploreReport, Strategy};

use crate::table::Table;

/// Renders the coverage-frontier summary of one exploration run.
///
/// `elapsed_secs` is the wall-clock time of the run (used for the
/// schedules/sec throughput row); pass 0.0 to omit throughput.
pub fn render_explore_summary(
    cfg: &ExploreConfig,
    report: &ExploreReport,
    elapsed_secs: f64,
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "fault-schedule exploration — protocol={} n={} rounds={} P={} R={} seed={:#x} ({})\n\n",
        cfg.protocol.as_str(),
        cfg.n,
        cfg.rounds,
        cfg.penalty_threshold,
        cfg.reward_threshold,
        cfg.seed,
        match cfg.strategy {
            Strategy::CoverageGuided => "coverage-guided",
            Strategy::Random => "pure random",
        },
    ));
    let mut t = Table::new(vec!["Coverage frontier", "Value"]);
    t.row(vec![
        "schedules executed".to_string(),
        report.executed.to_string(),
    ]);
    t.row(vec![
        "unique state fingerprints".to_string(),
        report.unique_states.to_string(),
    ]);
    t.row(vec![
        "coverage-discovering schedules".to_string(),
        report.corpus.len().to_string(),
    ]);
    if elapsed_secs > 0.0 {
        t.row(vec![
            "schedules/sec".to_string(),
            format!("{:.1}", report.executed as f64 / elapsed_secs),
        ]);
    }
    t.row(vec![
        "violations found".to_string(),
        report.counterexamples.len().to_string(),
    ]);
    t.row(vec![
        "shrink executions spent".to_string(),
        report.shrink_steps.to_string(),
    ]);
    out.push_str(&t.render());
    for (i, cx) in report.counterexamples.iter().enumerate() {
        out.push_str(&format!(
            "\ncounterexample {}: {} fault(s) shrunk to {} (id {:016x}, {} shrink steps)\n",
            i + 1,
            cx.original.faults.len(),
            cx.shrunk.faults.len(),
            cx.shrunk.id(),
            cx.shrink_steps,
        ));
        for v in &cx.violations {
            out.push_str(&format!("  {v}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_fault::explore::explore;

    #[test]
    fn summary_mentions_the_frontier_numbers() {
        let cfg = ExploreConfig {
            budget: 15,
            ..ExploreConfig::default()
        };
        let report = explore(&cfg);
        let s = render_explore_summary(&cfg, &report, 0.5);
        assert!(s.contains("unique state fingerprints"));
        assert!(s.contains("schedules/sec"));
        assert!(s.contains(&report.unique_states.to_string()));
        assert!(s.contains("coverage-guided"));
        assert!(s.contains("protocol=diag"));
    }

    #[test]
    fn summary_labels_the_variant_under_test() {
        let cfg = ExploreConfig {
            budget: 5,
            protocol: tt_fault::ProtocolUnderTest::Membership,
            ..ExploreConfig::default()
        };
        let report = explore(&cfg);
        let s = render_explore_summary(&cfg, &report, 0.0);
        assert!(s.contains("protocol=membership"), "{s}");
    }

    #[test]
    fn zero_elapsed_omits_throughput() {
        let cfg = ExploreConfig {
            budget: 5,
            strategy: Strategy::Random,
            ..ExploreConfig::default()
        };
        let report = explore(&cfg);
        let s = render_explore_summary(&cfg, &report, 0.0);
        assert!(!s.contains("schedules/sec"));
        assert!(s.contains("pure random"));
    }
}
