//! Consumers of the `tt-sim` provenance-tracing layer: chain
//! reconstruction, detection-latency verification and trace export.
//!
//! A [`tt_sim::RecordingTraceSink`] turns a simulation into a flat
//! [`SpanEvent`] stream; this module reassembles it into per-cause
//! [`ProvenanceChain`]s — slot fault → local detection → dissemination →
//! aggregation → H-maj analysis → p/r counter transition — and derives the
//! paper's latency claims from them:
//!
//! * the **detection latency** of every diagnosed fault is the diagnosis
//!   lag, 2 or 3 rounds (Lemma 1), comfortably within the
//!   [`LATENCY_BOUND_ROUNDS`] = 4 rounds this layer asserts;
//! * the latency decomposes into a **read-alignment delay** (fault to
//!   aligned local syndrome, one round), a **send-alignment delay**
//!   (syndrome to its transmission slot) and one round of analysis.
//!
//! Exports: one JSON line per span (`ttdiag trace --format jsonl`) and
//! Chrome trace-event JSON for [Perfetto](https://ui.perfetto.dev)
//! (`--format perfetto`) with one track per node and one slice per span.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use serde::Value;
use tt_sim::{CauseId, Framed, Nanos, RoundIndex, SpanEvent, TracePhase};

use crate::table::Table;

/// The detection-latency bound asserted over every reconstructed chain:
/// a fault in round `d` is diagnosed no later than round `d + 4`.
///
/// The protocol's actual bound is the diagnosis lag (2 or 3 rounds,
/// Lemma 1); 4 leaves one round of slack for variant protocols such as
/// the membership job, whose accusation round trip adds an execution.
pub const LATENCY_BOUND_ROUNDS: u64 = 4;

/// The reconstructed provenance chain of one causal id: every span any
/// node emitted about `(subject, diagnosed round)`, in emission order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProvenanceChain {
    cause: CauseId,
    spans: Vec<SpanEvent>,
}

impl ProvenanceChain {
    /// The causal id the chain reconstructs.
    pub fn cause(&self) -> CauseId {
        self.cause
    }

    /// All spans of the chain, in emission order.
    pub fn spans(&self) -> &[SpanEvent] {
        &self.spans
    }

    /// The spans of one pipeline phase.
    pub fn phase_spans(&self, phase: TracePhase) -> impl Iterator<Item = &SpanEvent> {
        self.spans.iter().filter(move |s| s.phase() == phase)
    }

    /// Whether the chain contains at least one span of `phase`.
    pub fn has_phase(&self, phase: TracePhase) -> bool {
        self.phase_spans(phase).next().is_some()
    }

    /// The round of the (suspected) fault: the diagnosed round of the
    /// causal id.
    pub fn fault_round(&self) -> RoundIndex {
        self.cause.diagnosed
    }

    /// The round of the earliest local detection, if any node's aligned
    /// syndrome accused the subject.
    pub fn detection_round(&self) -> Option<RoundIndex> {
        self.phase_spans(TracePhase::Detection)
            .map(|s| s.round())
            .min()
    }

    /// The earliest round whose sending slot carried an accusing syndrome.
    pub fn tx_round(&self) -> Option<RoundIndex> {
        self.phase_spans(TracePhase::Dissemination)
            .filter_map(|s| match s {
                SpanEvent::Dissemination { tx_round, .. } => Some(*tx_round),
                _ => None,
            })
            .min()
    }

    /// The round whose activations voted on the diagnosed round (the
    /// earliest analysis span).
    pub fn decided_round(&self) -> Option<RoundIndex> {
        self.phase_spans(TracePhase::Analysis)
            .map(|s| s.round())
            .min()
    }

    /// Whether any analysis span convicted the subject (`decided ==
    /// Some(false)`).
    pub fn convicted(&self) -> bool {
        self.phase_spans(TracePhase::Analysis).any(|s| {
            matches!(
                s,
                SpanEvent::Analysis {
                    decided: Some(false),
                    ..
                }
            )
        })
    }

    /// End-to-end detection latency in rounds: fault round to verdict
    /// round. `None` if the chain never reached the analysis phase.
    pub fn detection_latency(&self) -> Option<u64> {
        self.decided_round()
            .map(|d| d.as_u64().saturating_sub(self.fault_round().as_u64()))
    }

    /// Rounds from the fault to its earliest aligned local detection
    /// (the read-alignment share of the latency; 1 in steady state).
    pub fn read_alignment_delay(&self) -> Option<u64> {
        self.detection_round()
            .map(|d| d.as_u64().saturating_sub(self.fault_round().as_u64()))
    }

    /// Rounds from the earliest detection to the slot transmitting the
    /// accusing syndrome (the send-alignment share of the latency; 0 with
    /// `all_send_curr_round`, otherwise 1).
    pub fn send_alignment_delay(&self) -> Option<u64> {
        match (self.detection_round(), self.tx_round()) {
            (Some(det), Some(tx)) => Some(tx.as_u64().saturating_sub(det.as_u64())),
            _ => None,
        }
    }
}

/// Groups a flat span stream into [`ProvenanceChain`]s, sorted by causal
/// id (subject first, then diagnosed round).
pub fn group_chains(spans: &[SpanEvent]) -> Vec<ProvenanceChain> {
    let mut by_cause: BTreeMap<CauseId, Vec<SpanEvent>> = BTreeMap::new();
    for s in spans {
        by_cause.entry(s.cause()).or_default().push(*s);
    }
    by_cause
        .into_iter()
        .map(|(cause, spans)| ProvenanceChain { cause, spans })
        .collect()
}

/// Detection-latency accounting over a set of reconstructed chains.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LatencySummary {
    /// Detection latency in rounds → number of diagnosed chains.
    pub latency_histogram: BTreeMap<u64, u64>,
    /// Read-alignment delay in rounds → number of chains.
    pub read_alignment: BTreeMap<u64, u64>,
    /// Send-alignment delay in rounds → number of chains.
    pub send_alignment: BTreeMap<u64, u64>,
    /// Chains that never reached the analysis phase (e.g. accusations
    /// still in flight when the run ended).
    pub undiagnosed: u64,
}

impl LatencySummary {
    /// Builds the per-fault latency histograms of `chains`.
    pub fn of(chains: &[ProvenanceChain]) -> Self {
        let mut s = LatencySummary::default();
        for c in chains {
            match c.detection_latency() {
                Some(l) => *s.latency_histogram.entry(l).or_insert(0) += 1,
                None => s.undiagnosed += 1,
            }
            if let Some(d) = c.read_alignment_delay() {
                *s.read_alignment.entry(d).or_insert(0) += 1;
            }
            if let Some(d) = c.send_alignment_delay() {
                *s.send_alignment.entry(d).or_insert(0) += 1;
            }
        }
        s
    }

    /// Number of diagnosed chains (those with a measured latency).
    pub fn diagnosed(&self) -> u64 {
        self.latency_histogram.values().sum()
    }

    /// The worst measured detection latency, if any chain was diagnosed.
    pub fn max_latency(&self) -> Option<u64> {
        self.latency_histogram.keys().next_back().copied()
    }

    /// Checks every diagnosed chain against `bound` rounds, returning the
    /// offending chains' causal ids on failure.
    pub fn check_bound(chains: &[ProvenanceChain], bound: u64) -> Result<Self, Vec<CauseId>> {
        let violations: Vec<CauseId> = chains
            .iter()
            .filter(|c| c.detection_latency().is_some_and(|l| l > bound))
            .map(|c| c.cause())
            .collect();
        if violations.is_empty() {
            Ok(Self::of(chains))
        } else {
            Err(violations)
        }
    }
}

/// Renders a terminal summary of the reconstructed chains: one row per
/// chain plus the latency histograms (`ttdiag trace --format summary`).
pub fn render_provenance_summary(chains: &[ProvenanceChain]) -> String {
    let mut out = String::new();
    if chains.is_empty() {
        out.push_str("no provenance spans recorded\n");
        return out;
    }
    let mut t = Table::new(vec![
        "Subject", "Fault", "Detected", "Tx", "Decided", "Latency", "Verdict",
    ]);
    let fmt_round = |r: Option<RoundIndex>| {
        r.map(|r| r.as_u64().to_string())
            .unwrap_or_else(|| "-".into())
    };
    for c in chains {
        t.row(vec![
            format!("{}", c.cause().subject),
            c.fault_round().as_u64().to_string(),
            fmt_round(c.detection_round()),
            fmt_round(c.tx_round()),
            fmt_round(c.decided_round()),
            c.detection_latency()
                .map(|l| l.to_string())
                .unwrap_or_else(|| "-".into()),
            if c.convicted() {
                "faulty".into()
            } else if c.decided_round().is_some() {
                "healthy".into()
            } else {
                "-".into()
            },
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');
    let s = LatencySummary::of(chains);
    let _ = writeln!(
        out,
        "{} chains, {} diagnosed, {} undiagnosed, max latency {} rounds (bound {})",
        chains.len(),
        s.diagnosed(),
        s.undiagnosed,
        s.max_latency()
            .map(|l| l.to_string())
            .unwrap_or_else(|| "-".into()),
        LATENCY_BOUND_ROUNDS,
    );
    let mut h = Table::new(vec![
        "Latency (rounds)",
        "Chains",
        "Read-align",
        "Send-align",
    ]);
    let rounds: std::collections::BTreeSet<u64> = s
        .latency_histogram
        .keys()
        .chain(s.read_alignment.keys())
        .chain(s.send_alignment.keys())
        .copied()
        .collect();
    let count = |m: &BTreeMap<u64, u64>, r: u64| m.get(&r).copied().unwrap_or(0).to_string();
    for r in rounds {
        h.row(vec![
            r.to_string(),
            count(&s.latency_histogram, r),
            count(&s.read_alignment, r),
            count(&s.send_alignment, r),
        ]);
    }
    out.push_str(&h.render());
    out
}

/// Serializes a span stream as JSON lines: one framed [`SpanEvent`] per
/// line, in emission order (`ttdiag trace --format jsonl`).
///
/// Each line is `{"seq": N, "event": {...}}` with a monotone `seq` equal to
/// the span's stream position — the same [`Framed`] unit the live feeds of
/// `ttdiag serve` use — so consumers can detect gaps. [`parse_spans_jsonl`]
/// also accepts the pre-framing format (bare span objects).
pub fn spans_to_jsonl(spans: &[SpanEvent]) -> String {
    let mut out = String::with_capacity(spans.len() * 112);
    for (seq, &event) in spans.iter().enumerate() {
        let framed = Framed {
            seq: seq as u64,
            event,
        };
        out.push_str(&serde_json::to_string(&framed).expect("span serialization is infallible"));
        out.push('\n');
    }
    out
}

/// Parses a span JSONL stream back into spans, accepting both the framed
/// format written by [`spans_to_jsonl`] and the pre-framing format (one
/// bare [`SpanEvent`] object per line).
///
/// # Errors
///
/// Returns the underlying JSON error for the first unparseable line.
pub fn parse_spans_jsonl(jsonl: &str) -> Result<Vec<SpanEvent>, serde_json::Error> {
    jsonl
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| serde_json::from_str::<Framed<SpanEvent>>(l).map(|f| f.event))
        .collect()
}

/// Converts a span stream into Chrome trace-event JSON for Perfetto or
/// `chrome://tracing` (`ttdiag trace --format perfetto`).
///
/// Layout: one process, one track (thread) per node named `node N`, one
/// complete (`ph: "X"`) slice per span. A round of simulated time is split
/// into six equal sub-slots, one per pipeline phase in causal order, so a
/// chain reads left to right inside each round and across rounds. Slice
/// `args` carry the causal id (subject, diagnosed round, packed
/// correlation key) plus the phase-specific fields.
pub fn spans_to_perfetto(spans: &[SpanEvent], round_length: Nanos) -> String {
    let phase_ns = (round_length.as_nanos() / TracePhase::ALL.len() as u64).max(1);
    let jmap = |entries: Vec<(&str, Value)>| {
        Value::Map(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    };
    let jstr = |s: String| Value::Str(s);
    let to_us = |ns: u64| Value::F64(ns as f64 / 1_000.0);
    let mut events = Vec::with_capacity(spans.len() + 8);
    let nodes: std::collections::BTreeSet<u32> = spans.iter().map(|s| s.node().get()).collect();
    for n in nodes {
        events.push(jmap(vec![
            ("ph", jstr("M".into())),
            ("pid", Value::U64(1)),
            ("tid", Value::U64(n as u64)),
            ("name", jstr("thread_name".into())),
            ("args", jmap(vec![("name", jstr(format!("node {n}")))])),
        ]));
    }
    for s in spans {
        let start =
            s.round().start_time(round_length).as_nanos() + s.phase().index() as u64 * phase_ns;
        let cause = s.cause();
        let mut args = vec![
            ("subject", Value::U64(cause.subject.get() as u64)),
            ("diagnosed", Value::U64(cause.diagnosed.as_u64())),
            ("cause_key", Value::U64(cause.key())),
        ];
        match s {
            SpanEvent::SlotFault { class, .. } => {
                args.push(("class", jstr(format!("{class:?}"))));
            }
            SpanEvent::Detection { .. } => {}
            SpanEvent::Dissemination { tx_round, .. } => {
                args.push(("tx_round", Value::U64(tx_round.as_u64())));
            }
            SpanEvent::Aggregation { epsilon, .. } => {
                args.push(("epsilon", Value::U64(*epsilon)));
            }
            SpanEvent::Analysis {
                ok,
                faulty,
                epsilon,
                decided,
                ..
            } => {
                args.push(("ok", Value::U64(*ok)));
                args.push(("faulty", Value::U64(*faulty)));
                args.push(("epsilon", Value::U64(*epsilon)));
                args.push((
                    "decided",
                    match decided {
                        Some(b) => Value::Bool(*b),
                        None => Value::Null,
                    },
                ));
            }
            SpanEvent::Update { kind, counter, .. } => {
                args.push(("kind", jstr(kind.label().into())));
                args.push(("counter", Value::U64(*counter)));
            }
        }
        events.push(jmap(vec![
            ("ph", jstr("X".into())),
            ("pid", Value::U64(1)),
            ("tid", Value::U64(s.node().get() as u64)),
            ("ts", to_us(start)),
            ("dur", to_us(phase_ns)),
            ("name", jstr(s.kind().into())),
            ("cat", jstr("provenance".into())),
            ("args", jmap(args)),
        ]));
    }
    serde_json::to_string_pretty(&jmap(vec![
        ("traceEvents", Value::Seq(events)),
        ("displayTimeUnit", jstr("ms".into())),
    ]))
    .expect("trace serialization is infallible")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_sim::{NodeId, SlotFaultClass, UpdateKind};

    fn chain_spans(subject: u32, fault: u64, lag: u64) -> Vec<SpanEvent> {
        let cause = CauseId::new(NodeId::new(subject), RoundIndex::new(fault));
        let node = NodeId::new(1);
        vec![
            SpanEvent::SlotFault {
                cause,
                class: SlotFaultClass::Benign,
            },
            SpanEvent::Detection {
                cause,
                node,
                round: RoundIndex::new(fault + 1),
            },
            SpanEvent::Dissemination {
                cause,
                node,
                round: RoundIndex::new(fault + lag - 1),
                tx_round: RoundIndex::new(fault + lag - 1),
            },
            SpanEvent::Aggregation {
                cause,
                node,
                round: RoundIndex::new(fault + lag),
                epsilon: 0,
            },
            SpanEvent::Analysis {
                cause,
                node,
                round: RoundIndex::new(fault + lag),
                ok: 0,
                faulty: 3,
                epsilon: 0,
                decided: Some(false),
            },
            SpanEvent::Update {
                cause,
                node,
                round: RoundIndex::new(fault + lag),
                kind: UpdateKind::Penalty,
                counter: 1,
            },
        ]
    }

    #[test]
    fn chains_group_by_cause_and_measure_latency() {
        let mut spans = chain_spans(2, 10, 3);
        spans.extend(chain_spans(3, 12, 2));
        let chains = group_chains(&spans);
        assert_eq!(chains.len(), 2);
        let c = &chains[0];
        assert_eq!(c.cause().subject, NodeId::new(2));
        assert_eq!(c.fault_round(), RoundIndex::new(10));
        assert_eq!(c.detection_round(), Some(RoundIndex::new(11)));
        assert_eq!(c.tx_round(), Some(RoundIndex::new(12)));
        assert_eq!(c.decided_round(), Some(RoundIndex::new(13)));
        assert_eq!(c.detection_latency(), Some(3));
        assert_eq!(c.read_alignment_delay(), Some(1));
        assert_eq!(c.send_alignment_delay(), Some(1));
        assert!(c.convicted());
        assert_eq!(chains[1].detection_latency(), Some(2));
        assert_eq!(chains[1].send_alignment_delay(), Some(0));
        for phase in TracePhase::ALL {
            assert!(c.has_phase(phase));
        }
    }

    #[test]
    fn latency_summary_histograms_and_bound() {
        let mut spans = chain_spans(2, 10, 3);
        spans.extend(chain_spans(3, 12, 2));
        // An undiagnosed chain: detection only, run ended before analysis.
        spans.push(SpanEvent::Detection {
            cause: CauseId::new(NodeId::new(4), RoundIndex::new(30)),
            node: NodeId::new(1),
            round: RoundIndex::new(31),
        });
        let chains = group_chains(&spans);
        let s = LatencySummary::of(&chains);
        assert_eq!(s.diagnosed(), 2);
        assert_eq!(s.undiagnosed, 1);
        assert_eq!(s.max_latency(), Some(3));
        assert_eq!(s.latency_histogram.get(&3), Some(&1));
        // The undiagnosed chain still measured its read-alignment delay.
        assert_eq!(s.read_alignment.get(&1), Some(&3));
        assert!(LatencySummary::check_bound(&chains, LATENCY_BOUND_ROUNDS).is_ok());
        let err = LatencySummary::check_bound(&chains, 2).unwrap_err();
        assert_eq!(err, vec![CauseId::new(NodeId::new(2), RoundIndex::new(10))]);
    }

    #[test]
    fn summary_renders_chain_rows() {
        let chains = group_chains(&chain_spans(2, 10, 3));
        let text = render_provenance_summary(&chains);
        assert!(text.contains("faulty"));
        assert!(text.contains("max latency 3 rounds (bound 4)"));
        assert!(render_provenance_summary(&[]).contains("no provenance spans"));
    }

    #[test]
    fn jsonl_round_trips_spans_with_contiguous_seq() {
        let spans = chain_spans(2, 10, 3);
        let jsonl = spans_to_jsonl(&spans);
        for (i, line) in jsonl.lines().enumerate() {
            let framed: Framed<SpanEvent> = serde_json::from_str(line).unwrap();
            assert_eq!(framed.seq, i as u64, "seq must equal stream position");
        }
        assert_eq!(parse_spans_jsonl(&jsonl).unwrap(), spans);
    }

    #[test]
    fn jsonl_parser_accepts_preframing_bare_spans() {
        let spans = chain_spans(2, 10, 3);
        let bare: String = spans
            .iter()
            .map(|s| serde_json::to_string(s).unwrap() + "\n")
            .collect();
        assert_eq!(parse_spans_jsonl(&bare).unwrap(), spans);
    }

    fn field<'a>(v: &'a Value, key: &str) -> &'a Value {
        Value::get_field(v.as_map().unwrap(), key).unwrap()
    }

    fn as_f64(v: &Value) -> f64 {
        match v {
            Value::F64(f) => *f,
            Value::U64(u) => *u as f64,
            Value::I64(i) => *i as f64,
            other => panic!("not a number: {other:?}"),
        }
    }

    #[test]
    fn perfetto_export_is_valid_chrome_trace_json() {
        let spans = chain_spans(2, 10, 3);
        let round = Nanos::from_micros(2_500);
        let text = spans_to_perfetto(&spans, round);
        let doc: Value = serde_json::from_str(&text).unwrap();
        let events = field(&doc, "traceEvents").as_seq().unwrap();
        let ph = |e: &&Value, p: &str| field(e, "ph").as_str() == Some(p);
        // One metadata event per node track plus one slice per span.
        let meta: Vec<&Value> = events.iter().filter(|e| ph(e, "M")).collect();
        let slices: Vec<&Value> = events.iter().filter(|e| ph(e, "X")).collect();
        assert_eq!(meta.len(), 2, "tracks for node 1 and the subject node 2");
        assert_eq!(slices.len(), spans.len());
        for s in &slices {
            assert!(as_f64(field(s, "dur")) > 0.0);
            assert_eq!(field(field(s, "args"), "subject"), &Value::U64(2));
            assert_eq!(field(field(s, "args"), "diagnosed"), &Value::U64(10));
        }
        let named = |name: &str| {
            slices
                .iter()
                .find(|s| field(s, "name").as_str() == Some(name))
                .unwrap()
        };
        // The slot-fault slice sits on the subject's own track at the
        // fault round's start.
        let fault = named("slot_fault");
        assert_eq!(field(fault, "tid"), &Value::U64(2));
        assert_eq!(as_f64(field(fault, "ts")), 10.0 * 2_500.0);
        // Phase sub-slots order a chain left to right within a round.
        assert!(as_f64(field(named("analysis"), "ts")) < as_f64(field(named("update"), "ts")));
    }
}
