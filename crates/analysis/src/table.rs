//! Paper-style ASCII tables for the experiment binaries.

/// A simple column-aligned ASCII table.
///
/// ```
/// use tt_analysis::Table;
/// let mut t = Table::new(vec!["Setting", "Criticality class", "Time to isolation"]);
/// t.row(vec!["Automotive", "SC", "0.518 sec"]);
/// let rendered = t.render();
/// assert!(rendered.contains("| Automotive | SC"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given header.
    pub fn new(header: Vec<impl Into<String>>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<impl Into<String>>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with `|`-separated, space-padded columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(cell, w)| format!("{cell:<w$}", w = *w))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        let sep = format!(
            "|{}|",
            widths
                .iter()
                .map(|w| "-".repeat(w + 2))
                .collect::<Vec<_>>()
                .join("|")
        );
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a", "long header", "c"]);
        t.row(vec!["wide cell", "x", "1"]);
        t.row(vec!["y", "z", "23"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines equal width.
        assert!(lines.windows(2).all(|w| w[0].len() == w[1].len()));
        assert!(lines[0].contains("| a "));
        assert!(lines[2].contains("| wide cell |"));
    }

    #[test]
    fn tracks_row_count() {
        let mut t = Table::new(vec!["x"]);
        assert!(t.is_empty());
        t.row(vec!["1"]).row(vec!["2"]);
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_misshaped_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn handles_unicode_widths() {
        let mut t = Table::new(vec!["ε-row"]);
        t.row(vec!["ε ε ε"]);
        let r = t.render();
        assert!(r.contains("ε ε ε"));
    }
}
