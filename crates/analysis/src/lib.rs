//! # tt-analysis — tuning procedures, statistics and report rendering
//!
//! The experimental-analysis layer of the reproduction (paper Sec. 9):
//!
//! * [`correlation`] — the probabilistic model behind **Fig. 3**: the
//!   trade-off in choosing the reward threshold `R` between correlating
//!   intermittent faults and falsely correlating independent transients;
//! * [`tuning`] — the experimental procedure behind **Table 2**: measuring
//!   the penalty budget available within each criticality class's tolerated
//!   outage and deriving the penalty threshold `P` and criticality levels
//!   `s_i`;
//! * [`isolation`] — the measurement behind **Table 4**: time to incorrect
//!   isolation of healthy nodes under the abnormal transient scenarios of
//!   Table 3;
//! * [`availability`] — per-node and system availability metrics derived
//!   from isolation events;
//! * [`sensitivity`] — ablation sweeps over `P`, `R` and burst length
//!   around the paper's operating points;
//! * [`observability`] — consumers of the `tt-sim` metrics layer: event
//!   stream summaries and CSV export for `ttdiag metrics`;
//! * [`provenance`] — consumers of the `tt-sim` tracing layer: causal
//!   chain reconstruction, detection-latency verification (≤ 4 rounds)
//!   and JSONL/Perfetto export for `ttdiag trace`;
//! * [`exploration`] — consumers of the `tt-fault` coverage-guided fault
//!   explorer: frontier summaries for `ttdiag explore`;
//! * [`live`] — incremental aggregation of the `ttdiag serve` live feeds:
//!   sequence-gap accounting and the one-line job summaries behind
//!   `ttdiag watch`;
//! * [`supervision`] — the quarantine/retry/worker-health section of
//!   supervised campaign reports;
//! * [`sweep`] — campaign-scale Monte Carlo tuning sweeps over
//!   `(N, P, R, s, λ)` grids behind `ttdiag tune sweep`: measured Fig. 3
//!   boundaries with Wilson confidence intervals, time-to-isolation
//!   distributions, and byte-identical halt/resume;
//! * [`stats`] — summary statistics for repeated seeded experiments;
//! * [`table`] — paper-style ASCII table rendering;
//! * [`report`] — serializable paper-vs-measured records backing
//!   EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod availability;
pub mod chart;
pub mod correlation;
pub mod exploration;
pub mod isolation;
pub mod live;
pub mod observability;
pub mod provenance;
pub mod report;
pub mod sensitivity;
pub mod stats;
pub mod supervision;
pub mod sweep;
pub mod table;
pub mod tuning;

pub use availability::{availability_from_isolations, availability_of, AvailabilityReport};
pub use chart::{line_chart, step_chart};
pub use correlation::{correlation_probability, max_reward_threshold, CorrelationPoint};
pub use exploration::render_explore_summary;
pub use isolation::{measure_time_to_isolation, IsolationMeasurement};
pub use live::{GapTracker, LiveJobView};
pub use observability::{events_to_csv, render_summary, EventSummary, EVENTS_CSV_HEADER};
pub use provenance::{
    group_chains, parse_spans_jsonl, render_provenance_summary, spans_to_jsonl, spans_to_perfetto,
    LatencySummary, ProvenanceChain, LATENCY_BOUND_ROUNDS,
};
pub use report::{ExperimentRecord, ReportBuilder};
pub use sensitivity::{burst_length_sweep, penalty_sweep, reward_sweep};
pub use stats::{percentile, wilson_interval, Summary};
pub use supervision::render_supervision_summary;
pub use sweep::{
    analytic_agreement, check_analytic_agreement, fig3_csv, isolation_csv, render_sweep_summary,
    resume_sweep, run_sweep, safety_curve_csv, sweep_json, AgreementRow, CellEstimate, CellReport,
    CorrelationEstimate, IsolationLatency, Proportion, SweepCell, SweepCheckpoint, SweepConfig,
    SweepOutcome, SweepReport, SweepSupervisor, SWEEP_Z,
};
pub use table::Table;
pub use tuning::{
    aerospace_setup, automotive_setup, tune, CriticalityClass, DomainSetup, TunedClass,
    TuningResult,
};
