//! Sensitivity sweeps over the protocol's tuning knobs.
//!
//! The paper tunes `P`, `R` and `s_i` at single operating points (Table 2).
//! These sweeps chart the neighbourhoods of those points — the ablation
//! data behind the design choices:
//!
//! * [`penalty_sweep`] — time to incorrect isolation under a transient
//!   scenario as a function of the penalty threshold `P` (availability
//!   grows with `P`);
//! * [`reward_sweep`] — whether an intermittent fault of a given period is
//!   still correlated, as a function of the reward threshold `R` (the
//!   empirical counterpart of Fig. 3's model);
//! * [`burst_length_sweep`] — detection completeness and penalty growth as
//!   bursts lengthen from one slot to multiple rounds (the Sec. 8
//!   injection axis).

use serde::{Deserialize, Serialize};

use tt_core::{DiagJob, PenaltyReward, ProtocolConfig, ReintegrationPolicy};
use tt_fault::{Burst, DisturbanceNode, SenderBurst, TransientScenario};
use tt_sim::{ClusterBuilder, Nanos, NodeId, RoundIndex, TraceMode};

use crate::isolation::measure_time_to_isolation;

/// One point of a penalty-threshold sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PenaltySweepPoint {
    /// The penalty threshold `P` tried.
    pub penalty_threshold: u64,
    /// Time to incorrect isolation under the scenario (`None` = survived).
    pub time_to_isolation: Option<Nanos>,
}

/// Sweeps `P` against a transient scenario at fixed criticality.
pub fn penalty_sweep(
    scenario: &TransientScenario,
    criticality: u64,
    reward_threshold: u64,
    round: Nanos,
    n: usize,
    thresholds: impl IntoIterator<Item = u64>,
) -> Vec<PenaltySweepPoint> {
    thresholds
        .into_iter()
        .map(|p| PenaltySweepPoint {
            penalty_threshold: p,
            time_to_isolation: measure_time_to_isolation(
                scenario,
                criticality,
                p,
                reward_threshold,
                round,
                n,
            )
            .time_to_isolation,
        })
        .collect()
}

/// One point of a reward-threshold sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RewardSweepPoint {
    /// The reward threshold `R` tried.
    pub reward_threshold: u64,
    /// Whether faults recurring at the probed period were correlated all
    /// the way to isolation.
    pub correlated: bool,
    /// Rounds until isolation (when correlated).
    pub rounds_to_isolation: Option<u64>,
}

/// Sweeps `R` against an intermittent fault of the given `period` (rounds),
/// with `P = faults_to_isolate - 1` so that `faults_to_isolate` correlated
/// faults trigger isolation.
///
/// Empirically reproduces the boundary `R >= period - 1`: smaller `R`
/// forgets between faults (the paper's Fig. 3 trade-off, measured rather
/// than modelled).
pub fn reward_sweep(
    period: u64,
    faults_to_isolate: u64,
    n: usize,
    rewards: impl IntoIterator<Item = u64>,
) -> Vec<RewardSweepPoint> {
    let faulty = NodeId::new(2);
    let start = 8u64;
    let total = start + period * (faults_to_isolate + 2) + 16;
    rewards
        .into_iter()
        .map(|r| {
            let config = ProtocolConfig::builder(n)
                .penalty_threshold(faults_to_isolate - 1)
                .reward_threshold(r)
                .build()
                .expect("valid");
            let mut pipeline = DisturbanceNode::new(0);
            let mut r0 = start;
            while r0 < total {
                pipeline.push(SenderBurst::new(faulty, RoundIndex::new(r0), 1));
                r0 += period;
            }
            let mut cluster = ClusterBuilder::new(n)
                .trace_mode(TraceMode::Off)
                .build_with_jobs(
                    |id| Box::new(DiagJob::with_logging(id, config.clone(), false)),
                    Box::new(pipeline),
                );
            cluster.run_rounds(total);
            let job: &DiagJob = cluster.job_as(NodeId::new(1)).expect("diag job");
            let rounds_to_isolation = job
                .isolations()
                .first()
                .map(|iso| iso.decided_at.as_u64() - start);
            RewardSweepPoint {
                reward_threshold: r,
                correlated: rounds_to_isolation.is_some(),
                rounds_to_isolation,
            }
        })
        .collect()
}

/// One point of a burst-length sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BurstSweepPoint {
    /// Burst length in slots.
    pub len_slots: u64,
    /// Number of (node, round) convictions recorded by the protocol.
    pub convictions: u64,
    /// Ground-truth faulty slots on the wire.
    pub faulty_slots: u64,
    /// Maximum penalty reached by any node.
    pub max_penalty: u64,
}

/// Sweeps burst length (starting at slot 0 of round 10) and reports
/// detection completeness and counter growth.
pub fn burst_length_sweep(
    n: usize,
    lengths: impl IntoIterator<Item = u64>,
) -> Vec<BurstSweepPoint> {
    lengths
        .into_iter()
        .map(|len| {
            let config = ProtocolConfig::builder(n)
                .penalty_threshold(u64::MAX / 2)
                .reward_threshold(u64::MAX / 2)
                .build()
                .expect("valid");
            let pipeline =
                DisturbanceNode::new(0).with(Burst::in_round(RoundIndex::new(10), 0, len, n));
            let total = 10 + len.div_ceil(n as u64) + 10;
            let mut cluster = ClusterBuilder::new(n).build_with_jobs(
                |id| Box::new(DiagJob::new(id, config.clone())),
                Box::new(pipeline),
            );
            cluster.run_rounds(total);
            let job: &DiagJob = cluster.job_as(NodeId::new(1)).expect("diag job");
            let convictions = job
                .health_log()
                .iter()
                .flat_map(|h| h.health.iter())
                .filter(|&&ok| !ok)
                .count() as u64;
            let max_penalty = NodeId::all(n).map(|i| job.penalty(i)).max().unwrap_or(0);
            BurstSweepPoint {
                len_slots: len,
                convictions,
                faulty_slots: cluster.trace().records().len() as u64,
                max_penalty,
            }
        })
        .collect()
}

/// Replays Alg. 2 analytically on a fault pattern — used to cross-validate
/// the sweeps against the pure counter semantics without a simulator.
pub fn replay_pr(
    pattern: impl IntoIterator<Item = bool>, // true = faulty this round
    criticality: u64,
    p: u64,
    r: u64,
) -> Option<u64> {
    let mut pr = PenaltyReward::new(1, vec![criticality], p, r, ReintegrationPolicy::Never);
    for (round, faulty) in pattern.into_iter().enumerate() {
        if !pr.update(&[!faulty]).is_empty() {
            return Some(round as u64);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn penalty_sweep_is_monotone() {
        let scenario = TransientScenario::blinking_light();
        let points = penalty_sweep(
            &scenario,
            40,
            1_000_000,
            Nanos::from_micros(2_500),
            4,
            [50, 197, 700],
        );
        let times: Vec<f64> = points
            .iter()
            .map(|p| p.time_to_isolation.expect("isolated").as_secs_f64())
            .collect();
        assert!(
            times.windows(2).all(|w| w[0] <= w[1]),
            "larger P buys availability: {times:?}"
        );
        // P = 197 reproduces the Table 4 SC point inside the sweep.
        assert!((times[1] - 0.5175).abs() < 0.01);
    }

    #[test]
    fn reward_sweep_finds_the_correlation_boundary() {
        // Faults every 10 rounds; 3 correlated faults isolate (P = 2).
        let points = reward_sweep(10, 3, 4, [5, 8, 9, 10, 50]);
        // R < period: decorrelated, survives. R >= period: isolated.
        // The boundary sits at R = period - 1 = 9: with 9 clean rounds
        // between faults the reward reaches R and resets the counters.
        assert!(!points[0].correlated, "R=5 forgets");
        assert!(!points[1].correlated, "R=8 forgets");
        assert!(
            !points[2].correlated,
            "R=9 forgets (exactly 9 clean rounds)"
        );
        assert!(points[3].correlated, "R=10 correlates");
        assert!(points[4].correlated, "R=50 correlates");
        // Cross-check against the analytic counter replay.
        let pattern = (0..200u64).map(|r| r % 10 == 0);
        assert_eq!(replay_pr(pattern, 1, 2, 10), Some(20));
        let pattern = (0..200u64).map(|r| r % 10 == 0);
        assert_eq!(replay_pr(pattern, 1, 2, 9), None);
    }

    #[test]
    fn burst_sweep_detects_every_faulty_slot() {
        let points = burst_length_sweep(4, [1, 2, 4, 8, 16]);
        for p in &points {
            assert_eq!(p.faulty_slots, p.len_slots, "trace records the burst");
            assert_eq!(
                p.convictions, p.len_slots,
                "one conviction per faulty slot (completeness)"
            );
        }
        // Penalty growth: a 2-round burst costs each node 2 penalties.
        assert_eq!(points[4].max_penalty, 4);
        assert_eq!(points[0].max_penalty, 1);
    }
}
