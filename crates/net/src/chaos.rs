//! Deterministic seeded chaos for the UDP transport.
//!
//! [`NetChaos`] decides, per directed link and round, whether the frame is
//! delivered, dropped, duplicated, held back one round (reorder), or
//! corrupted on the wire. Every decision is a pure function of
//! `(seed, sender, receiver, round)` via the same SplitMix64 draw the
//! harness [`tt_fault::ChaosPlan`] uses, so a run's injected fault pattern
//! is byte-identical across repetitions of the same seed and topology —
//! the property the `net-smoke` CI job and the determinism proptests pin.
//!
//! Chaos is injected on the *sender* side (see
//! [`crate::transport::LossyUdp`]), on top of whatever loss the real
//! socket path adds; genuine UDP loss shows up in the observed fault
//! pattern but never in the planned one.

use serde::{Deserialize, Serialize};
use tt_fault::splitmix64;
use tt_sim::Fnv1a64;

/// Per-link injection rates, in per-mille of transmitted frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkRates {
    /// Frames silently discarded.
    pub drop_per_mille: u16,
    /// Frames sent twice back-to-back.
    pub duplicate_per_mille: u16,
    /// Frames held back and released just before the next round's
    /// transmission — they arrive one round stale.
    pub reorder_per_mille: u16,
    /// Frames with one byte flipped on the wire (the CRC rejects them at
    /// the receiver: a corrupted frame is an *invalid* reception).
    pub corrupt_per_mille: u16,
}

impl LinkRates {
    /// No injection at all.
    pub const QUIET: LinkRates = LinkRates {
        drop_per_mille: 0,
        duplicate_per_mille: 0,
        reorder_per_mille: 0,
        corrupt_per_mille: 0,
    };

    /// Pure loss at the given rate.
    pub fn loss(drop_per_mille: u16) -> Self {
        LinkRates {
            drop_per_mille,
            ..LinkRates::QUIET
        }
    }

    /// Sum of all rates (must stay `<= 1000` to leave room for delivery).
    pub fn total(&self) -> u32 {
        u32::from(self.drop_per_mille)
            + u32::from(self.duplicate_per_mille)
            + u32::from(self.reorder_per_mille)
            + u32::from(self.corrupt_per_mille)
    }
}

/// One per-link override inside a [`NetChaos`] plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkOverride {
    /// Sender's 0-based slot.
    pub from_slot: u8,
    /// Receiver's 0-based slot.
    pub to_slot: u8,
    /// Rates for this directed link.
    pub rates: LinkRates,
}

/// What the injector does to one frame on one directed link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAction {
    /// Send unmodified.
    Deliver,
    /// Discard.
    Drop,
    /// Send twice.
    Duplicate,
    /// Hold back; release just before the next round's transmission.
    Reorder,
    /// Flip `mask` into the byte at `byte % wire_len` before sending.
    Corrupt {
        /// Raw byte position (caller reduces modulo the wire length).
        byte: u16,
        /// Non-zero XOR mask.
        mask: u8,
    },
}

/// A seeded, topology-wide chaos plan.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetChaos {
    /// Seed of every per-(link, round) decision.
    pub seed: u64,
    /// Rates applied to links without an override.
    pub default_rates: LinkRates,
    /// Directed-link overrides (first match wins).
    pub links: Vec<LinkOverride>,
}

impl NetChaos {
    /// A plan injecting nothing.
    pub fn quiet(seed: u64) -> Self {
        NetChaos {
            seed,
            default_rates: LinkRates::QUIET,
            links: Vec::new(),
        }
    }

    /// A plan applying `rates` uniformly to every directed link.
    pub fn uniform(seed: u64, rates: LinkRates) -> Self {
        NetChaos {
            seed,
            default_rates: rates,
            links: Vec::new(),
        }
    }

    /// The rates in force on the `from -> to` link.
    pub fn rates(&self, from_slot: u8, to_slot: u8) -> LinkRates {
        self.links
            .iter()
            .find(|l| l.from_slot == from_slot && l.to_slot == to_slot)
            .map(|l| l.rates)
            .unwrap_or(self.default_rates)
    }

    /// The deterministic decision for the frame `from -> to` in `round`.
    ///
    /// Exactly one frame crosses each directed link per round, so
    /// `(link, round)` identifies the frame; the decision never depends on
    /// wall-clock state.
    pub fn action(&self, from_slot: u8, to_slot: u8, round: u64) -> ChaosAction {
        let rates = self.rates(from_slot, to_slot);
        if rates.total() == 0 {
            return ChaosAction::Deliver;
        }
        // Mix the link into the index so sibling links draw independently.
        let idx = round
            .wrapping_mul(0x10000)
            .wrapping_add(u64::from(from_slot) << 8)
            .wrapping_add(u64::from(to_slot));
        let r = splitmix64(self.seed, idx);
        let d = r % 1000;
        let drop = u64::from(rates.drop_per_mille);
        let dup = drop + u64::from(rates.duplicate_per_mille);
        let reorder = dup + u64::from(rates.reorder_per_mille);
        let corrupt = reorder + u64::from(rates.corrupt_per_mille);
        if d < drop {
            ChaosAction::Drop
        } else if d < dup {
            ChaosAction::Duplicate
        } else if d < reorder {
            ChaosAction::Reorder
        } else if d < corrupt {
            ChaosAction::Corrupt {
                byte: (r >> 16) as u16,
                mask: ((r >> 32) as u8) | 1,
            }
        } else {
            ChaosAction::Deliver
        }
    }

    /// A stable digest of the full decision table for `n_nodes` over
    /// `rounds` rounds: the reproducibility witness the CI job compares
    /// across repeated runs of the same seed.
    pub fn digest(&self, n_nodes: u8, rounds: u64) -> u64 {
        use std::hash::Hasher;
        let mut h = Fnv1a64::new();
        for round in 0..rounds {
            for from in 0..n_nodes {
                for to in 0..n_nodes {
                    let code: [u8; 4] = match self.action(from, to, round) {
                        ChaosAction::Deliver => [0, 0, 0, 0],
                        ChaosAction::Drop => [1, 0, 0, 0],
                        ChaosAction::Duplicate => [2, 0, 0, 0],
                        ChaosAction::Reorder => [3, 0, 0, 0],
                        ChaosAction::Corrupt { byte, mask } => {
                            [4, (byte & 0xFF) as u8, (byte >> 8) as u8, mask]
                        }
                    };
                    h.write(&code);
                }
            }
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_plan_always_delivers() {
        let c = NetChaos::quiet(9);
        for round in 0..64 {
            assert_eq!(c.action(0, 1, round), ChaosAction::Deliver);
        }
    }

    #[test]
    fn same_seed_same_decisions() {
        let a = NetChaos::uniform(7, LinkRates::loss(100));
        let b = NetChaos::uniform(7, LinkRates::loss(100));
        for round in 0..128 {
            for from in 0..5u8 {
                for to in 0..5u8 {
                    assert_eq!(a.action(from, to, round), b.action(from, to, round));
                }
            }
        }
        assert_eq!(a.digest(5, 128), b.digest(5, 128));
    }

    #[test]
    fn loss_rate_is_roughly_respected() {
        let c = NetChaos::uniform(3, LinkRates::loss(100));
        let mut dropped = 0;
        let total = 4000;
        for round in 0..total {
            if c.action(1, 2, round) == ChaosAction::Drop {
                dropped += 1;
            }
        }
        // 10% nominal; allow a wide deterministic band.
        assert!((200..=600).contains(&dropped), "dropped {dropped}/{total}");
    }

    #[test]
    fn link_overrides_shadow_the_default() {
        let mut c = NetChaos::uniform(1, LinkRates::loss(1000));
        c.links.push(LinkOverride {
            from_slot: 2,
            to_slot: 0,
            rates: LinkRates::QUIET,
        });
        assert_eq!(c.action(2, 0, 5), ChaosAction::Deliver);
        assert_eq!(c.action(2, 1, 5), ChaosAction::Drop);
    }

    #[test]
    fn corrupt_mask_is_never_zero() {
        let c = NetChaos::uniform(
            11,
            LinkRates {
                corrupt_per_mille: 1000,
                ..LinkRates::QUIET
            },
        );
        for round in 0..256 {
            match c.action(0, 1, round) {
                ChaosAction::Corrupt { mask, .. } => assert_ne!(mask, 0),
                other => panic!("expected corrupt, got {other:?}"),
            }
        }
    }
}
