//! Simulator replay of an observed network run: the verdict cross-check.
//!
//! The distributed run records, per node and round, which sending slots
//! produced a valid reception ([`crate::node::ObservedRound`]). This
//! module folds those
//! observations into a per-`(round, slot)` [`SlotEffect`] table — each
//! transmission is detected exactly by the observers whose validity bit is
//! clear, with the sender's recorded collision verdict — and replays the
//! whole run through the discrete-event simulator with fresh `DiagJob`s on
//! every node, scheduled at the *measured* per-round exec offsets.
//!
//! If the transport adapter is faithful, every survivor's isolation
//! sequence and final ACTIVE view must come out identical. Only survivors
//! are compared: a crashed-and-restarted node re-enters the real run as a
//! fresh incarnation, while its replay twin keeps continuous state through
//! the blackout (its slot effects there are benign, so its divergent
//! syndromes never reach the survivors' votes).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use tt_core::{DiagJob, ProtocolConfig};
use tt_sim::{ClusterBuilder, NodeId, SlotEffect, TxCtx};

use crate::runner::{CrashSpec, NodeTrajectory};

/// The outcome of replaying the observed fault pattern in the simulator.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplayVerdict {
    /// Every compared node's verdict matched the simulator's.
    pub agree: bool,
    /// Rounds replayed.
    pub replayed_rounds: u64,
    /// Node ids (1-based) whose verdicts were compared (the survivors).
    pub compared_nodes: Vec<u32>,
    /// Human-readable description of every divergence found.
    pub mismatches: Vec<String>,
}

/// Replays the run's observed fault pattern through the simulator and
/// compares every survivor's verdict against its network twin.
pub fn replay_cross_check(
    protocol: &ProtocolConfig,
    rounds: u64,
    nodes: &[NodeTrajectory],
    crash: Option<&CrashSpec>,
) -> ReplayVerdict {
    let n = protocol.n_nodes();
    let crash_idx = crash.map(|c| c.node as usize - 1);

    // Index every incarnation's observations by (node, round). A later
    // segment shadows an earlier one (it re-observed nothing in practice:
    // segments of one node cover disjoint round ranges).
    let mut observed: Vec<HashMap<u64, crate::node::ObservedRound>> = vec![HashMap::new(); n];
    let mut offsets: Vec<HashMap<u64, usize>> = vec![HashMap::new(); n];
    for t in nodes {
        let idx = t.node as usize - 1;
        for seg in &t.segments {
            for o in &seg.observed {
                observed[idx].insert(o.round, *o);
                offsets[idx].insert(o.round, usize::from(o.exec_offset));
            }
        }
    }

    // Fold the observations into one SlotEffect per (round, slot).
    let mut effects: Vec<Vec<SlotEffect>> = Vec::with_capacity(rounds as usize);
    for round in 0..rounds {
        let mut per_slot = Vec::with_capacity(n);
        for slot in 0..n {
            let detected_by: Vec<usize> = (0..n)
                .filter(|&j| j != slot)
                .filter(|&j| match observed[j].get(&round) {
                    // An observer that was down contributes no vote; its
                    // replay twin receives the true payload instead.
                    None => false,
                    Some(o) => o.valid_mask & (1 << slot) == 0,
                })
                .collect();
            let collision_ok = observed[slot]
                .get(&round)
                .map(|o| o.collision_ok)
                .unwrap_or(false);
            let effect = if detected_by.is_empty() && collision_ok {
                SlotEffect::Correct
            } else {
                SlotEffect::Asymmetric {
                    detected_by,
                    collision_ok,
                }
            };
            per_slot.push(effect);
        }
        effects.push(per_slot);
    }

    // Replay with fresh DiagJobs at the measured per-round offsets.
    let pipeline = move |ctx: &TxCtx| -> SlotEffect {
        effects
            .get(ctx.round.as_u64() as usize)
            .map(|slots| slots[ctx.sender.slot()].clone())
            .unwrap_or(SlotEffect::Correct)
    };
    let mut cluster = ClusterBuilder::new(n)
        .round_length_ns(n as u64 * 1_000)
        .build(Box::new(pipeline))
        .expect("replay cluster configuration is valid");
    for (i, node_offsets) in offsets.iter_mut().enumerate() {
        let id = NodeId::from_slot(i);
        let per_round = std::mem::take(node_offsets);
        cluster
            .add_dynamic_job(
                id,
                move |k| per_round.get(&k.as_u64()).copied().unwrap_or(0),
                Box::new(DiagJob::with_logging(id, protocol.clone(), true)),
            )
            .expect("node ids are in range");
    }
    for _ in 0..rounds {
        cluster.run_round();
    }

    // Compare every survivor against its replay twin.
    let mut compared = Vec::new();
    let mut mismatches = Vec::new();
    for t in nodes {
        let idx = t.node as usize - 1;
        if Some(idx) == crash_idx {
            continue;
        }
        let Some(seg) = t.segments.last() else {
            continue;
        };
        compared.push(t.node);
        let twin = cluster
            .job_as::<DiagJob>(NodeId::from_slot(idx))
            .expect("replay twin exists");

        let real_iso: Vec<(u32, u64, u64)> = seg
            .isolations
            .iter()
            .map(|e| (e.node.get(), e.decided_at.as_u64(), e.diagnosed.as_u64()))
            .collect();
        let twin_iso: Vec<(u32, u64, u64)> = twin
            .isolations()
            .iter()
            .map(|e| (e.node.get(), e.decided_at.as_u64(), e.diagnosed.as_u64()))
            .collect();
        if real_iso != twin_iso {
            mismatches.push(format!(
                "node {}: isolations diverge (net {:?} vs sim {:?})",
                t.node, real_iso, twin_iso
            ));
        }
        if seg.final_active != twin.active() {
            mismatches.push(format!(
                "node {}: final ACTIVE view diverges (net {:?} vs sim {:?})",
                t.node,
                seg.final_active,
                twin.active()
            ));
        }
    }

    ReplayVerdict {
        agree: mismatches.is_empty(),
        replayed_rounds: rounds,
        compared_nodes: compared,
        mismatches,
    }
}
