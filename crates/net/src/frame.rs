//! Wire format of the emulated-TDMA UDP transport.
//!
//! One datagram carries one [`NetFrame`]: the sender's slot, the TDMA
//! round, a per-sender sequence number, and the dissemination payload —
//! exactly the bytes the simulator's `FaultPipeline` carries (an encoded
//! `tt_core::Syndrome`), so the certified job code never sees the
//! difference between the two substrates.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic  u16 = 0x5444 ("TD")
//! ver    u8  = 1
//! slot   u8     sender's 0-based sending slot
//! round  u64    TDMA round the frame belongs to
//! seq    u64    per-sender monotone datagram counter
//! len    u16    payload length in bytes
//! payload      `len` bytes
//! crc    u32    CRC-32 (IEEE) over everything before it
//! ```
//!
//! Local error detection *is* the CRC check, mirroring
//! [`tt_sim::frame`]: a frame that fails to decode for any reason maps to
//! an invalid reception (validity bit 0) at the receiving controller.

use bytes::Bytes;
use tt_sim::crc32;

/// First two bytes of every frame.
pub const MAGIC: u16 = 0x5444;
/// Wire format version.
pub const VERSION: u8 = 1;
/// Fixed bytes before the payload.
pub const HEADER_LEN: usize = 2 + 1 + 1 + 8 + 8 + 2;
/// Trailing checksum bytes.
pub const CRC_LEN: usize = 4;
/// Ceiling on payload size: a syndrome for `N <= 64` nodes is at most 8
/// bytes, so anything near the loopback MTU is already garbage.
pub const MAX_PAYLOAD: usize = 1200;

/// A decoded TDMA frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetFrame {
    /// The sender's 0-based sending slot (= `NodeId::slot()`).
    pub slot: u8,
    /// The TDMA round this frame was transmitted in.
    pub round: u64,
    /// Per-sender monotone sequence number.
    pub seq: u64,
    /// Dissemination payload (encoded local syndrome).
    pub payload: Bytes,
}

/// Why a received datagram failed frame decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Shorter than header + CRC.
    Truncated,
    /// First two bytes are not [`MAGIC`].
    BadMagic,
    /// Unknown wire format version.
    BadVersion,
    /// Declared payload length exceeds [`MAX_PAYLOAD`].
    Oversize,
    /// Datagram length disagrees with the declared payload length.
    LengthMismatch,
    /// CRC-32 mismatch: corruption detected.
    CrcMismatch,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "frame truncated"),
            FrameError::BadMagic => write!(f, "bad magic"),
            FrameError::BadVersion => write!(f, "unknown frame version"),
            FrameError::Oversize => write!(f, "payload too large"),
            FrameError::LengthMismatch => write!(f, "length mismatch"),
            FrameError::CrcMismatch => write!(f, "crc mismatch"),
        }
    }
}

impl std::error::Error for FrameError {}

impl NetFrame {
    /// Encodes the frame for the wire.
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds [`MAX_PAYLOAD`] — callers only ever
    /// encode syndromes, which are orders of magnitude smaller.
    pub fn encode(&self) -> Vec<u8> {
        assert!(self.payload.len() <= MAX_PAYLOAD, "oversize payload");
        let mut out = Vec::with_capacity(HEADER_LEN + self.payload.len() + CRC_LEN);
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.push(VERSION);
        out.push(self.slot);
        out.extend_from_slice(&self.round.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u16).to_le_bytes());
        out.extend_from_slice(&self.payload);
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decodes and verifies one datagram.
    ///
    /// # Errors
    ///
    /// Any structural or checksum failure rejects the frame; the caller
    /// maps every rejection to an invalid reception.
    pub fn decode(wire: &[u8]) -> Result<NetFrame, FrameError> {
        if wire.len() < HEADER_LEN + CRC_LEN {
            return Err(FrameError::Truncated);
        }
        let (body, crc_bytes) = wire.split_at(wire.len() - CRC_LEN);
        let wire_crc = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
        if crc32(body) != wire_crc {
            return Err(FrameError::CrcMismatch);
        }
        if u16::from_le_bytes(body[0..2].try_into().expect("2 bytes")) != MAGIC {
            return Err(FrameError::BadMagic);
        }
        if body[2] != VERSION {
            return Err(FrameError::BadVersion);
        }
        let len = u16::from_le_bytes(body[20..22].try_into().expect("2 bytes")) as usize;
        if len > MAX_PAYLOAD {
            return Err(FrameError::Oversize);
        }
        if body.len() != HEADER_LEN + len {
            return Err(FrameError::LengthMismatch);
        }
        Ok(NetFrame {
            slot: body[3],
            round: u64::from_le_bytes(body[4..12].try_into().expect("8 bytes")),
            seq: u64::from_le_bytes(body[12..20].try_into().expect("8 bytes")),
            payload: Bytes::copy_from_slice(&body[HEADER_LEN..]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> NetFrame {
        NetFrame {
            slot: 3,
            round: 0x1122_3344_5566,
            seq: 42,
            payload: Bytes::from_static(&[0xAB, 0x01, 0x00, 0xFF]),
        }
    }

    #[test]
    fn roundtrip() {
        let f = sample();
        let wire = f.encode();
        assert_eq!(NetFrame::decode(&wire).unwrap(), f);
    }

    #[test]
    fn empty_payload_roundtrips() {
        let f = NetFrame {
            slot: 0,
            round: 0,
            seq: 0,
            payload: Bytes::new(),
        };
        assert_eq!(NetFrame::decode(&f.encode()).unwrap(), f);
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let wire = sample().encode();
        for byte in 0..wire.len() {
            for bit in 0..8 {
                let mut w = wire.clone();
                w[byte] ^= 1 << bit;
                assert!(
                    NetFrame::decode(&w).is_err(),
                    "flip at byte {byte} bit {bit} accepted"
                );
            }
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        let wire = sample().encode();
        for len in 0..wire.len() {
            assert!(NetFrame::decode(&wire[..len]).is_err(), "prefix {len}");
        }
    }

    #[test]
    fn trailing_junk_is_rejected() {
        let mut wire = sample().encode();
        wire.push(0);
        assert!(NetFrame::decode(&wire).is_err());
    }
}
