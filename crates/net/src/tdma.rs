//! The emulated TDMA timing model: monotonic wall-clock slot boundaries.
//!
//! A [`SlotClock`] anchors a round schedule (slot duration × one slot per
//! node) at an **epoch** `Instant` shared by every node of a run. All
//! timing decisions — when to transmit, when a peer's slot has elapsed,
//! when a frame is *late* — derive from `Instant::now()` against this
//! anchor; there is no global coordinator once the epoch is agreed.
//!
//! The classification deadline of slot `s` in round `r` is
//! `slot_end + grace`, capped at `delta = slot/8` **before** the next
//! round starts: the diagnosis job of round `r + 1` must observe a settled
//! round `r`, so the final slot of each round closes one `delta` early. A
//! frame that misses its deadline is a benign-fault observation, exactly
//! like a silent slot.

use std::time::{Duration, Instant};

/// Shared TDMA timing: epoch anchor, slot duration, slots per round.
#[derive(Debug, Clone, Copy)]
pub struct SlotClock {
    epoch: Instant,
    slot: Duration,
    n_slots: u32,
}

impl SlotClock {
    /// A clock with `n_slots` slots of `slot` each, anchored at `epoch`.
    ///
    /// # Panics
    ///
    /// Panics on a zero slot duration or zero slot count.
    pub fn new(epoch: Instant, slot: Duration, n_slots: u32) -> Self {
        assert!(!slot.is_zero(), "slot duration must be positive");
        assert!(n_slots > 0, "need at least one slot per round");
        SlotClock {
            epoch,
            slot,
            n_slots,
        }
    }

    /// The epoch anchor (start of round 0, slot 0).
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// One slot.
    pub fn slot_len(&self) -> Duration {
        self.slot
    }

    /// One full round (`n_slots * slot`).
    pub fn round_len(&self) -> Duration {
        self.slot * self.n_slots
    }

    /// Slots per round.
    pub fn n_slots(&self) -> u32 {
        self.n_slots
    }

    /// When round `round` begins.
    pub fn round_start(&self, round: u64) -> Instant {
        self.epoch + mul(self.round_len(), round)
    }

    /// When slot `slot` of round `round` begins (transmission time).
    pub fn slot_start(&self, round: u64, slot: u32) -> Instant {
        debug_assert!(slot < self.n_slots);
        self.round_start(round) + self.slot * slot
    }

    /// The round in progress at `t` (0 before the epoch).
    pub fn round_at(&self, t: Instant) -> u64 {
        match t.checked_duration_since(self.epoch) {
            None => 0,
            Some(d) => (d.as_nanos() / self.round_len().as_nanos()) as u64,
        }
    }

    /// The margin by which each round's final slot closes early.
    pub fn delta(&self) -> Duration {
        self.slot / 8
    }

    /// The classification deadline for `(round, slot)`: `slot end + grace`,
    /// capped [`delta`](Self::delta) before the next round starts.
    pub fn classify_deadline(&self, round: u64, slot: u32, grace: Duration) -> Instant {
        let natural = self.slot_start(round, slot) + self.slot + grace;
        let cap = self.round_start(round + 1) - self.delta();
        natural.min(cap)
    }
}

/// `d * k` for a `u64` factor (std only scales by `u32`).
fn mul(d: Duration, k: u64) -> Duration {
    Duration::from_nanos((d.as_nanos() as u64).saturating_mul(k))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clock() -> SlotClock {
        SlotClock::new(Instant::now(), Duration::from_millis(2), 5)
    }

    #[test]
    fn round_and_slot_boundaries() {
        let c = clock();
        assert_eq!(c.round_len(), Duration::from_millis(10));
        assert_eq!(
            c.slot_start(3, 2) - c.epoch(),
            Duration::from_millis(3 * 10 + 2 * 2)
        );
        assert_eq!(c.round_start(0), c.epoch());
    }

    #[test]
    fn round_at_inverts_round_start() {
        let c = clock();
        for r in [0u64, 1, 7, 1000] {
            assert_eq!(c.round_at(c.round_start(r) + Duration::from_micros(1)), r);
        }
        // Before the epoch clamps to round 0.
        assert_eq!(c.round_at(c.epoch() - Duration::from_secs(1)), 0);
    }

    #[test]
    fn deadline_is_capped_before_the_next_round() {
        let c = clock();
        let grace = Duration::from_micros(500);
        // An early slot keeps its natural grace.
        assert_eq!(
            c.classify_deadline(2, 0, grace),
            c.slot_start(2, 0) + c.slot_len() + grace
        );
        // The final slot closes delta before the boundary.
        assert_eq!(
            c.classify_deadline(2, 4, grace),
            c.round_start(3) - c.delta()
        );
    }

    #[test]
    fn deadlines_are_strictly_ordered_within_a_round() {
        let c = clock();
        let grace = Duration::from_millis(1);
        let mut prev = None;
        for s in 0..5 {
            let d = c.classify_deadline(9, s, grace);
            if let Some(p) = prev {
                assert!(d > p, "slot {s} deadline not after slot {}", s - 1);
            }
            prev = Some(d);
        }
    }
}
