//! Loopback cluster runner: N node threads, one shared epoch, optional
//! mid-run crash/restart, and the aggregated run report.
//!
//! The runner binds one UDP socket per node on ephemeral loopback ports,
//! anchors a shared [`SlotClock`] epoch slightly in the future, and spawns
//! one thread per node running [`run_node`]. A [`CrashSpec`] kills one
//! node cooperatively (its private [`CancellationToken`]) at a given round
//! and restarts a *fresh* incarnation — new controller, new `DiagJob`, no
//! memory — on the same address after a configurable blackout, exercising
//! the Alg. 2 reintegration path end to end over real sockets.
//!
//! After the threads join, the runner cross-checks the distributed verdict
//! by replaying the *observed* fault pattern through the discrete-event
//! simulator ([`crate::replay`]) and summarizes convergence.

use std::net::UdpSocket;
use std::thread;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use tt_core::ProtocolConfig;
use tt_sim::{CancellationToken, NodeId};

use crate::chaos::NetChaos;
use crate::node::{run_node, NodeParams, NodeSegment};
use crate::replay::{replay_cross_check, ReplayVerdict};
use crate::tdma::SlotClock;
use crate::transport::{LossyUdp, SlotTransport, UdpTransport};

/// Everything that can go wrong before the first frame is sent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// Invalid run configuration.
    Config(String),
    /// Socket setup failed.
    Io(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Config(m) => write!(f, "invalid net configuration: {m}"),
            NetError::Io(m) => write!(f, "socket error: {m}"),
        }
    }
}

impl std::error::Error for NetError {}

/// Kill one node mid-run and restart it after a blackout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashSpec {
    /// The node to kill (1-based id).
    pub node: u32,
    /// The round at which its cancellation token fires.
    pub at_round: u64,
    /// Rounds of blackout before the fresh incarnation starts.
    pub down_rounds: u64,
}

/// Configuration of a loopback cluster run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Shared protocol configuration (fixes `N`).
    pub protocol: ProtocolConfig,
    /// Rounds to run.
    pub rounds: u64,
    /// TDMA slot duration.
    pub slot: Duration,
    /// Reception grace after a slot's nominal end.
    pub grace: Duration,
    /// Configured job phase, in slots (the *measured* offset lands in the
    /// report).
    pub exec_offset_slots: u32,
    /// Seeded chaos plan, if any.
    pub chaos: Option<NetChaos>,
    /// Optional mid-run crash/restart.
    pub crash: Option<CrashSpec>,
    /// How far in the future to anchor the epoch (start-up slack for
    /// thread spawning).
    pub start_delay: Duration,
}

impl RunConfig {
    /// A run with sensible defaults for loopback experiments.
    pub fn new(protocol: ProtocolConfig, rounds: u64, slot: Duration) -> Self {
        RunConfig {
            protocol,
            rounds,
            slot,
            grace: slot / 2,
            exec_offset_slots: 0,
            chaos: None,
            crash: None,
            start_delay: Duration::from_millis(50),
        }
    }
}

/// One node's full trajectory: one segment per incarnation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeTrajectory {
    /// Node id (1-based).
    pub node: u32,
    /// Incarnations in start order (two for a crashed-and-restarted node).
    pub segments: Vec<NodeSegment>,
}

/// Convergence summary over the surviving nodes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConvergenceSummary {
    /// Isolation decisions naming a node other than the crashed one.
    pub wrongful_isolations: u64,
    /// Every survivor's final ACTIVE view marks every survivor active.
    pub survivors_active: bool,
    /// Every survivor's final health record marks every survivor healthy.
    pub survivors_healthy: bool,
    /// With a crash: every survivor isolated the crashed node.
    pub crash_isolated: bool,
    /// With a crash: every survivor re-admitted it by the final round.
    pub crash_reintegrated: bool,
    /// The headline verdict: all of the above that apply.
    pub converged: bool,
}

/// The aggregated report of one loopback run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Cluster size.
    pub n_nodes: usize,
    /// Rounds run.
    pub rounds: u64,
    /// Slot duration in nanoseconds.
    pub slot_ns: u64,
    /// Reception grace in nanoseconds.
    pub grace_ns: u64,
    /// The chaos plan, if one was injected.
    pub chaos: Option<NetChaos>,
    /// Digest of the full planned chaos decision table — byte-identical
    /// across runs of the same seed and topology.
    pub chaos_digest: Option<u64>,
    /// The crash/restart schedule, if any.
    pub crash: Option<CrashSpec>,
    /// Per-node trajectories.
    pub nodes: Vec<NodeTrajectory>,
    /// The simulator replay of the observed fault pattern.
    pub replay: ReplayVerdict,
    /// Convergence of the distributed verdict.
    pub convergence: ConvergenceSummary,
}

/// Runs `N` loopback node threads for `rounds` rounds and aggregates the
/// report.
///
/// # Errors
///
/// [`NetError::Config`] on an invalid configuration, [`NetError::Io`] when
/// socket setup fails.
pub fn run_cluster(cfg: RunConfig) -> Result<RunReport, NetError> {
    let n = cfg.protocol.n_nodes();
    if !(2..=64).contains(&n) {
        return Err(NetError::Config(format!("need 2..=64 nodes, got {n}")));
    }
    if cfg.rounds == 0 {
        return Err(NetError::Config("need at least one round".into()));
    }
    if cfg.slot < Duration::from_micros(200) {
        return Err(NetError::Config("slot must be at least 200us".into()));
    }
    if let Some(c) = cfg.crash {
        if c.node == 0 || c.node as usize > n {
            return Err(NetError::Config(format!(
                "crash node {} out of range",
                c.node
            )));
        }
        if c.at_round == 0 || c.at_round >= cfg.rounds {
            return Err(NetError::Config("crash round outside the run".into()));
        }
    }
    if let Some(chaos) = &cfg.chaos {
        let worst = std::iter::once(chaos.default_rates)
            .chain(chaos.links.iter().map(|l| l.rates))
            .map(|r| r.total())
            .max()
            .unwrap_or(0);
        if worst > 1000 {
            return Err(NetError::Config("chaos rates exceed 1000 per mille".into()));
        }
    }

    // Bind one ephemeral loopback socket per node.
    let mut sockets = Vec::with_capacity(n);
    let mut peers = Vec::with_capacity(n);
    for _ in 0..n {
        let s = UdpSocket::bind("127.0.0.1:0").map_err(|e| NetError::Io(e.to_string()))?;
        peers.push(s.local_addr().map_err(|e| NetError::Io(e.to_string()))?);
        sockets.push(s);
    }

    let epoch = Instant::now() + cfg.start_delay;
    let clock = SlotClock::new(epoch, cfg.slot, n as u32);
    let tokens: Vec<CancellationToken> = (0..n).map(|_| CancellationToken::new()).collect();

    let spawn_node = |socket: UdpSocket, id: usize, token: CancellationToken, start_round: u64| {
        let params = NodeParams {
            node: NodeId::new(id as u32 + 1),
            protocol: cfg.protocol.clone(),
            grace: cfg.grace,
            exec_offset_slots: cfg.exec_offset_slots,
            end_round: cfg.rounds,
        };
        let peers = peers.clone();
        let chaos = cfg.chaos.clone();
        thread::spawn(move || {
            let udp = UdpTransport::new(socket, peers, id as u8);
            let mut transport: Box<dyn SlotTransport> = match chaos {
                Some(c) => Box::new(LossyUdp::new(udp, c)),
                None => Box::new(udp),
            };
            run_node(&params, clock, transport.as_mut(), &token, start_round)
        })
    };

    let mut handles: Vec<Option<thread::JoinHandle<NodeSegment>>> = Vec::with_capacity(n);
    for (i, socket) in sockets.into_iter().enumerate() {
        handles.push(Some(spawn_node(socket, i, tokens[i].clone(), 0)));
    }

    let mut segments: Vec<Vec<NodeSegment>> = vec![Vec::new(); n];

    // Crash orchestration: cancel at the crash round, rebind after the
    // blackout, restart a fresh incarnation on the same address.
    if let Some(crash) = cfg.crash {
        let idx = crash.node as usize - 1;
        sleep_until(clock.round_start(crash.at_round));
        tokens[idx].cancel();
        let first = handles[idx]
            .take()
            .expect("crash handle present")
            .join()
            .expect("crashed node thread");
        segments[idx].push(first);
        sleep_until(clock.round_start(crash.at_round + crash.down_rounds));
        // The port frees when the dead incarnation's socket drops; retry
        // briefly in case the join raced the drop.
        let addr = peers[idx];
        let mut socket = None;
        for _ in 0..50 {
            match UdpSocket::bind(addr) {
                Ok(s) => {
                    socket = Some(s);
                    break;
                }
                Err(_) => thread::sleep(Duration::from_millis(5)),
            }
        }
        let socket =
            socket.ok_or_else(|| NetError::Io(format!("cannot rebind {addr} after restart")))?;
        let start_round = clock.round_at(Instant::now()) + 1;
        let token = CancellationToken::new();
        handles[idx] = Some(spawn_node(socket, idx, token, start_round));
    }

    for (i, handle) in handles.into_iter().enumerate() {
        if let Some(h) = handle {
            segments[i].push(h.join().expect("node thread"));
        }
    }

    let nodes: Vec<NodeTrajectory> = segments
        .into_iter()
        .enumerate()
        .map(|(i, segments)| NodeTrajectory {
            node: i as u32 + 1,
            segments,
        })
        .collect();

    let replay = replay_cross_check(&cfg.protocol, cfg.rounds, &nodes, cfg.crash.as_ref());
    let convergence = summarize_convergence(&nodes, cfg.crash.as_ref());
    let chaos_digest = cfg.chaos.as_ref().map(|c| c.digest(n as u8, cfg.rounds));

    Ok(RunReport {
        n_nodes: n,
        rounds: cfg.rounds,
        slot_ns: cfg.slot.as_nanos() as u64,
        grace_ns: cfg.grace.as_nanos() as u64,
        chaos: cfg.chaos,
        chaos_digest,
        crash: cfg.crash,
        nodes,
        replay,
        convergence,
    })
}

/// Coarse absolute-deadline sleep (the runner needs round, not slot,
/// precision).
fn sleep_until(t: Instant) {
    loop {
        let now = Instant::now();
        let Some(left) = t.checked_duration_since(now) else {
            return;
        };
        if left.is_zero() {
            return;
        }
        thread::sleep(left.min(Duration::from_millis(20)));
    }
}

/// The survivors' final verdicts, condensed.
fn summarize_convergence(
    nodes: &[NodeTrajectory],
    crash: Option<&CrashSpec>,
) -> ConvergenceSummary {
    let crash_idx = crash.map(|c| c.node as usize - 1);
    let survivors: Vec<&NodeSegment> = nodes
        .iter()
        .enumerate()
        .filter(|(i, _)| Some(*i) != crash_idx)
        .filter_map(|(_, t)| t.segments.last())
        .collect();

    let mut wrongful = 0u64;
    for t in nodes {
        for seg in &t.segments {
            for iso in &seg.isolations {
                if Some(iso.node.index()) != crash_idx {
                    wrongful += 1;
                }
            }
        }
    }

    let survivor_ok = |check: &dyn Fn(&NodeSegment, usize) -> bool| {
        survivors.iter().all(|seg| {
            (0..seg.final_active.len())
                .filter(|i| Some(*i) != crash_idx)
                .all(|i| check(seg, i))
        })
    };
    let survivors_active = survivor_ok(&|seg, i| seg.final_active[i]);
    let survivors_healthy = survivors.iter().all(|seg| match seg.health_log.last() {
        Some(rec) => (0..rec.health.len())
            .filter(|i| Some(*i) != crash_idx)
            .all(|i| rec.health[i]),
        None => false,
    });
    let crash_isolated = match crash_idx {
        None => true,
        Some(idx) => survivors
            .iter()
            .all(|seg| seg.isolations.iter().any(|iso| iso.node.index() == idx)),
    };
    let crash_reintegrated = match crash_idx {
        None => true,
        Some(idx) => survivors.iter().all(|seg| seg.final_active[idx]),
    };

    ConvergenceSummary {
        wrongful_isolations: wrongful,
        survivors_active,
        survivors_healthy,
        crash_isolated,
        crash_reintegrated,
        converged: wrongful == 0
            && survivors_active
            && survivors_healthy
            && crash_isolated
            && crash_reintegrated,
    }
}
