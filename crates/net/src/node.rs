//! One TDMA node: the certified `DiagJob` running over a real socket.
//!
//! [`run_node`] is a deadline-driven event loop over three event streams,
//! processed strictly in scheduled-time order:
//!
//! * **classify** — at `slot end + grace` (capped `delta` before the next
//!   round), slot `s` of round `r` is settled: a timely, CRC-valid frame
//!   becomes a `Reception::Valid` at the local controller, everything else
//!   (missing, late, stale, corrupt) a `Reception::Detected` — the benign
//!   `/` invalid observations of the paper. The node's own slot settles
//!   through the collision detector instead: the loopback self-reception
//!   must come back carrying exactly the transmitted bytes.
//! * **job** — once the previous round is fully classified, the diagnosis
//!   job executes. Its `NodeSchedule` is *measured*, not configured: the
//!   exec offset handed to `JobCtx` is the number of current-round slots
//!   that had already settled when the job actually ran, so `l_i` and
//!   `send_curr_round_i` reflect real clock position (a starved node that
//!   wakes after its own slot genuinely loses `send_curr_round`).
//! * **send** — at the start of the node's own slot, whatever the transmit
//!   buffer holds goes out; if the job has not run yet this round (its
//!   measured offset exceeded the sending slot), that is last round's
//!   dissemination — exactly the simulator's buffer semantics.
//!
//! The loop receives between events, stamping every datagram's arrival
//! against the frame's nominal slot start (the measured inter-peer latency
//! statistics in the report). Cancellation is cooperative through the
//! simulator's [`CancellationToken`], checked once per event wake-up; a
//! killed node simply stops mid-schedule and its silence becomes benign
//! faults at every peer until a fresh incarnation rejoins.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::time::Instant;

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use tt_core::{DiagJob, HealthRecord, IsolationEvent, ProtocolConfig};
use tt_sim::{
    CancellationToken, Controller, Job, JobCtx, NodeId, NodeSchedule, Reception, RoundIndex,
};

use crate::frame::NetFrame;
use crate::tdma::SlotClock;
use crate::transport::{ChaosStats, SlotTransport};

/// Static configuration of one node.
#[derive(Debug, Clone)]
pub struct NodeParams {
    /// This node's identity (1-based; slot = id - 1).
    pub node: NodeId,
    /// The protocol configuration shared by the whole cluster.
    pub protocol: ProtocolConfig,
    /// Extra reception grace after a slot's nominal end.
    pub grace: std::time::Duration,
    /// The slot offset at which the diagnosis job is scheduled each round
    /// (0 = just before the round's first slot, as in the paper's
    /// conservative layout).
    pub exec_offset_slots: u32,
    /// First round that is *not* processed.
    pub end_round: u64,
}

/// Min/mean/max accumulator over signed microsecond samples.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct JitterStats {
    /// Number of samples.
    pub count: u64,
    /// Smallest sample (0 when empty).
    pub min_us: i64,
    /// Largest sample (0 when empty).
    pub max_us: i64,
    /// Mean sample (0 when empty).
    pub mean_us: f64,
}

impl JitterStats {
    /// Folds one sample in.
    pub fn add(&mut self, us: i64) {
        if self.count == 0 {
            self.min_us = us;
            self.max_us = us;
        } else {
            self.min_us = self.min_us.min(us);
            self.max_us = self.max_us.max(us);
        }
        let n = self.count as f64;
        self.mean_us = (self.mean_us * n + us as f64) / (n + 1.0);
        self.count += 1;
    }
}

/// Slot-timing error statistics of one node incarnation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SlotTiming {
    /// CRC-valid frames received.
    pub frames: u64,
    /// Frames that arrived after their classification deadline.
    pub late: u64,
    /// Frames for slots that were already classified (or malformed slots).
    pub stale: u64,
    /// Datagrams that failed frame decoding.
    pub corrupt: u64,
    /// Frames for a slot that already had one (chaos duplicates).
    pub duplicate: u64,
    /// Slots classified with no frame at all.
    pub missing: u64,
    /// Frame arrival minus nominal slot start — the measured one-way
    /// latency plus scheduling skew, per fresh frame.
    pub arrival_error: JitterStats,
    /// Job execution minus its scheduled instant.
    pub exec_lag: JitterStats,
}

/// What one node observed in one round: validity per sending slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObservedRound {
    /// The round.
    pub round: u64,
    /// Bit `s` set iff slot `s` produced a valid, timely reception (the
    /// own slot's bit mirrors `collision_ok`).
    pub valid_mask: u64,
    /// The local collision detector's verdict on the own transmission.
    pub collision_ok: bool,
    /// The measured exec offset the diagnosis job ran at.
    pub exec_offset: u8,
}

/// The full report of one node incarnation (a restart produces a second
/// segment for the same node id).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSegment {
    /// Node id (1-based).
    pub node: u32,
    /// First round this incarnation processed.
    pub start_round: u64,
    /// First round it did *not* process.
    pub end_round: u64,
    /// Per-round observations, in round order.
    pub observed: Vec<ObservedRound>,
    /// Measured timing statistics.
    pub timing: SlotTiming,
    /// What the outbound chaos injector did (all-zero without one).
    pub chaos: ChaosStats,
    /// The diagnosis trajectory: every consistent health vector.
    pub health_log: Vec<HealthRecord>,
    /// Isolation decisions taken by Alg. 2.
    pub isolations: Vec<IsolationEvent>,
    /// Final ACTIVE view (index = node index).
    pub final_active: Vec<bool>,
    /// Final penalty counters.
    pub penalties: Vec<u64>,
    /// Final reward counters.
    pub rewards: Vec<u64>,
    /// Protocol activations executed.
    pub activations: u64,
}

/// `a - b` in microseconds, signed.
fn signed_us(a: Instant, b: Instant) -> i64 {
    match a.checked_duration_since(b) {
        Some(d) => d.as_micros() as i64,
        None => -(b.duration_since(a).as_micros() as i64),
    }
}

/// Runs one node incarnation from `start_round` until `params.end_round`
/// or cancellation, and returns everything it measured and diagnosed.
///
/// A restarted node passes the round its clock says comes next; the fresh
/// `DiagJob` then re-enters the cluster through the Alg. 2 reintegration
/// path of every survivor.
pub fn run_node(
    params: &NodeParams,
    clock: SlotClock,
    transport: &mut dyn SlotTransport,
    cancel: &CancellationToken,
    start_round: u64,
) -> NodeSegment {
    let n = params.protocol.n_nodes();
    debug_assert_eq!(clock.n_slots() as usize, n, "one slot per node");
    let own = params.node.slot();
    let end = params.end_round;
    let delta = clock.delta();

    let mut controller = Controller::new(params.node, n);
    let mut job = DiagJob::with_logging(params.node, params.protocol.clone(), true);

    let mut stash: HashMap<(u64, u8), (Bytes, Instant)> = HashMap::new();
    let mut timing = SlotTiming::default();
    let mut observed: Vec<ObservedRound> = Vec::new();
    let mut offsets: HashMap<u64, u8> = HashMap::new();

    // Event cursors: next slot to classify, next round to transmit in,
    // next round whose job runs.
    let mut cls_round = start_round;
    let mut cls_slot: u32 = 0;
    let mut send_round = start_round;
    let mut job_round = start_round;
    let mut seq: u64 = 0;
    // What the last send event actually put on the wire (the collision
    // detector compares the loopback against this, not against a transmit
    // buffer a later job may have overwritten).
    let mut last_sent: Option<(u64, Bytes)> = None;
    // Accumulators for the round being classified.
    let mut mask: u64 = 0;
    let mut coll = false;

    while !cancel.is_cancelled() {
        // Next due time of each live event stream.
        let t_cls =
            (cls_round < end).then(|| clock.classify_deadline(cls_round, cls_slot, params.grace));
        let t_job = (job_round < end).then(|| {
            clock.slot_start(job_round, params.exec_offset_slots.min(n as u32 - 1)) - delta
        });
        let t_send = (send_round < end).then(|| clock.slot_start(send_round, own as u32));
        // Earliest event; ties break classify > job > send so a job never
        // outruns the classification that completes its input round, and a
        // send never outruns the job scheduled ahead of it.
        let Some(next) = [t_cls, t_job, t_send].iter().flatten().min().copied() else {
            break;
        };

        let now = Instant::now();
        if now < next {
            // Receive until the next event is due.
            if let Some((wire, arrival)) = transport.recv_until(next) {
                match NetFrame::decode(&wire) {
                    Err(_) => timing.corrupt += 1,
                    Ok(f) if (f.slot as usize) < n => {
                        timing.frames += 1;
                        if f.round < cls_round
                            || (f.round == cls_round && u32::from(f.slot) < cls_slot)
                        {
                            timing.stale += 1;
                        } else {
                            match stash.entry((f.round, f.slot)) {
                                Entry::Occupied(_) => timing.duplicate += 1,
                                Entry::Vacant(slot) => {
                                    timing.arrival_error.add(signed_us(
                                        arrival,
                                        clock.slot_start(f.round, f.slot.into()),
                                    ));
                                    slot.insert((f.payload, arrival));
                                }
                            }
                        }
                    }
                    Ok(_) => timing.stale += 1,
                }
            }
            continue;
        }

        if t_cls == Some(next) {
            // Settle (cls_round, cls_slot).
            let deadline = next;
            let timely = match stash.remove(&(cls_round, cls_slot as u8)) {
                Some((payload, arrival)) if arrival <= deadline => Some(payload),
                Some(_) => {
                    timing.late += 1;
                    None
                }
                None => {
                    timing.missing += 1;
                    None
                }
            };
            let round = RoundIndex::new(cls_round);
            if cls_slot as usize == own {
                let ok = matches!(
                    (&timely, &last_sent),
                    (Some(got), Some((r, sent))) if *r == cls_round && got == sent
                );
                controller.record_collision(round, ok);
                coll = ok;
                if ok {
                    mask |= 1 << own;
                }
            } else {
                let sender = NodeId::from_slot(cls_slot as usize);
                match timely {
                    Some(p) => {
                        controller.deliver(sender, round, Reception::Valid(p));
                        mask |= 1 << cls_slot;
                    }
                    None => controller.deliver(sender, round, Reception::Detected),
                }
            }
            cls_slot += 1;
            if cls_slot as usize == n {
                observed.push(ObservedRound {
                    round: cls_round,
                    valid_mask: mask,
                    collision_ok: coll,
                    exec_offset: offsets.get(&cls_round).copied().unwrap_or(0),
                });
                mask = 0;
                coll = false;
                cls_slot = 0;
                cls_round += 1;
            }
        } else if t_job == Some(next) {
            // The measured exec offset: current-round slots already
            // settled when the job actually runs.
            debug_assert!(cls_round >= job_round, "job outran classification");
            let measured = if cls_round == job_round {
                cls_slot
            } else {
                n as u32 - 1
            };
            timing.exec_lag.add(signed_us(Instant::now(), next));
            offsets.insert(job_round, measured as u8);
            let sched = NodeSchedule::new(params.node, measured as usize, n)
                .expect("measured offset is < n");
            let mut ctx = JobCtx::new(&mut controller, sched, RoundIndex::new(job_round));
            job.execute(&mut ctx);
            job_round += 1;
        } else {
            // Transmit in the own slot of send_round.
            let payload = controller.tx_payload();
            let frame = NetFrame {
                slot: own as u8,
                round: send_round,
                seq,
                payload: payload.clone(),
            };
            transport.broadcast(&frame.encode(), send_round);
            last_sent = Some((send_round, payload));
            seq += 1;
            send_round += 1;
        }
    }

    NodeSegment {
        node: params.node.get(),
        start_round,
        end_round: cls_round,
        observed,
        timing,
        chaos: transport.chaos_stats(),
        health_log: job.health_log().to_vec(),
        isolations: job.isolations().to_vec(),
        final_active: job.active().to_vec(),
        penalties: (0..n).map(|i| job.penalty(NodeId::from_slot(i))).collect(),
        rewards: (0..n).map(|i| job.reward(NodeId::from_slot(i))).collect(),
        activations: job.activations(),
    }
}
