//! UDP slot transport: a plain socket wrapper and its lossy twin.
//!
//! [`UdpTransport`] broadcasts one encoded frame per round to every peer —
//! including the sender's own socket: the loopback self-reception is the
//! transport's analogue of the simulator's local collision detector (a
//! node whose own frame does not come back readable observes a collision).
//!
//! [`LossyUdp`] wraps it with deterministic seeded chaos
//! ([`NetChaos`]): per directed link it drops, duplicates, holds back
//! (reorder) or corrupts frames *before* they reach the socket, on top of
//! whatever loss the genuine UDP path adds.

use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use crate::chaos::{ChaosAction, NetChaos};

/// Largest datagram the receiver accepts (comfortably above
/// [`crate::frame::MAX_PAYLOAD`] + framing).
const RECV_BUF: usize = 2048;

/// Counters of what a [`LossyUdp`] injector actually did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosStats {
    /// Frames sent unmodified.
    pub delivered: u64,
    /// Frames discarded.
    pub dropped: u64,
    /// Frames sent twice.
    pub duplicated: u64,
    /// Frames held one round.
    pub reordered: u64,
    /// Frames sent with a flipped byte.
    pub corrupted: u64,
}

/// A node's view of the bus: broadcast in the own slot, receive otherwise.
pub trait SlotTransport: Send {
    /// Sends one encoded frame to every peer (self included) for `round`.
    fn broadcast(&mut self, wire: &[u8], round: u64);

    /// Blocks for the next datagram until `deadline`; `None` on timeout.
    /// Returns the raw bytes with their arrival timestamp.
    fn recv_until(&mut self, deadline: Instant) -> Option<(Vec<u8>, Instant)>;

    /// What the chaos injector did so far (all-zero without one).
    fn chaos_stats(&self) -> ChaosStats {
        ChaosStats::default()
    }
}

/// The plain UDP transport: one socket, a full peer list, no injection.
///
/// Reception runs on a dedicated blocking reader thread feeding an
/// in-process channel: `recv_until` then waits with
/// [`mpsc::Receiver::recv_timeout`], whose futex-based deadline has
/// microsecond precision, whereas a socket read timeout (`SO_RCVTIMEO`)
/// only has scheduler-tick granularity — milliseconds of overshoot, fatal
/// for millisecond TDMA slots.
pub struct UdpTransport {
    socket: UdpSocket,
    peers: Vec<SocketAddr>,
    slot: u8,
    inbox: mpsc::Receiver<(Vec<u8>, Instant)>,
    stop: Arc<AtomicBool>,
    reader: Option<JoinHandle<()>>,
}

impl UdpTransport {
    /// Wraps an already-bound socket. `slot` is the owner's sending slot;
    /// `peers[i]` is the address of the node owning slot `i` (the owner's
    /// own address appears at `peers[slot]`).
    ///
    /// # Panics
    ///
    /// Panics if the socket cannot be cloned for the reader thread.
    pub fn new(socket: UdpSocket, peers: Vec<SocketAddr>, slot: u8) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, inbox) = mpsc::channel();
        let reader_socket = socket.try_clone().expect("clone UDP socket for reader");
        let reader_stop = Arc::clone(&stop);
        let reader = std::thread::spawn(move || {
            // The coarse read timeout here only bounds shutdown latency;
            // arrival timestamps are taken immediately after each recv.
            let _ = reader_socket.set_read_timeout(Some(Duration::from_millis(25)));
            let mut buf = [0u8; RECV_BUF];
            while !reader_stop.load(Ordering::Relaxed) {
                match reader_socket.recv_from(&mut buf) {
                    Ok((n, _)) => {
                        if tx.send((buf[..n].to_vec(), Instant::now())).is_err() {
                            break;
                        }
                    }
                    // Timeout, interrupt, or ICMP-induced ECONNREFUSED on
                    // loopback when a peer is down: treat as loss.
                    Err(_) => continue,
                }
            }
        });
        UdpTransport {
            socket,
            peers,
            slot,
            inbox,
            stop,
            reader: Some(reader),
        }
    }

    /// Binds `addr` and wraps the socket.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (bad address, port in use).
    pub fn bind(addr: SocketAddr, peers: Vec<SocketAddr>, slot: u8) -> io::Result<Self> {
        Ok(UdpTransport::new(UdpSocket::bind(addr)?, peers, slot))
    }

    /// The socket's bound address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// The owner's sending slot.
    pub fn slot(&self) -> u8 {
        self.slot
    }

    /// The peer table (index = slot).
    pub fn peers(&self) -> &[SocketAddr] {
        &self.peers
    }

    fn send_raw(&self, wire: &[u8], dest: SocketAddr) {
        // Best effort, like a bus: a send error is indistinguishable from
        // loss and surfaces as a benign fault at the receiver.
        let _ = self.socket.send_to(wire, dest);
    }
}

impl SlotTransport for UdpTransport {
    fn broadcast(&mut self, wire: &[u8], _round: u64) {
        for &peer in &self.peers {
            self.send_raw(wire, peer);
        }
    }

    fn recv_until(&mut self, deadline: Instant) -> Option<(Vec<u8>, Instant)> {
        let left = deadline.checked_duration_since(Instant::now())?;
        if left.is_zero() {
            return None;
        }
        self.inbox.recv_timeout(left).ok()
    }
}

impl Drop for UdpTransport {
    fn drop(&mut self) {
        // Stop the reader so its cloned socket closes and the port frees
        // (a restarted incarnation rebinds the same address).
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.reader.take() {
            let _ = h.join();
        }
    }
}

/// A held-back frame awaiting its delayed release.
struct HeldFrame {
    dest: SocketAddr,
    wire: Vec<u8>,
}

/// [`UdpTransport`] plus deterministic seeded chaos on the send path.
pub struct LossyUdp {
    inner: UdpTransport,
    chaos: NetChaos,
    held: Vec<HeldFrame>,
    stats: ChaosStats,
}

impl LossyUdp {
    /// Wraps `inner`, injecting per `chaos`.
    pub fn new(inner: UdpTransport, chaos: NetChaos) -> Self {
        LossyUdp {
            inner,
            chaos,
            held: Vec::new(),
            stats: ChaosStats::default(),
        }
    }

    /// The chaos plan in force.
    pub fn chaos(&self) -> &NetChaos {
        &self.chaos
    }
}

impl SlotTransport for LossyUdp {
    fn broadcast(&mut self, wire: &[u8], round: u64) {
        // Release frames held for reordering: they leave a round late,
        // just ahead of the current frame.
        for held in self.held.drain(..) {
            self.inner.send_raw(&held.wire, held.dest);
        }
        let from = self.inner.slot();
        for (to, &peer) in self.inner.peers().iter().enumerate() {
            match self.chaos.action(from, to as u8, round) {
                ChaosAction::Deliver => {
                    self.stats.delivered += 1;
                    self.inner.send_raw(wire, peer);
                }
                ChaosAction::Drop => self.stats.dropped += 1,
                ChaosAction::Duplicate => {
                    self.stats.duplicated += 1;
                    self.inner.send_raw(wire, peer);
                    self.inner.send_raw(wire, peer);
                }
                ChaosAction::Reorder => {
                    self.stats.reordered += 1;
                    self.held.push(HeldFrame {
                        dest: peer,
                        wire: wire.to_vec(),
                    });
                }
                ChaosAction::Corrupt { byte, mask } => {
                    self.stats.corrupted += 1;
                    let mut bad = wire.to_vec();
                    if !bad.is_empty() {
                        let i = usize::from(byte) % bad.len();
                        bad[i] ^= mask;
                    }
                    self.inner.send_raw(&bad, peer);
                }
            }
        }
    }

    fn recv_until(&mut self, deadline: Instant) -> Option<(Vec<u8>, Instant)> {
        self.inner.recv_until(deadline)
    }

    fn chaos_stats(&self) -> ChaosStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::LinkRates;
    use std::time::Duration;

    fn pair() -> (UdpTransport, UdpTransport) {
        let a = UdpSocket::bind("127.0.0.1:0").unwrap();
        let b = UdpSocket::bind("127.0.0.1:0").unwrap();
        let peers = vec![a.local_addr().unwrap(), b.local_addr().unwrap()];
        (
            UdpTransport::new(a, peers.clone(), 0),
            UdpTransport::new(b, peers, 1),
        )
    }

    fn recv_soon(t: &mut dyn SlotTransport) -> Option<Vec<u8>> {
        t.recv_until(Instant::now() + Duration::from_millis(500))
            .map(|(w, _)| w)
    }

    #[test]
    fn plain_broadcast_reaches_every_peer_including_self() {
        let (mut a, mut b) = pair();
        a.broadcast(b"hello", 0);
        assert_eq!(recv_soon(&mut a).as_deref(), Some(&b"hello"[..]));
        assert_eq!(recv_soon(&mut b).as_deref(), Some(&b"hello"[..]));
    }

    #[test]
    fn recv_times_out_when_nothing_arrives() {
        let (mut a, _b) = pair();
        assert!(a
            .recv_until(Instant::now() + Duration::from_millis(20))
            .is_none());
    }

    #[test]
    fn dropped_frames_never_leave_the_sender() {
        let (a, mut b) = pair();
        let mut lossy = LossyUdp::new(a, NetChaos::uniform(1, LinkRates::loss(1000)));
        lossy.broadcast(b"gone", 0);
        assert!(recv_soon(&mut b).is_none());
        assert_eq!(lossy.chaos_stats().dropped, 2);
    }

    #[test]
    fn reordered_frames_arrive_one_broadcast_late() {
        let (a, mut b) = pair();
        let chaos = NetChaos::uniform(
            1,
            LinkRates {
                reorder_per_mille: 1000,
                ..LinkRates::QUIET
            },
        );
        let mut lossy = LossyUdp::new(a, chaos);
        lossy.broadcast(b"first", 0);
        assert!(recv_soon(&mut b).is_none(), "held back");
        lossy.broadcast(b"second", 1);
        // The held round-0 frame is released ahead of (the also-held)
        // round-1 frame.
        assert_eq!(recv_soon(&mut b).as_deref(), Some(&b"first"[..]));
    }

    #[test]
    fn corrupted_frames_differ_from_the_original() {
        let (a, mut b) = pair();
        let chaos = NetChaos::uniform(
            1,
            LinkRates {
                corrupt_per_mille: 1000,
                ..LinkRates::QUIET
            },
        );
        let mut lossy = LossyUdp::new(a, chaos);
        lossy.broadcast(b"payload", 3);
        let got = recv_soon(&mut b).expect("corrupted frame still arrives");
        assert_ne!(got, b"payload");
        assert_eq!(got.len(), b"payload".len());
    }
}
