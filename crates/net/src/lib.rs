//! `tt-net`: the certified diagnostic protocol over a real UDP transport.
//!
//! The simulator (`tt-sim`) models the time-triggered bus as a
//! discrete-event abstraction; this crate replaces that abstraction with
//! `std::net::UdpSocket` datagrams on an **emulated TDMA schedule** while
//! running the *same certified `DiagJob` code unchanged*: each node owns
//! one slot of a shared round schedule (slot duration × one slot per node,
//! anchored at an epoch `Instant`), transmits its dissemination payload in
//! its slot, and listens otherwise.
//!
//! The mapping from network reality to the paper's fault model:
//!
//! * a timely, CRC-valid frame → `Reception::Valid` (correct slot);
//! * a missing, late, or stale frame → `Reception::Detected` (benign
//!   fault, exactly like a silent or noise-hit slot);
//! * a corrupt frame (CRC reject) → `Reception::Detected` (invalid);
//! * the sender's own loopback self-reception is the local collision
//!   detector: the own slot is `ok` iff the frame comes back carrying
//!   exactly the transmitted bytes.
//!
//! Layers, bottom up: [`frame`] (wire format), [`tdma`] (slot clock),
//! [`chaos`] (seeded deterministic loss/duplication/reorder/corruption),
//! [`transport`] (UDP socket + lossy wrapper), [`node`] (the
//! deadline-driven per-node event loop), [`runner`] (loopback cluster
//! orchestration incl. crash/restart), and [`replay`] (verdict
//! cross-check against the discrete-event simulator).
//!
//! Everything is `std`-only — threads and monotonic clocks, no async
//! runtime — so the crate adds no dependency beyond the workspace's
//! vendored set.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod frame;
pub mod node;
pub mod replay;
pub mod runner;
pub mod tdma;
pub mod transport;

pub use chaos::{ChaosAction, LinkOverride, LinkRates, NetChaos};
pub use frame::{FrameError, NetFrame, MAX_PAYLOAD};
pub use node::{run_node, JitterStats, NodeParams, NodeSegment, ObservedRound, SlotTiming};
pub use replay::{replay_cross_check, ReplayVerdict};
pub use runner::{
    run_cluster, ConvergenceSummary, CrashSpec, NetError, NodeTrajectory, RunConfig, RunReport,
};
pub use tdma::SlotClock;
pub use transport::{ChaosStats, LossyUdp, SlotTransport, UdpTransport};
