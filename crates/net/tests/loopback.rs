//! End-to-end loopback cluster runs: clean convergence, seeded loss with
//! simulator-replay agreement, and crash/restart reintegration.

use std::time::Duration;

use tt_core::{ProtocolConfig, ReintegrationPolicy};
use tt_net::{run_cluster, CrashSpec, LinkRates, NetChaos, RunConfig, RunReport};

fn protocol(n: usize, penalty: u64, reint_rewards: u64) -> ProtocolConfig {
    ProtocolConfig::builder(n)
        .penalty_threshold(penalty)
        .reward_threshold(1_000_000)
        .reintegration(ReintegrationPolicy::AfterRewards(reint_rewards))
        .build()
        .expect("valid protocol config")
}

fn total_isolations(report: &RunReport) -> usize {
    report
        .nodes
        .iter()
        .flat_map(|t| &t.segments)
        .map(|s| s.isolations.len())
        .sum()
}

#[test]
fn three_node_clean_run_converges_and_matches_the_simulator() {
    let cfg = RunConfig::new(protocol(3, 4, 4), 20, Duration::from_millis(3));
    let report = run_cluster(cfg).expect("clean run");

    assert!(
        report.convergence.converged,
        "clean run must converge: {:?}",
        report.convergence
    );
    assert_eq!(total_isolations(&report), 0, "no isolations without faults");
    assert!(
        report.replay.agree,
        "simulator replay diverged: {:?}",
        report.replay.mismatches
    );
    assert!(report.chaos_digest.is_none());
    // Every node produced a diagnosis trajectory.
    for t in &report.nodes {
        let seg = t.segments.last().expect("one segment per node");
        assert!(
            !seg.health_log.is_empty(),
            "node {} recorded no health vectors",
            t.node
        );
        assert!(seg.health_log.iter().all(|h| h.health.iter().all(|&b| b)));
    }
}

#[test]
fn five_node_lossy_run_agrees_with_the_replay() {
    let chaos = NetChaos::uniform(7, LinkRates::loss(50));
    let mut cfg = RunConfig::new(protocol(5, 6, 4), 40, Duration::from_millis(3));
    cfg.chaos = Some(chaos.clone());
    let report = run_cluster(cfg).expect("lossy run");

    assert!(
        report.replay.agree,
        "simulator replay diverged: {:?}",
        report.replay.mismatches
    );
    assert_eq!(
        report.convergence.wrongful_isolations, 0,
        "5% loss must not isolate a healthy node"
    );
    assert!(report.convergence.survivors_active);
    // The digest is a pure function of seed and topology.
    assert_eq!(report.chaos_digest, Some(chaos.digest(5, 40)));
    // The injector actually did something across the cluster.
    let dropped: u64 = report
        .nodes
        .iter()
        .flat_map(|t| &t.segments)
        .map(|s| s.chaos.dropped)
        .sum();
    assert!(
        dropped > 0,
        "a 5% plan over 5x5x40 sends should drop frames"
    );
}

#[test]
fn crashed_node_is_isolated_and_reintegrates_within_the_bound() {
    // Crash node 3 at round 10 for 8 rounds. Survivors see benign faults
    // on its slot, cross the penalty threshold (2), and isolate it; the
    // fresh incarnation restarting at ~round 19 stays fault-free, earns
    // AfterRewards(6) rewards, and must re-enter ACTIVE within the paper's
    // reintegration bound (6 rewards + 3 rounds diagnosis lag) of its
    // first fully observed round. Run length: restart (18) + first full
    // round slack (3) + bound (9) + decision slack (4).
    let protocol = protocol(5, 2, 6);
    let bound = protocol
        .reintegration_bound()
        .expect("AfterRewards has a bound");
    let crash = CrashSpec {
        node: 3,
        at_round: 10,
        down_rounds: 8,
    };
    let restart = crash.at_round + crash.down_rounds;
    let rounds = restart + 3 + bound + 4;

    let mut cfg = RunConfig::new(protocol, rounds, Duration::from_millis(3));
    cfg.crash = Some(crash);
    let report = run_cluster(cfg).expect("crash run");

    let crash_idx = crash.node as usize - 1;
    for t in &report.nodes {
        if t.node == crash.node {
            assert_eq!(t.segments.len(), 2, "crashed node runs two incarnations");
            continue;
        }
        let seg = t.segments.last().expect("survivor segment");
        let isolated: Vec<u32> = seg.isolations.iter().map(|e| e.node.get()).collect();
        assert_eq!(
            isolated,
            vec![crash.node],
            "node {} must isolate exactly the crashed node once",
            t.node
        );
        assert!(
            seg.final_active[crash_idx],
            "node {} did not reintegrate the crashed node within {} rounds of restart",
            t.node,
            rounds - restart
        );
        assert!(
            seg.final_active.iter().all(|&a| a),
            "node {} wrongly isolated a survivor",
            t.node
        );
    }
    assert!(
        report.convergence.converged,
        "crash run must converge: {:?}",
        report.convergence
    );
    assert!(
        report.replay.agree,
        "simulator replay diverged: {:?}",
        report.replay.mismatches
    );
}
