//! Property tests: frame codec round-trip and chaos-plan determinism.

use proptest::prelude::*;

use tt_net::{ChaosAction, FrameError, LinkRates, NetChaos, NetFrame, MAX_PAYLOAD};
use tt_sim::crc32;

/// An arbitrary well-formed frame.
fn frame_strategy() -> impl Strategy<Value = NetFrame> {
    (
        0u8..64,
        any::<u64>(),
        (
            any::<u64>(),
            proptest::collection::vec(any::<u8>(), 0..=256usize),
        ),
    )
        .prop_map(|(slot, round, (seq, payload))| NetFrame {
            slot,
            round,
            seq,
            payload: payload.into(),
        })
}

/// Recomputes the trailing CRC so structural checks run after the splice.
fn fix_crc(wire: &mut [u8]) {
    let body_len = wire.len() - 4;
    let crc = crc32(&wire[..body_len]);
    wire[body_len..].copy_from_slice(&crc.to_le_bytes());
}

proptest! {
    #[test]
    fn encode_decode_round_trips(frame in frame_strategy()) {
        let wire = frame.encode();
        let back = NetFrame::decode(&wire).expect("well-formed frame decodes");
        prop_assert_eq!(back, frame);
    }

    #[test]
    fn any_single_byte_flip_is_rejected(
        frame in frame_strategy(),
        pos in any::<u16>(),
        mask in 1u8..=255,
    ) {
        let mut wire = frame.encode();
        let i = usize::from(pos) % wire.len();
        wire[i] ^= mask;
        prop_assert!(
            NetFrame::decode(&wire).is_err(),
            "flipping byte {} must not decode",
            i
        );
    }

    #[test]
    fn any_truncation_is_rejected(frame in frame_strategy(), cut in any::<u16>()) {
        let wire = frame.encode();
        let keep = usize::from(cut) % wire.len();
        prop_assert!(NetFrame::decode(&wire[..keep]).is_err());
    }

    #[test]
    fn oversize_length_fields_are_rejected(extra in 1usize..=64) {
        // Splice an over-limit length into an otherwise valid frame and
        // re-CRC, so the structural check itself must catch it.
        let frame = NetFrame {
            slot: 0,
            round: 1,
            seq: 2,
            payload: vec![0u8; 16].into(),
        };
        let mut wire = frame.encode();
        let bad_len = (MAX_PAYLOAD + extra) as u16;
        // The length field sits at bytes 20..22 (see docs/NETWORKING.md).
        wire[20..22].copy_from_slice(&bad_len.to_le_bytes());
        fix_crc(&mut wire);
        prop_assert_eq!(NetFrame::decode(&wire), Err(FrameError::Oversize));
    }

    #[test]
    fn chaos_decisions_are_a_pure_function_of_seed_and_topology(
        seed in any::<u64>(),
        n in 2u8..10,
        rates in (0u16..250, 0u16..250, (0u16..250, 0u16..250)).prop_map(
            |(drop, dup, (reorder, corrupt))| LinkRates {
                drop_per_mille: drop,
                duplicate_per_mille: dup,
                reorder_per_mille: reorder,
                corrupt_per_mille: corrupt,
            }
        ),
    ) {
        let a = NetChaos::uniform(seed, rates);
        let b = NetChaos::uniform(seed, rates);
        // Byte-identical drop/duplicate/reorder/corrupt pattern: every
        // (link, round) decision matches, and so does the digest.
        for round in 0..64u64 {
            for from in 0..n {
                for to in 0..n {
                    prop_assert_eq!(
                        a.action(from, to, round),
                        b.action(from, to, round)
                    );
                }
            }
        }
        prop_assert_eq!(a.digest(n, 64), b.digest(n, 64));
    }

    #[test]
    fn distinct_seeds_disagree_somewhere(seed in any::<u64>()) {
        let rates = LinkRates::loss(500);
        let a = NetChaos::uniform(seed, rates);
        let b = NetChaos::uniform(seed.wrapping_add(1), rates);
        let mut differs = false;
        'outer: for round in 0..256u64 {
            for from in 0..4u8 {
                for to in 0..4u8 {
                    if a.action(from, to, round) != b.action(from, to, round) {
                        differs = true;
                        break 'outer;
                    }
                }
            }
        }
        prop_assert!(differs, "adjacent seeds produced identical plans");
    }

    #[test]
    fn corrupt_actions_always_carry_a_nonzero_mask(seed in any::<u64>()) {
        let c = NetChaos::uniform(
            seed,
            LinkRates {
                corrupt_per_mille: 500,
                ..LinkRates::QUIET
            },
        );
        for round in 0..128u64 {
            if let ChaosAction::Corrupt { mask, .. } = c.action(0, 1, round) {
                prop_assert_ne!(mask, 0);
            }
        }
    }
}
