//! `ttdiag` — command-line front end for the tt-diag reproduction.
//!
//! See `ttdiag help` (or [`args::USAGE`]) for the full grammar.

mod args;
mod commands;
mod net;
mod serve;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match args::parse(&argv) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", args::USAGE);
            std::process::exit(2);
        }
    };
    match commands::run(cmd) {
        Ok(out) => println!("{out}"),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(e.exit_code());
        }
    }
}
