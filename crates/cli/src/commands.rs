//! Execution of the parsed `ttdiag` commands.

use std::fmt;
use std::path::{Path, PathBuf};
use std::time::Duration;

use tt_analysis::{
    aerospace_setup, automotive_setup, availability_of, check_analytic_agreement, fig3_csv,
    group_chains, isolation_csv, measure_time_to_isolation, render_explore_summary,
    render_provenance_summary, render_supervision_summary, render_sweep_summary, resume_sweep,
    run_sweep, safety_curve_csv, spans_to_jsonl, spans_to_perfetto, sweep_json, tune, DomainSetup,
    LatencySummary, SweepCheckpoint, SweepConfig, SweepSupervisor, Table, LATENCY_BOUND_ROUNDS,
};
use tt_bench::{SupervisedCampaign, SupervisorConfig};
use tt_core::properties::{check_diag_cluster, checkable_rounds};
use tt_core::{DiagJob, ProtocolConfig};
use tt_fault::{
    sec8_classes, AsymmetricDisturbance, Burst, ChaosPlan, ContinuousFault, DisturbanceNode,
    IntermittentFault, RandomNoise, TransientScenario,
};
use tt_sim::{timeline, ClusterBuilder, Nanos, NodeId, RecordingTraceSink, RoundIndex, TraceMode};

use crate::args::{Command, FaultSpec, MetricsFormat, TraceFormat};

/// Why a command failed, mapped onto the process exit code: the failure
/// taxonomy distinguishes "you asked for something invalid" from "the
/// protocol check failed" from "the harness itself broke", so scripts and
/// CI can react to each differently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// Semantically invalid arguments or argument combinations (exit 2,
    /// like parse errors).
    Usage(String),
    /// A protocol check failed: a campaign experiment failed, the explorer
    /// found a surviving counterexample, or a latency bound was violated
    /// (exit 1). The message carries the full report.
    Counterexample(String),
    /// The harness itself failed — I/O, serialization — rather than the
    /// system under test (exit 101, mirroring a Rust panic).
    Internal(String),
}

impl CliError {
    /// The process exit code this failure maps to.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Counterexample(_) => 1,
            CliError::Internal(_) => 101,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) | CliError::Counterexample(msg) | CliError::Internal(msg) => {
                write!(f, "{msg}")
            }
        }
    }
}

impl std::error::Error for CliError {}

pub(crate) fn usage(msg: impl Into<String>) -> CliError {
    CliError::Usage(msg.into())
}

pub(crate) fn internal(msg: impl Into<String>) -> CliError {
    CliError::Internal(msg.into())
}

/// Runs a command, returning the text to print or a typed failure.
pub fn run(cmd: Command) -> Result<String, CliError> {
    match cmd {
        Command::Help => Ok(crate::args::USAGE.to_string()),
        Command::Serve { socket, state } => crate::serve::serve(&socket, &state),
        Command::Submit { socket, spec } => crate::serve::submit(&socket, spec),
        Command::Job { socket, op } => crate::serve::job(&socket, op),
        Command::Watch { socket, job } => crate::serve::watch(&socket, job),
        Command::Tail {
            socket,
            feed,
            max,
            capacity,
        } => crate::serve::tail(&socket, feed, max, capacity),
        Command::Shutdown { socket } => crate::serve::shutdown(&socket),
        cmd @ (Command::NetRun { .. } | Command::NetNode { .. }) => crate::net::run(cmd),
        Command::Tune { domain } => tune_report(&domain),
        Command::Isolation { domain } => isolation_report(&domain),
        Command::TuneSweep {
            config,
            json,
            csv_dir,
            check,
            checkpoint,
            resume,
            halt_after,
        } => tune_sweep(TuneSweepOpts {
            config,
            json,
            csv_dir,
            check,
            checkpoint,
            resume,
            halt_after,
        }),
        Command::Campaign {
            reps,
            json,
            threads,
            checkpoint,
            checkpoint_every,
            resume,
            halt_after,
            watchdog_ms,
            chaos_seed,
            chaos_panic,
            chaos_hang,
            chaos_transient,
        } => campaign(CampaignOpts {
            reps,
            json,
            threads,
            checkpoint,
            checkpoint_every,
            resume,
            halt_after,
            watchdog_ms,
            chaos: ChaosPlan {
                seed: chaos_seed,
                panic_per_mille: chaos_panic,
                hang_per_mille: chaos_hang,
                transient_per_mille: chaos_transient,
                first_attempt_only: false,
            },
        }),
        Command::Simulate {
            nodes,
            rounds,
            penalty,
            reward,
            seed,
            timeline,
            faults,
            record,
        } => {
            let pipeline = Box::new(build_pipeline(&faults, nodes, seed)?);
            simulate(nodes, rounds, penalty, reward, timeline, pipeline, record)
        }
        Command::Metrics {
            nodes,
            rounds,
            penalty,
            reward,
            seed,
            faults,
            format,
            out,
            record,
        } => {
            let pipeline = build_pipeline(&faults, nodes, seed)?;
            metrics(
                nodes, rounds, penalty, reward, pipeline, format, out, record,
            )
        }
        Command::Trace {
            nodes,
            rounds,
            penalty,
            reward,
            seed,
            faults,
            format,
            out,
        } => {
            let pipeline = Box::new(build_pipeline(&faults, nodes, seed)?);
            trace(nodes, rounds, penalty, reward, pipeline, format, out)
        }
        Command::Explore {
            protocol,
            nodes,
            rounds,
            penalty,
            reward,
            seed,
            budget,
            max_faults,
            random,
            corpus,
            corpus_out,
            repro,
            json,
            checkpoint,
            checkpoint_every,
            resume,
        } => explore_cmd(ExploreOpts {
            protocol,
            nodes,
            rounds,
            penalty,
            reward,
            seed,
            budget,
            max_faults,
            random,
            corpus,
            corpus_out,
            repro,
            json,
            checkpoint,
            checkpoint_every,
            resume,
        }),
        Command::Replay {
            trace,
            nodes,
            rounds,
            penalty,
            reward,
            timeline,
        } => {
            let body = std::fs::read_to_string(&trace)
                .map_err(|e| internal(format!("reading {trace}: {e}")))?;
            let restored: tt_sim::Trace = serde_json::from_str(&body)
                .map_err(|e| internal(format!("parsing {trace}: {e}")))?;
            let pipeline = Box::new(restored.replay_pipeline());
            simulate(nodes, rounds, penalty, reward, timeline, pipeline, None)
        }
    }
}

fn round_for(n: usize) -> Nanos {
    Nanos::from_nanos(2_500_000 - (2_500_000 % n as u64))
}

fn build_pipeline(faults: &[FaultSpec], n: usize, seed: u64) -> Result<DisturbanceNode, CliError> {
    let sched =
        tt_sim::CommunicationSchedule::new(n, round_for(n)).map_err(|e| usage(e.to_string()))?;
    let mut node = DisturbanceNode::new(seed);
    for f in faults {
        match f {
            FaultSpec::Crash { node: id, round } => {
                if *id as usize > n {
                    return Err(usage(format!("crash: node {id} exceeds cluster size {n}")));
                }
                node.push(ContinuousFault::new(
                    NodeId::new(*id),
                    RoundIndex::new(*round),
                ));
            }
            FaultSpec::Intermittent {
                node: id,
                round,
                period,
            } => {
                if *id as usize > n {
                    return Err(usage(format!(
                        "intermittent: node {id} exceeds cluster size {n}"
                    )));
                }
                node.push(IntermittentFault::new(
                    NodeId::new(*id),
                    RoundIndex::new(*round),
                    *period,
                ));
            }
            FaultSpec::Burst { len, round, slot } => {
                if *slot >= n {
                    return Err(usage(format!(
                        "burst: slot {slot} exceeds cluster size {n}"
                    )));
                }
                node.push(Burst::in_round(RoundIndex::new(*round), *slot, *len, n));
            }
            FaultSpec::Noise { p } => node.push(RandomNoise::everywhere(*p)),
            FaultSpec::Asym {
                node: id,
                round,
                detected_by,
            } => {
                if *id as usize > n || detected_by.iter().any(|&r| r >= n) {
                    return Err(usage("asym: node or receiver out of range"));
                }
                node.push(AsymmetricDisturbance::new(
                    NodeId::new(*id),
                    RoundIndex::new(*round),
                    1,
                    tt_fault::malicious::AsymmetricTarget::Fixed(detected_by.clone()),
                ));
            }
            FaultSpec::Scenario { name } => {
                let scenario = match name.as_str() {
                    "blinking" => TransientScenario::blinking_light(),
                    _ => TransientScenario::lightning_bolt(),
                };
                node.push(scenario.to_disturbance(&sched, Nanos::ZERO));
            }
        }
    }
    Ok(node)
}

fn simulate(
    n: usize,
    rounds: u64,
    penalty: u64,
    reward: u64,
    show_timeline: bool,
    pipeline: Box<dyn tt_sim::FaultPipeline>,
    record: Option<String>,
) -> Result<String, CliError> {
    let config = ProtocolConfig::builder(n)
        .penalty_threshold(penalty)
        .reward_threshold(reward)
        .build()
        .map_err(|e| usage(e.to_string()))?;
    let mut cluster = ClusterBuilder::new(n)
        .round_length(round_for(n))
        .trace_mode(TraceMode::Anomalies)
        .build_with_jobs(|id| Box::new(DiagJob::new(id, config.clone())), pipeline);
    cluster.run_rounds(rounds);

    let mut out = format!(
        "{n}-node cluster, {rounds} rounds of {}, P = {penalty}, R = {reward}\n\n",
        round_for(n)
    );
    let trace = cluster.trace();
    out.push_str(&format!(
        "Faulty slots on the bus: {}\n",
        trace.records().len()
    ));
    if show_timeline && !trace.records().is_empty() {
        out.push('\n');
        out.push_str(&timeline::render_anomalies(trace, n, 1));
        out.push('\n');
    }
    let diag: &DiagJob = cluster
        .job_as(NodeId::new(1))
        .map_err(|e| internal(e.to_string()))?;
    let mut t = Table::new(vec!["Node", "Active", "Penalty", "Reward", "Availability"]);
    let avail = availability_of(diag, rounds);
    for id in NodeId::all(n) {
        t.row(vec![
            id.to_string(),
            if diag.is_active(id) {
                "yes"
            } else {
                "ISOLATED"
            }
            .to_string(),
            diag.penalty(id).to_string(),
            diag.reward(id).to_string(),
            format!("{:.1}%", avail.nodes[id.index()].fraction() * 100.0),
        ]);
    }
    out.push_str(&t.render());
    for iso in diag.isolations() {
        out.push_str(&format!(
            "\nisolated {} at round {} (fault diagnosed in round {})",
            iso.node,
            iso.decided_at.as_u64(),
            iso.diagnosed.as_u64()
        ));
    }
    // Run the Theorem 1 oracles over the run as a free sanity check.
    let all: Vec<NodeId> = NodeId::all(n).collect();
    let report = check_diag_cluster(&cluster, &all, checkable_rounds(rounds, 3));
    out.push_str(&format!(
        "\n\nTheorem 1 oracles: {} rounds checked, {} out of hypothesis, {} violations\n",
        report.rounds_checked,
        report.rounds_out_of_hypothesis,
        report.violations.len()
    ));
    if let Some(path) = record {
        out.push_str(&record_fault_trace(cluster.trace(), &path)?);
    }
    Ok(out)
}

/// Serializes a cluster's fault trace to `path` — the single implementation
/// behind both `simulate --record` and `metrics --record`.
fn record_fault_trace(trace: &tt_sim::Trace, path: &str) -> Result<String, CliError> {
    let body = serde_json::to_string_pretty(trace).map_err(|e| internal(e.to_string()))?;
    std::fs::write(path, body).map_err(|e| internal(format!("writing {path}: {e}")))?;
    Ok(format!(
        "\nrecorded fault trace to {path} (replay with `ttdiag replay {path}`)\n"
    ))
}

#[allow(clippy::too_many_arguments)]
fn metrics(
    n: usize,
    rounds: u64,
    penalty: u64,
    reward: u64,
    pipeline: DisturbanceNode,
    format: MetricsFormat,
    out: Option<String>,
    record: Option<String>,
) -> Result<String, CliError> {
    let sink = std::sync::Arc::new(tt_sim::RecordingSink::new());
    // Both sides of the bus report into the same sink: the disturbance node
    // counts injected effects, the cluster records protocol-level events.
    let pipeline = Box::new(pipeline.with_metrics(sink.clone()));
    let config = ProtocolConfig::builder(n)
        .penalty_threshold(penalty)
        .reward_threshold(reward)
        .build()
        .map_err(|e| usage(e.to_string()))?;
    let mut builder = ClusterBuilder::new(n)
        .round_length(round_for(n))
        .metrics_sink(sink.clone());
    if record.is_some() {
        // Recording needs the bus-level fault trace alongside the metrics.
        builder = builder.trace_mode(TraceMode::Anomalies);
    }
    let mut cluster =
        builder.build_with_jobs(|id| Box::new(DiagJob::new(id, config.clone())), pipeline);
    cluster.run_rounds(rounds);

    let report = sink.report();
    let mut body = match format {
        MetricsFormat::Json => {
            serde_json::to_string_pretty(&report).map_err(|e| internal(e.to_string()))?
        }
        MetricsFormat::Csv => tt_analysis::events_to_csv(&report.events),
        MetricsFormat::Summary => tt_analysis::render_summary(&report),
    };
    let recorded = match record {
        Some(path) => record_fault_trace(cluster.trace(), &path)?,
        None => String::new(),
    };
    match out {
        Some(path) => {
            std::fs::write(&path, &body).map_err(|e| internal(format!("writing {path}: {e}")))?;
            Ok(format!(
                "wrote {} events ({} bytes) to {path}\n{recorded}",
                report.events.len(),
                body.len()
            ))
        }
        None => {
            body.push_str(&recorded);
            Ok(body)
        }
    }
}

fn trace(
    n: usize,
    rounds: u64,
    penalty: u64,
    reward: u64,
    pipeline: Box<dyn tt_sim::FaultPipeline>,
    format: TraceFormat,
    out: Option<String>,
) -> Result<String, CliError> {
    let sink = std::sync::Arc::new(RecordingTraceSink::new());
    let config = ProtocolConfig::builder(n)
        .penalty_threshold(penalty)
        .reward_threshold(reward)
        .build()
        .map_err(|e| usage(e.to_string()))?;
    let mut cluster = ClusterBuilder::new(n)
        .round_length(round_for(n))
        .trace_sink(sink.clone())
        .build_with_jobs(|id| Box::new(DiagJob::new(id, config.clone())), pipeline);
    cluster.run_rounds(rounds);

    let spans = sink.spans();
    let body = match format {
        TraceFormat::Jsonl => spans_to_jsonl(&spans),
        TraceFormat::Perfetto => spans_to_perfetto(&spans, round_for(n)),
        TraceFormat::Summary => {
            let chains = group_chains(&spans);
            let mut s = render_provenance_summary(&chains);
            match LatencySummary::check_bound(&chains, LATENCY_BOUND_ROUNDS) {
                Ok(_) => s.push_str(&format!(
                    "\nall diagnosed faults within the {LATENCY_BOUND_ROUNDS}-round bound\n"
                )),
                Err(violations) => {
                    return Err(CliError::Counterexample(format!(
                        "{s}\nlatency bound of {LATENCY_BOUND_ROUNDS} rounds violated for {} \
                         chain(s)",
                        violations.len()
                    )))
                }
            }
            s
        }
    };
    match out {
        Some(path) => {
            std::fs::write(&path, &body).map_err(|e| internal(format!("writing {path}: {e}")))?;
            Ok(format!(
                "wrote {} spans ({} bytes) to {path}\n",
                spans.len(),
                body.len()
            ))
        }
        None => Ok(body),
    }
}

/// The one domain-token validation behind `tune` and `isolation`: the
/// parser passes any token through, and an unknown one fails here as a
/// usage error (exit 2) rather than silently falling back to a default.
fn domain_setup(domain: &str) -> Result<DomainSetup, CliError> {
    match domain {
        "automotive" => Ok(automotive_setup()),
        "aerospace" => Ok(aerospace_setup()),
        other => Err(usage(format!(
            "unknown domain {other:?} (automotive|aerospace)"
        ))),
    }
}

fn tune_report(domain: &str) -> Result<String, CliError> {
    let setup = domain_setup(domain)?;
    let tuned = tune(&setup);
    let mut out = format!("{} tuning (paper Table 2 procedure):\n\n", tuned.domain);
    let mut t = Table::new(vec![
        "Criticality class",
        "Tolerated outage",
        "Penalty budget",
        "s_i",
    ]);
    for row in &tuned.rows {
        t.row(vec![
            row.class.name.clone(),
            format!("{}", row.class.tolerated_outage),
            row.penalty_budget.to_string(),
            row.criticality.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nP = {}   R = {:.0e}   T = {}\n",
        tuned.penalty_threshold, tuned.reward_threshold as f64, tuned.round
    ));
    Ok(out)
}

fn isolation_report(domain: &str) -> Result<String, CliError> {
    let setup = domain_setup(domain)?;
    let (scenario, paper) = if domain == "aerospace" {
        (TransientScenario::lightning_bolt(), vec!["0.205 s"])
    } else {
        (
            TransientScenario::blinking_light(),
            vec!["0.518 s", "4.595 s", "24.475 s"],
        )
    };
    let tuned = tune(&setup);
    let mut out = format!(
        "{} — time to incorrect isolation under \"{}\":\n\n",
        tuned.domain,
        scenario.name()
    );
    let mut t = Table::new(vec!["Class", "s_i", "Measured", "Paper"]);
    for (row, paper_val) in tuned.rows.iter().zip(paper) {
        let m = measure_time_to_isolation(
            &scenario,
            row.criticality,
            tuned.penalty_threshold,
            tuned.reward_threshold,
            tuned.round,
            setup.n_nodes,
        );
        t.row(vec![
            row.class.name.clone(),
            row.criticality.to_string(),
            m.time_to_isolation
                .map(|d| format!("{:.3} s", d.as_secs_f64()))
                .unwrap_or_else(|| "never".into()),
            paper_val.to_string(),
        ]);
    }
    out.push_str(&t.render());
    Ok(out)
}

/// The tune-sweep command's flag surface, bundled.
struct TuneSweepOpts {
    config: SweepConfig,
    json: Option<String>,
    csv_dir: Option<String>,
    check: bool,
    checkpoint: Option<String>,
    resume: bool,
    halt_after: Option<u64>,
}

fn tune_sweep(opts: TuneSweepOpts) -> Result<String, CliError> {
    let supervisor = SweepSupervisor {
        checkpoint_path: opts.checkpoint.as_ref().map(PathBuf::from),
        halt_after_cells: opts.halt_after,
    };
    let map_sweep_err = |e: std::io::Error| match e.kind() {
        std::io::ErrorKind::InvalidInput | std::io::ErrorKind::InvalidData => usage(e.to_string()),
        _ => internal(e.to_string()),
    };
    // A resumed sweep carries its grid in the checkpoint; command-line grid
    // flags apply only to fresh runs (mirroring `campaign` and `explore`).
    let outcome = if opts.resume {
        let path = opts
            .checkpoint
            .as_ref()
            .expect("the parser rejects --resume without --checkpoint");
        let cp: SweepCheckpoint = tt_fault::read_json(Path::new(path))
            .map_err(|e| internal(format!("reading checkpoint {path}: {e}")))?;
        resume_sweep(cp, &supervisor).map_err(map_sweep_err)?
    } else {
        run_sweep(&opts.config, &supervisor).map_err(map_sweep_err)?
    };
    let report = &outcome.report;
    let mut out = render_sweep_summary(report);
    if let Some(path) = &opts.json {
        std::fs::write(path, sweep_json(report))
            .map_err(|e| internal(format!("writing {path}: {e}")))?;
        out.push_str(&format!("\nwrote sweep report to {path}\n"));
    }
    if let Some(dir) = &opts.csv_dir {
        let dir = Path::new(dir);
        std::fs::create_dir_all(dir)
            .map_err(|e| internal(format!("creating {}: {e}", dir.display())))?;
        for (name, body) in [
            ("fig3_boundary.csv", fig3_csv(report)),
            ("isolation.csv", isolation_csv(report)),
            ("safety_curves.csv", safety_curve_csv(report)),
        ] {
            let path = dir.join(name);
            std::fs::write(&path, body)
                .map_err(|e| internal(format!("writing {}: {e}", path.display())))?;
        }
        out.push_str(&format!("\nwrote CSV tables to {}\n", dir.display()));
    }
    if outcome.halted {
        out.push_str(&format!(
            "\nhalted after {}/{} cells; resume with --resume --checkpoint PATH\n",
            report.cells.len(),
            outcome.total_cells
        ));
        // An incomplete grid has nothing final to check against.
        return Ok(out);
    }
    if opts.check {
        if let Err(disagreement) = check_analytic_agreement(report) {
            return Err(CliError::Counterexample(format!("{out}\n{disagreement}")));
        }
    }
    Ok(out)
}

/// The campaign command's flag surface, bundled.
struct CampaignOpts {
    reps: u64,
    json: Option<String>,
    threads: usize,
    checkpoint: Option<String>,
    checkpoint_every: u64,
    resume: bool,
    halt_after: Option<usize>,
    watchdog_ms: Option<u64>,
    chaos: ChaosPlan,
}

/// The serialized form of a campaign report (`campaign --json`).
/// Owned fields: the vendored serde derive does not support generics.
#[derive(serde::Serialize)]
struct CampaignJson {
    result: tt_fault::CampaignResult,
    supervision: tt_fault::SupervisionSummary,
}

fn campaign(opts: CampaignOpts) -> Result<String, CliError> {
    let classes = sec8_classes(4);
    let base_seed = 2_007;
    // Injected hangs would spin forever without a deadline; an explicit
    // watchdog always wins, otherwise chaos hangs get a 1 s default.
    let watchdog = opts
        .watchdog_ms
        .map(Duration::from_millis)
        .or_else(|| (opts.chaos.hang_per_mille > 0).then(|| Duration::from_millis(1_000)));
    let supervised = SupervisedCampaign {
        classes: &classes,
        n: 4,
        reps: opts.reps,
        base_seed,
        config: SupervisorConfig {
            threads: opts.threads,
            watchdog,
            checkpoint_every: opts.checkpoint_every as usize,
            checkpoint_path: opts.checkpoint.as_ref().map(PathBuf::from),
            halt_after: opts.halt_after,
            ..SupervisorConfig::default()
        },
    };
    let outcome = if opts.resume {
        let path = opts
            .checkpoint
            .as_ref()
            .expect("the parser rejects --resume without --checkpoint");
        let cp = tt_fault::read_json(Path::new(path))
            .map_err(|e| internal(format!("reading checkpoint {path}: {e}")))?;
        supervised.run_resumed(&opts.chaos, &cp).map_err(|e| {
            if e.kind() == std::io::ErrorKind::InvalidInput {
                usage(format!("checkpoint {path}: {e}"))
            } else {
                internal(e.to_string())
            }
        })?
    } else {
        supervised
            .run(&opts.chaos)
            .map_err(|e| internal(format!("writing checkpoint: {e}")))?
    };
    let result = &outcome.result;
    let quarantined = outcome.supervision.quarantined.len();
    let mut out = format!(
        "Sec. 8 campaign: {} classes x {} = {} injections; {} completed, {} quarantined; \
         all passed: {}\n\n",
        classes.len(),
        opts.reps,
        classes.len() as u64 * opts.reps,
        result.total(),
        quarantined,
        result.all_passed()
    );
    let mut t = Table::new(vec!["Class", "Passed", "Total"]);
    for (label, passed, total) in result.summary() {
        t.row(vec![label, passed.to_string(), total.to_string()]);
    }
    out.push_str(&t.render());
    out.push('\n');
    out.push_str(&render_supervision_summary(&outcome.supervision));
    if outcome.halted {
        out.push_str("\nhalted early; resume with --resume --checkpoint PATH\n");
    }
    if let Some(path) = &opts.json {
        let body = serde_json::to_string_pretty(&CampaignJson {
            result: result.clone(),
            supervision: outcome.supervision.clone(),
        })
        .map_err(|e| internal(e.to_string()))?;
        std::fs::write(path, body).map_err(|e| internal(format!("writing {path}: {e}")))?;
        out.push_str(&format!("\nwrote per-experiment outcomes to {path}\n"));
    }
    // Quarantined experiments are reported, not fatal (the campaign ran
    // them as far as the supervision policy allows); a *completed*
    // experiment that failed its oracle is a real counterexample.
    if !result.all_passed() {
        return Err(CliError::Counterexample(out));
    }
    Ok(out)
}

/// The explore command's flag surface, bundled.
struct ExploreOpts {
    protocol: tt_fault::ProtocolUnderTest,
    nodes: usize,
    rounds: u64,
    penalty: u64,
    reward: u64,
    seed: u64,
    budget: u64,
    max_faults: usize,
    random: bool,
    corpus: Option<String>,
    corpus_out: Option<String>,
    repro: Option<String>,
    json: Option<String>,
    checkpoint: Option<String>,
    checkpoint_every: u64,
    resume: bool,
}

fn explore_cmd(opts: ExploreOpts) -> Result<String, CliError> {
    use tt_fault::explore::{
        load_corpus, no_extra_oracle, save_schedule, ExploreConfig, Explorer, Strategy,
    };
    use tt_fault::{write_json_atomic, ExploreCheckpoint};
    let cli_cfg = ExploreConfig {
        protocol: opts.protocol,
        n: opts.nodes,
        rounds: opts.rounds,
        penalty_threshold: opts.penalty,
        reward_threshold: opts.reward,
        max_faults: opts.max_faults,
        budget: opts.budget,
        seed: opts.seed,
        strategy: if opts.random {
            Strategy::Random
        } else {
            Strategy::CoverageGuided
        },
    };
    let seeds: Vec<_> = match &opts.corpus {
        Some(dir) => load_corpus(std::path::Path::new(dir))
            .map_err(|e| internal(format!("loading corpus {dir}: {e}")))?
            .into_iter()
            .map(|(_, s)| s)
            .collect(),
        None => Vec::new(),
    };
    let started = std::time::Instant::now();
    // A resumed session carries its own parameters, coverage set, and RNG
    // position; command-line exploration flags apply only to fresh runs.
    let (mut session, cfg) = if opts.resume {
        let path = opts
            .checkpoint
            .as_ref()
            .expect("the parser rejects --resume without --checkpoint");
        let cp: ExploreCheckpoint = tt_fault::read_json(Path::new(path))
            .map_err(|e| internal(format!("reading checkpoint {path}: {e}")))?;
        let cfg = cp.cfg.clone();
        let session =
            Explorer::from_checkpoint(&cp).map_err(|e| usage(format!("checkpoint {path}: {e}")))?;
        (session, cfg)
    } else {
        (Explorer::new(&cli_cfg, &seeds), cli_cfg)
    };
    loop {
        let stepped = session.step(&no_extra_oracle);
        if let Some(path) = &opts.checkpoint {
            let boundary =
                opts.checkpoint_every > 0 && session.executed() % opts.checkpoint_every.max(1) == 0;
            // Snapshot on every interval boundary and once at the end, so
            // `--resume` always finds the final state on disk.
            if boundary || !stepped {
                write_json_atomic(Path::new(path), &session.checkpoint())
                    .map_err(|e| internal(format!("writing checkpoint {path}: {e}")))?;
            }
        }
        if !stepped {
            break;
        }
    }
    let report = session.into_report();
    let elapsed = started.elapsed().as_secs_f64();
    let mut out = render_explore_summary(&cfg, &report, elapsed);
    if let Some(dir) = &opts.corpus_out {
        let dir = std::path::Path::new(dir);
        for s in &report.corpus {
            save_schedule(dir, "sched", s).map_err(|e| internal(format!("writing corpus: {e}")))?;
        }
        out.push_str(&format!(
            "\nwrote {} coverage-discovering schedules to {}\n",
            report.corpus.len(),
            dir.display()
        ));
    }
    if let Some(dir) = &opts.repro {
        let dir = std::path::Path::new(dir);
        for cx in &report.counterexamples {
            let path = save_schedule(dir, "repro", &cx.shrunk)
                .map_err(|e| internal(format!("writing repro: {e}")))?;
            out.push_str(&format!(
                "\nwrote shrunk reproducer to {}\n",
                path.display()
            ));
        }
    }
    if let Some(path) = &opts.json {
        let body = serde_json::to_string_pretty(&report).map_err(|e| internal(e.to_string()))?;
        std::fs::write(path, body).map_err(|e| internal(format!("writing {path}: {e}")))?;
        out.push_str(&format!("\nwrote full report to {path}\n"));
    }
    if !report.counterexamples.is_empty() {
        return Err(CliError::Counterexample(out));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulate_crash_reports_isolation() {
        let out = run(Command::Simulate {
            nodes: 4,
            rounds: 40,
            penalty: 3,
            reward: 100,
            seed: 0,
            timeline: true,
            faults: vec![FaultSpec::Crash { node: 3, round: 12 }],
            record: None,
        })
        .unwrap();
        assert!(out.contains("ISOLATED"), "{out}");
        assert!(out.contains("isolated N3"), "{out}");
        assert!(out.contains("0 violations"), "{out}");
        assert!(out.contains("round |"), "timeline shown: {out}");
    }

    #[test]
    fn simulate_validates_fault_targets() {
        let e = run(Command::Simulate {
            nodes: 4,
            rounds: 10,
            penalty: 3,
            reward: 10,
            seed: 0,
            timeline: false,
            faults: vec![FaultSpec::Crash { node: 9, round: 1 }],
            record: None,
        })
        .unwrap_err();
        assert!(e.to_string().contains("exceeds cluster size"));
        assert_eq!(e.exit_code(), 2, "bad flag values are usage errors");
    }

    #[test]
    fn exit_codes_follow_the_documented_taxonomy() {
        assert_eq!(CliError::Usage("x".into()).exit_code(), 2);
        assert_eq!(CliError::Counterexample("x".into()).exit_code(), 1);
        assert_eq!(CliError::Internal("x".into()).exit_code(), 101);
    }

    #[test]
    fn replay_missing_trace_is_an_internal_error() {
        let e = run(Command::Replay {
            trace: "/nonexistent/ttdiag-no-such-trace.json".into(),
            nodes: 4,
            rounds: 10,
            penalty: 3,
            reward: 100,
            timeline: false,
        })
        .unwrap_err();
        assert_eq!(e.exit_code(), 101, "I/O failures are internal errors: {e}");
    }

    #[test]
    fn tune_commands_render() {
        let auto = run(Command::Tune {
            domain: "automotive".into(),
        })
        .unwrap();
        assert!(auto.contains("P = 197"), "{auto}");
        let aero = run(Command::Tune {
            domain: "aerospace".into(),
        })
        .unwrap();
        assert!(aero.contains("P = 17"), "{aero}");
    }

    #[test]
    fn unknown_domains_are_usage_errors_in_both_commands() {
        for cmd in [
            Command::Tune {
                domain: "maritime".into(),
            },
            Command::Isolation {
                domain: "maritime".into(),
            },
        ] {
            let e = run(cmd).unwrap_err();
            assert_eq!(e.exit_code(), 2, "{e}");
            assert!(e.to_string().contains("unknown domain"), "{e}");
        }
    }

    /// A one-cell sweep small enough for a unit test.
    fn tiny_sweep_cmd() -> Command {
        Command::TuneSweep {
            config: SweepConfig {
                nodes: vec![4],
                rounds: vec![32],
                penalty_thresholds: vec![1],
                reward_thresholds: vec![4],
                criticalities: vec![1],
                rates_per_hour: vec![72_000.0],
                intermittent_periods: vec![0],
                experiments: 32,
                batch_size: 16,
                base_seed: 11,
            },
            json: None,
            csv_dir: None,
            check: false,
            checkpoint: None,
            resume: false,
            halt_after: None,
        }
    }

    #[test]
    fn tune_sweep_renders_and_exports() {
        let dir = std::env::temp_dir().join("ttdiag_cli_test_sweep");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let json = dir.join("sweep.json");
        let Command::TuneSweep { config, .. } = tiny_sweep_cmd() else {
            unreachable!()
        };
        let out = run(Command::TuneSweep {
            config,
            json: Some(json.to_string_lossy().into_owned()),
            csv_dir: Some(dir.to_string_lossy().into_owned()),
            check: false,
            checkpoint: None,
            resume: false,
            halt_after: None,
        })
        .unwrap();
        assert!(out.contains("tune sweep: 1 cells"), "{out}");
        let report: tt_analysis::SweepReport =
            serde_json::from_str(&std::fs::read_to_string(&json).unwrap()).unwrap();
        assert_eq!(report.cells.len(), 1);
        for table in ["fig3_boundary.csv", "isolation.csv", "safety_curves.csv"] {
            assert!(dir.join(table).is_file(), "{table} written");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tune_sweep_rejects_invalid_grids_as_usage_errors() {
        let Command::TuneSweep { mut config, .. } = tiny_sweep_cmd() else {
            unreachable!()
        };
        config.nodes = vec![3];
        let e = run(Command::TuneSweep {
            config,
            json: None,
            csv_dir: None,
            check: false,
            checkpoint: None,
            resume: false,
            halt_after: None,
        })
        .unwrap_err();
        assert_eq!(e.exit_code(), 2, "{e}");
    }

    #[test]
    fn tune_sweep_halt_then_resume_matches_uninterrupted() {
        let dir = std::env::temp_dir().join("ttdiag_cli_test_sweep_halt");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let cp = dir.join("cp.json");
        let full_json = dir.join("full.json");
        let resumed_json = dir.join("resumed.json");
        let Command::TuneSweep { mut config, .. } = tiny_sweep_cmd() else {
            unreachable!()
        };
        config.intermittent_periods = vec![0, 3]; // two cells to halt between
        let uninterrupted = run(Command::TuneSweep {
            config: config.clone(),
            json: Some(full_json.to_string_lossy().into_owned()),
            csv_dir: None,
            check: false,
            checkpoint: None,
            resume: false,
            halt_after: None,
        })
        .unwrap();
        assert!(!uninterrupted.contains("halted"), "{uninterrupted}");
        let halted = run(Command::TuneSweep {
            config: config.clone(),
            json: None,
            csv_dir: None,
            check: false,
            checkpoint: Some(cp.to_string_lossy().into_owned()),
            resume: false,
            halt_after: Some(1),
        })
        .unwrap();
        assert!(halted.contains("halted after 1/2 cells"), "{halted}");
        run(Command::TuneSweep {
            config,
            json: Some(resumed_json.to_string_lossy().into_owned()),
            csv_dir: None,
            check: false,
            checkpoint: Some(cp.to_string_lossy().into_owned()),
            resume: true,
            halt_after: None,
        })
        .unwrap();
        assert_eq!(
            std::fs::read(&full_json).unwrap(),
            std::fs::read(&resumed_json).unwrap(),
            "resumed sweep is byte-identical to the uninterrupted one"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A `Command::Campaign` with every supervision flag at its default.
    fn campaign_cmd(reps: u64) -> Command {
        Command::Campaign {
            reps,
            json: None,
            threads: 1,
            checkpoint: None,
            checkpoint_every: 25,
            resume: false,
            halt_after: None,
            watchdog_ms: None,
            chaos_seed: 0,
            chaos_panic: 0,
            chaos_hang: 0,
            chaos_transient: 0,
        }
    }

    #[test]
    fn campaign_small_run_passes() {
        let out = run(campaign_cmd(1)).unwrap();
        assert!(out.contains("all passed: true"), "{out}");
        assert!(out.contains("supervision: clean run"), "{out}");
    }

    #[test]
    fn campaign_with_injected_panics_completes_and_reports_quarantines() {
        let cmd = Command::Campaign {
            reps: 1,
            json: None,
            threads: 1,
            checkpoint: None,
            checkpoint_every: 25,
            resume: false,
            halt_after: None,
            watchdog_ms: None,
            chaos_seed: 5,
            chaos_panic: 400,
            chaos_hang: 0,
            chaos_transient: 0,
        };
        // Injected panics quarantine some experiments but never poison the
        // pool: every healthy experiment completes and passes, so the
        // campaign still succeeds (exit 0) with a non-empty quarantine
        // section in the report.
        let out = run(cmd).unwrap();
        assert!(out.contains("all passed: true"), "{out}");
        assert!(out.contains("quarantined"), "{out}");
        assert!(out.contains("panic: injected harness panic"), "{out}");
    }

    #[test]
    fn campaign_checkpoint_halt_and_resume_match_uninterrupted() {
        let path = std::env::temp_dir().join("ttdiag_cli_test_campaign_ckpt.json");
        let path_s = path.to_string_lossy().to_string();
        let _ = std::fs::remove_file(&path);
        let halted = Command::Campaign {
            reps: 1,
            json: None,
            threads: 1,
            checkpoint: Some(path_s.clone()),
            checkpoint_every: 1,
            resume: false,
            halt_after: Some(2),
            watchdog_ms: None,
            chaos_seed: 0,
            chaos_panic: 0,
            chaos_hang: 0,
            chaos_transient: 0,
        };
        let out = run(halted).unwrap();
        assert!(out.contains("halted early"), "{out}");
        let resumed = Command::Campaign {
            reps: 1,
            json: None,
            threads: 1,
            checkpoint: Some(path_s.clone()),
            checkpoint_every: 25,
            resume: true,
            halt_after: None,
            watchdog_ms: None,
            chaos_seed: 0,
            chaos_panic: 0,
            chaos_hang: 0,
            chaos_transient: 0,
        };
        let resumed_out = run(resumed).unwrap();
        assert!(resumed_out.contains("all passed: true"), "{resumed_out}");
        let direct = run(campaign_cmd(1)).unwrap();
        // The resumed run reaches the same verdict and per-class results as
        // an uninterrupted one (modulo the resume banner line).
        for line in direct.lines().filter(|l| l.contains('|')) {
            assert!(resumed_out.contains(line), "missing {line:?}");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn help_prints_usage() {
        let out = run(Command::Help).unwrap();
        assert!(out.contains("ttdiag simulate"));
    }

    #[test]
    fn record_and_replay_roundtrip() {
        let dir = std::env::temp_dir().join("ttdiag_cli_test_trace.json");
        let path = dir.to_string_lossy().to_string();
        let rec = run(Command::Simulate {
            nodes: 4,
            rounds: 30,
            penalty: 1_000,
            reward: 1_000,
            seed: 5,
            timeline: false,
            faults: vec![FaultSpec::Burst {
                len: 8,
                round: 10,
                slot: 0,
            }],
            record: Some(path.clone()),
        })
        .unwrap();
        assert!(rec.contains("recorded fault trace"), "{rec}");
        let rep = run(Command::Replay {
            trace: path.clone(),
            nodes: 4,
            rounds: 30,
            penalty: 1,
            reward: 1_000,
            timeline: false,
        })
        .unwrap();
        // Re-tuned replay: P = 1 isolates the burst victims this time.
        assert!(rep.contains("ISOLATED"), "{rep}");
        assert!(rep.contains("Faulty slots on the bus: 8"), "{rep}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn metrics_json_round_trips() {
        let out = run(Command::Metrics {
            nodes: 4,
            rounds: 20,
            penalty: 3,
            reward: 100,
            seed: 0,
            faults: vec![FaultSpec::Crash { node: 3, round: 5 }],
            format: MetricsFormat::Json,
            out: None,
            record: None,
        })
        .unwrap();
        let report: tt_sim::MetricsReport = serde_json::from_str(&out).unwrap();
        assert!(!report.events.is_empty());
        let isolations = report
            .events
            .iter()
            .filter(|e| e.kind() == "isolation")
            .count();
        // All four nodes isolate N3 — the benign-faulty node still runs its
        // job and convicts itself from the consistent diagnostic matrix.
        assert_eq!(isolations, 4, "every node isolates the crashed one");
        assert!(report
            .counters
            .iter()
            .any(|c| c.name == "fault.injected.benign" && c.value > 0));
    }

    #[test]
    fn metrics_csv_and_summary_render() {
        let csv = run(Command::Metrics {
            nodes: 4,
            rounds: 20,
            penalty: 3,
            reward: 100,
            seed: 0,
            faults: vec![FaultSpec::Crash { node: 3, round: 5 }],
            format: MetricsFormat::Csv,
            out: None,
            record: None,
        })
        .unwrap();
        assert!(csv.starts_with(tt_analysis::EVENTS_CSV_HEADER), "{csv}");
        assert!(csv.contains("isolation,"), "{csv}");
        let summary = run(Command::Metrics {
            nodes: 4,
            rounds: 20,
            penalty: 3,
            reward: 100,
            seed: 0,
            faults: vec![FaultSpec::Crash { node: 3, round: 5 }],
            format: MetricsFormat::Summary,
            out: None,
            record: None,
        })
        .unwrap();
        assert!(summary.contains("sim.rounds"), "{summary}");
        assert!(summary.contains("isolation"), "{summary}");
    }

    #[test]
    fn metrics_out_writes_file() {
        let path = std::env::temp_dir().join("ttdiag_cli_test_metrics.json");
        let path = path.to_string_lossy().to_string();
        let msg = run(Command::Metrics {
            nodes: 4,
            rounds: 10,
            penalty: 197,
            reward: 1_000_000,
            seed: 0,
            faults: vec![],
            format: MetricsFormat::Json,
            out: Some(path.clone()),
            record: None,
        })
        .unwrap();
        assert!(msg.contains("wrote"), "{msg}");
        let body = std::fs::read_to_string(&path).unwrap();
        let report: tt_sim::MetricsReport = serde_json::from_str(&body).unwrap();
        assert!(report.counters.iter().any(|c| c.name == "sim.rounds"));
        let _ = std::fs::remove_file(path);
    }

    /// The canonical intermittent-fault scenario used throughout the
    /// observability docs: node 2 blinks every other round from round 4,
    /// node 3 suffers a single benign fault in round 5.
    fn canonical_trace_cmd(format: TraceFormat, out: Option<String>) -> Command {
        Command::Trace {
            nodes: 4,
            rounds: 16,
            penalty: 3,
            reward: 2,
            seed: 0,
            faults: vec![
                FaultSpec::Intermittent {
                    node: 2,
                    round: 4,
                    period: 2,
                },
                FaultSpec::Burst {
                    len: 1,
                    round: 5,
                    slot: 2,
                },
            ],
            format,
            out,
        }
    }

    #[test]
    fn trace_summary_reports_bounded_latency() {
        let out = run(canonical_trace_cmd(TraceFormat::Summary, None)).unwrap();
        assert!(out.contains("N2"), "{out}");
        assert!(out.contains("within the 4-round bound"), "{out}");
    }

    #[test]
    fn trace_jsonl_emits_one_span_per_line() {
        let out = run(canonical_trace_cmd(TraceFormat::Jsonl, None)).unwrap();
        assert!(!out.is_empty());
        for line in out.lines() {
            let v: serde::Value = serde_json::from_str(line).unwrap();
            assert!(v.as_map().is_some(), "span line is an object: {line}");
        }
    }

    #[test]
    fn trace_perfetto_writes_chrome_trace_json() {
        let path = std::env::temp_dir().join("ttdiag_cli_test_perfetto.json");
        let path = path.to_string_lossy().to_string();
        let msg = run(canonical_trace_cmd(
            TraceFormat::Perfetto,
            Some(path.clone()),
        ))
        .unwrap();
        assert!(msg.contains("wrote"), "{msg}");
        let body = std::fs::read_to_string(&path).unwrap();
        let v: serde::Value = serde_json::from_str(&body).unwrap();
        let map = v.as_map().unwrap();
        let events = serde::Value::get_field(map, "traceEvents")
            .and_then(|e| e.as_seq())
            .unwrap();
        assert!(!events.is_empty(), "trace has events");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn metrics_record_roundtrips_through_replay() {
        let path = std::env::temp_dir().join("ttdiag_cli_test_metrics_trace.json");
        let path = path.to_string_lossy().to_string();
        let out = run(Command::Metrics {
            nodes: 4,
            rounds: 30,
            penalty: 1_000,
            reward: 1_000,
            seed: 5,
            faults: vec![FaultSpec::Burst {
                len: 8,
                round: 10,
                slot: 0,
            }],
            format: MetricsFormat::Summary,
            out: None,
            record: Some(path.clone()),
        })
        .unwrap();
        assert!(out.contains("recorded fault trace"), "{out}");
        let rep = run(Command::Replay {
            trace: path.clone(),
            nodes: 4,
            rounds: 30,
            penalty: 1,
            reward: 1_000,
            timeline: false,
        })
        .unwrap();
        assert!(rep.contains("Faulty slots on the bus: 8"), "{rep}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn scenario_fault_spec_builds() {
        let out = run(Command::Simulate {
            nodes: 4,
            rounds: 8,
            penalty: 1_000,
            reward: 1_000,
            seed: 0,
            timeline: false,
            faults: vec![FaultSpec::Scenario {
                name: "blinking".into(),
            }],
            record: None,
        })
        .unwrap();
        // The first 10 ms burst corrupts 16 slots.
        assert!(out.contains("Faulty slots on the bus: 16"), "{out}");
    }

    #[test]
    fn explore_small_budget_finds_no_violations() {
        let corpus_out = std::env::temp_dir().join("ttdiag_cli_test_explore_corpus");
        let json = std::env::temp_dir().join("ttdiag_cli_test_explore.json");
        let out = run(Command::Explore {
            protocol: tt_fault::ProtocolUnderTest::Diag,
            nodes: 4,
            rounds: 24,
            penalty: 3,
            reward: 2,
            seed: 0xD1A6_05E5,
            budget: 15,
            max_faults: 6,
            random: false,
            corpus: None,
            corpus_out: Some(corpus_out.to_string_lossy().to_string()),
            repro: None,
            json: Some(json.to_string_lossy().to_string()),
            checkpoint: None,
            checkpoint_every: 25,
            resume: false,
        })
        .unwrap();
        assert!(out.contains("unique state fingerprints"), "{out}");
        assert!(out.contains("violations found"), "{out}");
        // The corpus directory holds one JSON schedule per coverage discovery
        // and the report round-trips through serde.
        let n_schedules = std::fs::read_dir(&corpus_out).unwrap().count();
        assert!(n_schedules > 0);
        let report: tt_fault::ExploreReport =
            serde_json::from_str(&std::fs::read_to_string(&json).unwrap()).unwrap();
        assert_eq!(report.executed, 15);
        assert!(report.counterexamples.is_empty());
        std::fs::remove_dir_all(&corpus_out).ok();
        std::fs::remove_file(&json).ok();
    }
}
