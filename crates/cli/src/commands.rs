//! Execution of the parsed `ttdiag` commands.

use tt_analysis::{
    aerospace_setup, automotive_setup, availability_of, group_chains, measure_time_to_isolation,
    render_explore_summary, render_provenance_summary, spans_to_jsonl, spans_to_perfetto, tune,
    LatencySummary, Table, LATENCY_BOUND_ROUNDS,
};
use tt_core::properties::{check_diag_cluster, checkable_rounds};
use tt_core::{DiagJob, ProtocolConfig};
use tt_fault::{
    run_campaign, sec8_classes, AsymmetricDisturbance, Burst, ContinuousFault, DisturbanceNode,
    IntermittentFault, RandomNoise, TransientScenario,
};
use tt_sim::{timeline, ClusterBuilder, Nanos, NodeId, RecordingTraceSink, RoundIndex, TraceMode};

use crate::args::{Command, FaultSpec, MetricsFormat, TraceFormat};

/// Runs a command, returning the text to print or an error message.
pub fn run(cmd: Command) -> Result<String, String> {
    match cmd {
        Command::Help => Ok(crate::args::USAGE.to_string()),
        Command::Tune { domain } => Ok(tune_report(&domain)),
        Command::Isolation { domain } => Ok(isolation_report(&domain)),
        Command::Campaign { reps, json } => campaign(reps, json),
        Command::Simulate {
            nodes,
            rounds,
            penalty,
            reward,
            seed,
            timeline,
            faults,
            record,
        } => {
            let pipeline = Box::new(build_pipeline(&faults, nodes, seed)?);
            simulate(nodes, rounds, penalty, reward, timeline, pipeline, record)
        }
        Command::Metrics {
            nodes,
            rounds,
            penalty,
            reward,
            seed,
            faults,
            format,
            out,
            record,
        } => {
            let pipeline = build_pipeline(&faults, nodes, seed)?;
            metrics(
                nodes, rounds, penalty, reward, pipeline, format, out, record,
            )
        }
        Command::Trace {
            nodes,
            rounds,
            penalty,
            reward,
            seed,
            faults,
            format,
            out,
        } => {
            let pipeline = Box::new(build_pipeline(&faults, nodes, seed)?);
            trace(nodes, rounds, penalty, reward, pipeline, format, out)
        }
        Command::Explore {
            nodes,
            rounds,
            penalty,
            reward,
            seed,
            budget,
            max_faults,
            random,
            corpus,
            corpus_out,
            repro,
            json,
        } => explore_cmd(
            nodes, rounds, penalty, reward, seed, budget, max_faults, random, corpus, corpus_out,
            repro, json,
        ),
        Command::Replay {
            trace,
            nodes,
            rounds,
            penalty,
            reward,
            timeline,
        } => {
            let body =
                std::fs::read_to_string(&trace).map_err(|e| format!("reading {trace}: {e}"))?;
            let restored: tt_sim::Trace =
                serde_json::from_str(&body).map_err(|e| format!("parsing {trace}: {e}"))?;
            let pipeline = Box::new(restored.replay_pipeline());
            simulate(nodes, rounds, penalty, reward, timeline, pipeline, None)
        }
    }
}

fn round_for(n: usize) -> Nanos {
    Nanos::from_nanos(2_500_000 - (2_500_000 % n as u64))
}

fn build_pipeline(faults: &[FaultSpec], n: usize, seed: u64) -> Result<DisturbanceNode, String> {
    let sched = tt_sim::CommunicationSchedule::new(n, round_for(n)).map_err(|e| e.to_string())?;
    let mut node = DisturbanceNode::new(seed);
    for f in faults {
        match f {
            FaultSpec::Crash { node: id, round } => {
                if *id as usize > n {
                    return Err(format!("crash: node {id} exceeds cluster size {n}"));
                }
                node.push(ContinuousFault::new(
                    NodeId::new(*id),
                    RoundIndex::new(*round),
                ));
            }
            FaultSpec::Intermittent {
                node: id,
                round,
                period,
            } => {
                if *id as usize > n {
                    return Err(format!("intermittent: node {id} exceeds cluster size {n}"));
                }
                node.push(IntermittentFault::new(
                    NodeId::new(*id),
                    RoundIndex::new(*round),
                    *period,
                ));
            }
            FaultSpec::Burst { len, round, slot } => {
                if *slot >= n {
                    return Err(format!("burst: slot {slot} exceeds cluster size {n}"));
                }
                node.push(Burst::in_round(RoundIndex::new(*round), *slot, *len, n));
            }
            FaultSpec::Noise { p } => node.push(RandomNoise::everywhere(*p)),
            FaultSpec::Asym {
                node: id,
                round,
                detected_by,
            } => {
                if *id as usize > n || detected_by.iter().any(|&r| r >= n) {
                    return Err("asym: node or receiver out of range".into());
                }
                node.push(AsymmetricDisturbance::new(
                    NodeId::new(*id),
                    RoundIndex::new(*round),
                    1,
                    tt_fault::malicious::AsymmetricTarget::Fixed(detected_by.clone()),
                ));
            }
            FaultSpec::Scenario { name } => {
                let scenario = match name.as_str() {
                    "blinking" => TransientScenario::blinking_light(),
                    _ => TransientScenario::lightning_bolt(),
                };
                node.push(scenario.to_disturbance(&sched, Nanos::ZERO));
            }
        }
    }
    Ok(node)
}

fn simulate(
    n: usize,
    rounds: u64,
    penalty: u64,
    reward: u64,
    show_timeline: bool,
    pipeline: Box<dyn tt_sim::FaultPipeline>,
    record: Option<String>,
) -> Result<String, String> {
    let config = ProtocolConfig::builder(n)
        .penalty_threshold(penalty)
        .reward_threshold(reward)
        .build()
        .map_err(|e| e.to_string())?;
    let mut cluster = ClusterBuilder::new(n)
        .round_length(round_for(n))
        .trace_mode(TraceMode::Anomalies)
        .build_with_jobs(|id| Box::new(DiagJob::new(id, config.clone())), pipeline);
    cluster.run_rounds(rounds);

    let mut out = format!(
        "{n}-node cluster, {rounds} rounds of {}, P = {penalty}, R = {reward}\n\n",
        round_for(n)
    );
    let trace = cluster.trace();
    out.push_str(&format!(
        "Faulty slots on the bus: {}\n",
        trace.records().len()
    ));
    if show_timeline && !trace.records().is_empty() {
        out.push('\n');
        out.push_str(&timeline::render_anomalies(trace, n, 1));
        out.push('\n');
    }
    let diag: &DiagJob = cluster.job_as(NodeId::new(1)).map_err(|e| e.to_string())?;
    let mut t = Table::new(vec!["Node", "Active", "Penalty", "Reward", "Availability"]);
    let avail = availability_of(diag, rounds);
    for id in NodeId::all(n) {
        t.row(vec![
            id.to_string(),
            if diag.is_active(id) {
                "yes"
            } else {
                "ISOLATED"
            }
            .to_string(),
            diag.penalty(id).to_string(),
            diag.reward(id).to_string(),
            format!("{:.1}%", avail.nodes[id.index()].fraction() * 100.0),
        ]);
    }
    out.push_str(&t.render());
    for iso in diag.isolations() {
        out.push_str(&format!(
            "\nisolated {} at round {} (fault diagnosed in round {})",
            iso.node,
            iso.decided_at.as_u64(),
            iso.diagnosed.as_u64()
        ));
    }
    // Run the Theorem 1 oracles over the run as a free sanity check.
    let all: Vec<NodeId> = NodeId::all(n).collect();
    let report = check_diag_cluster(&cluster, &all, checkable_rounds(rounds, 3));
    out.push_str(&format!(
        "\n\nTheorem 1 oracles: {} rounds checked, {} out of hypothesis, {} violations\n",
        report.rounds_checked,
        report.rounds_out_of_hypothesis,
        report.violations.len()
    ));
    if let Some(path) = record {
        out.push_str(&record_fault_trace(cluster.trace(), &path)?);
    }
    Ok(out)
}

/// Serializes a cluster's fault trace to `path` — the single implementation
/// behind both `simulate --record` and `metrics --record`.
fn record_fault_trace(trace: &tt_sim::Trace, path: &str) -> Result<String, String> {
    let body = serde_json::to_string_pretty(trace).map_err(|e| e.to_string())?;
    std::fs::write(path, body).map_err(|e| format!("writing {path}: {e}"))?;
    Ok(format!(
        "\nrecorded fault trace to {path} (replay with `ttdiag replay {path}`)\n"
    ))
}

#[allow(clippy::too_many_arguments)]
fn metrics(
    n: usize,
    rounds: u64,
    penalty: u64,
    reward: u64,
    pipeline: DisturbanceNode,
    format: MetricsFormat,
    out: Option<String>,
    record: Option<String>,
) -> Result<String, String> {
    let sink = std::sync::Arc::new(tt_sim::RecordingSink::new());
    // Both sides of the bus report into the same sink: the disturbance node
    // counts injected effects, the cluster records protocol-level events.
    let pipeline = Box::new(pipeline.with_metrics(sink.clone()));
    let config = ProtocolConfig::builder(n)
        .penalty_threshold(penalty)
        .reward_threshold(reward)
        .build()
        .map_err(|e| e.to_string())?;
    let mut builder = ClusterBuilder::new(n)
        .round_length(round_for(n))
        .metrics_sink(sink.clone());
    if record.is_some() {
        // Recording needs the bus-level fault trace alongside the metrics.
        builder = builder.trace_mode(TraceMode::Anomalies);
    }
    let mut cluster =
        builder.build_with_jobs(|id| Box::new(DiagJob::new(id, config.clone())), pipeline);
    cluster.run_rounds(rounds);

    let report = sink.report();
    let mut body = match format {
        MetricsFormat::Json => serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?,
        MetricsFormat::Csv => tt_analysis::events_to_csv(&report.events),
        MetricsFormat::Summary => tt_analysis::render_summary(&report),
    };
    let recorded = match record {
        Some(path) => record_fault_trace(cluster.trace(), &path)?,
        None => String::new(),
    };
    match out {
        Some(path) => {
            std::fs::write(&path, &body).map_err(|e| format!("writing {path}: {e}"))?;
            Ok(format!(
                "wrote {} events ({} bytes) to {path}\n{recorded}",
                report.events.len(),
                body.len()
            ))
        }
        None => {
            body.push_str(&recorded);
            Ok(body)
        }
    }
}

fn trace(
    n: usize,
    rounds: u64,
    penalty: u64,
    reward: u64,
    pipeline: Box<dyn tt_sim::FaultPipeline>,
    format: TraceFormat,
    out: Option<String>,
) -> Result<String, String> {
    let sink = std::sync::Arc::new(RecordingTraceSink::new());
    let config = ProtocolConfig::builder(n)
        .penalty_threshold(penalty)
        .reward_threshold(reward)
        .build()
        .map_err(|e| e.to_string())?;
    let mut cluster = ClusterBuilder::new(n)
        .round_length(round_for(n))
        .trace_sink(sink.clone())
        .build_with_jobs(|id| Box::new(DiagJob::new(id, config.clone())), pipeline);
    cluster.run_rounds(rounds);

    let spans = sink.spans();
    let body = match format {
        TraceFormat::Jsonl => spans_to_jsonl(&spans),
        TraceFormat::Perfetto => spans_to_perfetto(&spans, round_for(n)),
        TraceFormat::Summary => {
            let chains = group_chains(&spans);
            let mut s = render_provenance_summary(&chains);
            match LatencySummary::check_bound(&chains, LATENCY_BOUND_ROUNDS) {
                Ok(_) => s.push_str(&format!(
                    "\nall diagnosed faults within the {LATENCY_BOUND_ROUNDS}-round bound\n"
                )),
                Err(violations) => {
                    return Err(format!(
                        "{s}\nlatency bound of {LATENCY_BOUND_ROUNDS} rounds violated for {} \
                         chain(s)",
                        violations.len()
                    ))
                }
            }
            s
        }
    };
    match out {
        Some(path) => {
            std::fs::write(&path, &body).map_err(|e| format!("writing {path}: {e}"))?;
            Ok(format!(
                "wrote {} spans ({} bytes) to {path}\n",
                spans.len(),
                body.len()
            ))
        }
        None => Ok(body),
    }
}

fn tune_report(domain: &str) -> String {
    let setup = if domain == "aerospace" {
        aerospace_setup()
    } else {
        automotive_setup()
    };
    let tuned = tune(&setup);
    let mut out = format!("{} tuning (paper Table 2 procedure):\n\n", tuned.domain);
    let mut t = Table::new(vec![
        "Criticality class",
        "Tolerated outage",
        "Penalty budget",
        "s_i",
    ]);
    for row in &tuned.rows {
        t.row(vec![
            row.class.name.clone(),
            format!("{}", row.class.tolerated_outage),
            row.penalty_budget.to_string(),
            row.criticality.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nP = {}   R = {:.0e}   T = {}\n",
        tuned.penalty_threshold, tuned.reward_threshold as f64, tuned.round
    ));
    out
}

fn isolation_report(domain: &str) -> String {
    let (setup, scenario, paper) = if domain == "aerospace" {
        (
            aerospace_setup(),
            TransientScenario::lightning_bolt(),
            vec!["0.205 s"],
        )
    } else {
        (
            automotive_setup(),
            TransientScenario::blinking_light(),
            vec!["0.518 s", "4.595 s", "24.475 s"],
        )
    };
    let tuned = tune(&setup);
    let mut out = format!(
        "{} — time to incorrect isolation under \"{}\":\n\n",
        tuned.domain,
        scenario.name()
    );
    let mut t = Table::new(vec!["Class", "s_i", "Measured", "Paper"]);
    for (row, paper_val) in tuned.rows.iter().zip(paper) {
        let m = measure_time_to_isolation(
            &scenario,
            row.criticality,
            tuned.penalty_threshold,
            tuned.reward_threshold,
            tuned.round,
            setup.n_nodes,
        );
        t.row(vec![
            row.class.name.clone(),
            row.criticality.to_string(),
            m.time_to_isolation
                .map(|d| format!("{:.3} s", d.as_secs_f64()))
                .unwrap_or_else(|| "never".into()),
            paper_val.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out
}

fn campaign(reps: u64, json: Option<String>) -> Result<String, String> {
    let classes = sec8_classes(4);
    let result = run_campaign(&classes, 4, reps, 2_007);
    let mut out = format!(
        "Sec. 8 campaign: {} classes x {reps} = {} injections; all passed: {}\n\n",
        classes.len(),
        result.total(),
        result.all_passed()
    );
    let mut t = Table::new(vec!["Class", "Passed", "Total"]);
    for (label, passed, total) in result.summary() {
        t.row(vec![label, passed.to_string(), total.to_string()]);
    }
    out.push_str(&t.render());
    if let Some(path) = json {
        let body = serde_json::to_string_pretty(&result).map_err(|e| e.to_string())?;
        std::fs::write(&path, body).map_err(|e| format!("writing {path}: {e}"))?;
        out.push_str(&format!("\nwrote per-experiment outcomes to {path}\n"));
    }
    if !result.all_passed() {
        return Err(out);
    }
    Ok(out)
}

#[allow(clippy::too_many_arguments)] // mirrors the flat flag surface of the CLI
fn explore_cmd(
    nodes: usize,
    rounds: u64,
    penalty: u64,
    reward: u64,
    seed: u64,
    budget: u64,
    max_faults: usize,
    random: bool,
    corpus: Option<String>,
    corpus_out: Option<String>,
    repro: Option<String>,
    json: Option<String>,
) -> Result<String, String> {
    use tt_fault::explore::{
        explore_with, load_corpus, no_extra_oracle, save_schedule, ExploreConfig, Strategy,
    };
    let cfg = ExploreConfig {
        n: nodes,
        rounds,
        penalty_threshold: penalty,
        reward_threshold: reward,
        max_faults,
        budget,
        seed,
        strategy: if random {
            Strategy::Random
        } else {
            Strategy::CoverageGuided
        },
    };
    let seeds: Vec<_> = match &corpus {
        Some(dir) => load_corpus(std::path::Path::new(dir))
            .map_err(|e| format!("loading corpus {dir}: {e}"))?
            .into_iter()
            .map(|(_, s)| s)
            .collect(),
        None => Vec::new(),
    };
    let started = std::time::Instant::now();
    let report = explore_with(&cfg, &seeds, &no_extra_oracle);
    let elapsed = started.elapsed().as_secs_f64();
    let mut out = render_explore_summary(&cfg, &report, elapsed);
    if let Some(dir) = &corpus_out {
        let dir = std::path::Path::new(dir);
        for s in &report.corpus {
            save_schedule(dir, "sched", s).map_err(|e| format!("writing corpus: {e}"))?;
        }
        out.push_str(&format!(
            "\nwrote {} coverage-discovering schedules to {}\n",
            report.corpus.len(),
            dir.display()
        ));
    }
    if let Some(dir) = &repro {
        let dir = std::path::Path::new(dir);
        for cx in &report.counterexamples {
            let path = save_schedule(dir, "repro", &cx.shrunk)
                .map_err(|e| format!("writing repro: {e}"))?;
            out.push_str(&format!(
                "\nwrote shrunk reproducer to {}\n",
                path.display()
            ));
        }
    }
    if let Some(path) = &json {
        let body = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
        std::fs::write(path, body).map_err(|e| format!("writing {path}: {e}"))?;
        out.push_str(&format!("\nwrote full report to {path}\n"));
    }
    if !report.counterexamples.is_empty() {
        return Err(out);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulate_crash_reports_isolation() {
        let out = run(Command::Simulate {
            nodes: 4,
            rounds: 40,
            penalty: 3,
            reward: 100,
            seed: 0,
            timeline: true,
            faults: vec![FaultSpec::Crash { node: 3, round: 12 }],
            record: None,
        })
        .unwrap();
        assert!(out.contains("ISOLATED"), "{out}");
        assert!(out.contains("isolated N3"), "{out}");
        assert!(out.contains("0 violations"), "{out}");
        assert!(out.contains("round |"), "timeline shown: {out}");
    }

    #[test]
    fn simulate_validates_fault_targets() {
        let e = run(Command::Simulate {
            nodes: 4,
            rounds: 10,
            penalty: 3,
            reward: 10,
            seed: 0,
            timeline: false,
            faults: vec![FaultSpec::Crash { node: 9, round: 1 }],
            record: None,
        })
        .unwrap_err();
        assert!(e.contains("exceeds cluster size"));
    }

    #[test]
    fn tune_commands_render() {
        let auto = run(Command::Tune {
            domain: "automotive".into(),
        })
        .unwrap();
        assert!(auto.contains("P = 197"), "{auto}");
        let aero = run(Command::Tune {
            domain: "aerospace".into(),
        })
        .unwrap();
        assert!(aero.contains("P = 17"), "{aero}");
    }

    #[test]
    fn campaign_small_run_passes() {
        let out = run(Command::Campaign {
            reps: 1,
            json: None,
        })
        .unwrap();
        assert!(out.contains("all passed: true"), "{out}");
    }

    #[test]
    fn help_prints_usage() {
        let out = run(Command::Help).unwrap();
        assert!(out.contains("ttdiag simulate"));
    }

    #[test]
    fn record_and_replay_roundtrip() {
        let dir = std::env::temp_dir().join("ttdiag_cli_test_trace.json");
        let path = dir.to_string_lossy().to_string();
        let rec = run(Command::Simulate {
            nodes: 4,
            rounds: 30,
            penalty: 1_000,
            reward: 1_000,
            seed: 5,
            timeline: false,
            faults: vec![FaultSpec::Burst {
                len: 8,
                round: 10,
                slot: 0,
            }],
            record: Some(path.clone()),
        })
        .unwrap();
        assert!(rec.contains("recorded fault trace"), "{rec}");
        let rep = run(Command::Replay {
            trace: path.clone(),
            nodes: 4,
            rounds: 30,
            penalty: 1,
            reward: 1_000,
            timeline: false,
        })
        .unwrap();
        // Re-tuned replay: P = 1 isolates the burst victims this time.
        assert!(rep.contains("ISOLATED"), "{rep}");
        assert!(rep.contains("Faulty slots on the bus: 8"), "{rep}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn metrics_json_round_trips() {
        let out = run(Command::Metrics {
            nodes: 4,
            rounds: 20,
            penalty: 3,
            reward: 100,
            seed: 0,
            faults: vec![FaultSpec::Crash { node: 3, round: 5 }],
            format: MetricsFormat::Json,
            out: None,
            record: None,
        })
        .unwrap();
        let report: tt_sim::MetricsReport = serde_json::from_str(&out).unwrap();
        assert!(!report.events.is_empty());
        let isolations = report
            .events
            .iter()
            .filter(|e| e.kind() == "isolation")
            .count();
        // All four nodes isolate N3 — the benign-faulty node still runs its
        // job and convicts itself from the consistent diagnostic matrix.
        assert_eq!(isolations, 4, "every node isolates the crashed one");
        assert!(report
            .counters
            .iter()
            .any(|c| c.name == "fault.injected.benign" && c.value > 0));
    }

    #[test]
    fn metrics_csv_and_summary_render() {
        let csv = run(Command::Metrics {
            nodes: 4,
            rounds: 20,
            penalty: 3,
            reward: 100,
            seed: 0,
            faults: vec![FaultSpec::Crash { node: 3, round: 5 }],
            format: MetricsFormat::Csv,
            out: None,
            record: None,
        })
        .unwrap();
        assert!(csv.starts_with(tt_analysis::EVENTS_CSV_HEADER), "{csv}");
        assert!(csv.contains("isolation,"), "{csv}");
        let summary = run(Command::Metrics {
            nodes: 4,
            rounds: 20,
            penalty: 3,
            reward: 100,
            seed: 0,
            faults: vec![FaultSpec::Crash { node: 3, round: 5 }],
            format: MetricsFormat::Summary,
            out: None,
            record: None,
        })
        .unwrap();
        assert!(summary.contains("sim.rounds"), "{summary}");
        assert!(summary.contains("isolation"), "{summary}");
    }

    #[test]
    fn metrics_out_writes_file() {
        let path = std::env::temp_dir().join("ttdiag_cli_test_metrics.json");
        let path = path.to_string_lossy().to_string();
        let msg = run(Command::Metrics {
            nodes: 4,
            rounds: 10,
            penalty: 197,
            reward: 1_000_000,
            seed: 0,
            faults: vec![],
            format: MetricsFormat::Json,
            out: Some(path.clone()),
            record: None,
        })
        .unwrap();
        assert!(msg.contains("wrote"), "{msg}");
        let body = std::fs::read_to_string(&path).unwrap();
        let report: tt_sim::MetricsReport = serde_json::from_str(&body).unwrap();
        assert!(report.counters.iter().any(|c| c.name == "sim.rounds"));
        let _ = std::fs::remove_file(path);
    }

    /// The canonical intermittent-fault scenario used throughout the
    /// observability docs: node 2 blinks every other round from round 4,
    /// node 3 suffers a single benign fault in round 5.
    fn canonical_trace_cmd(format: TraceFormat, out: Option<String>) -> Command {
        Command::Trace {
            nodes: 4,
            rounds: 16,
            penalty: 3,
            reward: 2,
            seed: 0,
            faults: vec![
                FaultSpec::Intermittent {
                    node: 2,
                    round: 4,
                    period: 2,
                },
                FaultSpec::Burst {
                    len: 1,
                    round: 5,
                    slot: 2,
                },
            ],
            format,
            out,
        }
    }

    #[test]
    fn trace_summary_reports_bounded_latency() {
        let out = run(canonical_trace_cmd(TraceFormat::Summary, None)).unwrap();
        assert!(out.contains("N2"), "{out}");
        assert!(out.contains("within the 4-round bound"), "{out}");
    }

    #[test]
    fn trace_jsonl_emits_one_span_per_line() {
        let out = run(canonical_trace_cmd(TraceFormat::Jsonl, None)).unwrap();
        assert!(!out.is_empty());
        for line in out.lines() {
            let v: serde::Value = serde_json::from_str(line).unwrap();
            assert!(v.as_map().is_some(), "span line is an object: {line}");
        }
    }

    #[test]
    fn trace_perfetto_writes_chrome_trace_json() {
        let path = std::env::temp_dir().join("ttdiag_cli_test_perfetto.json");
        let path = path.to_string_lossy().to_string();
        let msg = run(canonical_trace_cmd(
            TraceFormat::Perfetto,
            Some(path.clone()),
        ))
        .unwrap();
        assert!(msg.contains("wrote"), "{msg}");
        let body = std::fs::read_to_string(&path).unwrap();
        let v: serde::Value = serde_json::from_str(&body).unwrap();
        let map = v.as_map().unwrap();
        let events = serde::Value::get_field(map, "traceEvents")
            .and_then(|e| e.as_seq())
            .unwrap();
        assert!(!events.is_empty(), "trace has events");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn metrics_record_roundtrips_through_replay() {
        let path = std::env::temp_dir().join("ttdiag_cli_test_metrics_trace.json");
        let path = path.to_string_lossy().to_string();
        let out = run(Command::Metrics {
            nodes: 4,
            rounds: 30,
            penalty: 1_000,
            reward: 1_000,
            seed: 5,
            faults: vec![FaultSpec::Burst {
                len: 8,
                round: 10,
                slot: 0,
            }],
            format: MetricsFormat::Summary,
            out: None,
            record: Some(path.clone()),
        })
        .unwrap();
        assert!(out.contains("recorded fault trace"), "{out}");
        let rep = run(Command::Replay {
            trace: path.clone(),
            nodes: 4,
            rounds: 30,
            penalty: 1,
            reward: 1_000,
            timeline: false,
        })
        .unwrap();
        assert!(rep.contains("Faulty slots on the bus: 8"), "{rep}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn scenario_fault_spec_builds() {
        let out = run(Command::Simulate {
            nodes: 4,
            rounds: 8,
            penalty: 1_000,
            reward: 1_000,
            seed: 0,
            timeline: false,
            faults: vec![FaultSpec::Scenario {
                name: "blinking".into(),
            }],
            record: None,
        })
        .unwrap();
        // The first 10 ms burst corrupts 16 slots.
        assert!(out.contains("Faulty slots on the bus: 16"), "{out}");
    }

    #[test]
    fn explore_small_budget_finds_no_violations() {
        let corpus_out = std::env::temp_dir().join("ttdiag_cli_test_explore_corpus");
        let json = std::env::temp_dir().join("ttdiag_cli_test_explore.json");
        let out = run(Command::Explore {
            nodes: 4,
            rounds: 24,
            penalty: 3,
            reward: 2,
            seed: 0xD1A6_05E5,
            budget: 15,
            max_faults: 6,
            random: false,
            corpus: None,
            corpus_out: Some(corpus_out.to_string_lossy().to_string()),
            repro: None,
            json: Some(json.to_string_lossy().to_string()),
        })
        .unwrap();
        assert!(out.contains("unique state fingerprints"), "{out}");
        assert!(out.contains("violations found"), "{out}");
        // The corpus directory holds one JSON schedule per coverage discovery
        // and the report round-trips through serde.
        let n_schedules = std::fs::read_dir(&corpus_out).unwrap().count();
        assert!(n_schedules > 0);
        let report: tt_fault::ExploreReport =
            serde_json::from_str(&std::fs::read_to_string(&json).unwrap()).unwrap();
        assert_eq!(report.executed, 15);
        assert!(report.counterexamples.is_empty());
        std::fs::remove_dir_all(&corpus_out).ok();
        std::fs::remove_file(&json).ok();
    }
}
