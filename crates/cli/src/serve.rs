//! `ttdiag serve` and its socket clients (`submit`, `job`, `watch`,
//! `tail`, `shutdown`).
//!
//! ## Wire protocol
//!
//! The service listens on a Unix domain socket and speaks newline-
//! delimited JSON: each request is one [`Request`] value on one line,
//! answered by one `{"ok": ...}` or `{"err": "..."}` line. A `Subscribe`
//! request upgrades the connection into a one-way feed: after the ack the
//! server streams one `Framed` event per line and finishes with a single
//! `{"end": {...SubscriberStats...}}` line carrying the subscription's
//! delivered/dropped accounting, so a client can verify it kept up.
//!
//! Backpressure is the hub's: each subscriber owns a bounded server-side
//! ring, a slow reader loses *oldest* frames (counted in `dropped`, and
//! observable client-side as `seq` gaps) and never stalls the simulation
//! hot path or the other subscribers.

use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use serde::{Deserialize, Serialize, Value};
use tt_analysis::LiveJobView;
use tt_bench::{DiagService, HostFingerprint, JobSpec, JobStatus};
use tt_sim::{Framed, ProgressEvent, StreamHub};

use crate::args::{FeedName, JobOp};
use crate::commands::CliError;

fn usage(msg: impl Into<String>) -> CliError {
    CliError::Usage(msg.into())
}

fn internal(msg: impl Into<String>) -> CliError {
    CliError::Internal(msg.into())
}

/// One request line of the admin-socket protocol.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Enqueue a job.
    Submit {
        /// The job to run.
        spec: JobSpec,
    },
    /// Status of one job.
    Status {
        /// The job id.
        job: u64,
    },
    /// Status of every known job.
    List,
    /// Halt a job at its next chunk boundary (checkpointed, resumable).
    Halt {
        /// The job id.
        job: u64,
    },
    /// Requeue a halted job from its checkpoint.
    Resume {
        /// The job id.
        job: u64,
    },
    /// Upgrade this connection into a live feed of framed events.
    Subscribe {
        /// Feed name: `metrics`, `spans` or `progress`.
        feed: String,
        /// Subscriber ring capacity (bounded server-side buffering).
        capacity: u64,
        /// Stop after this many frames (0 = until server shutdown).
        max: u64,
    },
    /// Halt all jobs (checkpointed), then stop the service.
    Shutdown,
}

/// The payload of `ok` responses to `Submit`/`Status`/`Halt`/`Resume`:
/// the job snapshot plus the serving host's fingerprint, so throughput
/// numbers in the live feeds can be attributed to a machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobReply {
    /// The job snapshot (including its checkpoint sequence number).
    pub job: JobStatus,
    /// The serving host.
    pub host: HostFingerprint,
}

fn ok_line(value: Value) -> String {
    let wrapped = Value::Map(vec![("ok".to_string(), value)]);
    serde_json::to_string(&wrapped).expect("value serialization is infallible")
}

fn err_line(msg: &str) -> String {
    let wrapped = Value::Map(vec![("err".to_string(), Value::Str(msg.to_string()))]);
    serde_json::to_string(&wrapped).expect("value serialization is infallible")
}

// ---------------------------------------------------------------- server

/// Connection-handler threads spawned by the accept loop.
struct ConnSet {
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// Runs the service until a `Shutdown` request arrives. Returns the final
/// summary printed on exit.
pub fn serve(socket: &str, state: &str) -> Result<String, CliError> {
    let path = Path::new(socket);
    // A leftover socket file from a dead server refuses `bind`; detect
    // staleness by connecting — only an unconnectable file is removed.
    if path.exists() && UnixStream::connect(path).is_err() {
        std::fs::remove_file(path).map_err(|e| usage(format!("stale socket {socket}: {e}")))?;
    }
    let listener = UnixListener::bind(path)
        .map_err(|e| usage(format!("cannot bind admin socket {socket}: {e}")))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| internal(format!("socket setup: {e}")))?;
    let service = DiagService::start(Path::new(state))
        .map_err(|e| internal(format!("cannot create state dir {state}: {e}")))?;
    let shutdown_req = Arc::new(AtomicBool::new(false));
    let stop_subs = Arc::new(AtomicBool::new(false));
    let conns = Arc::new(ConnSet {
        handles: Mutex::new(Vec::new()),
    });
    while !shutdown_req.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                let service = Arc::clone(&service);
                let shutdown_req = Arc::clone(&shutdown_req);
                let stop_subs = Arc::clone(&stop_subs);
                let handle = std::thread::spawn(move || {
                    // A vanished client is not a server error.
                    let _ = handle_conn(stream, &service, &shutdown_req, &stop_subs);
                });
                conns
                    .handles
                    .lock()
                    .expect("connection registry")
                    .push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => return Err(internal(format!("accept on {socket}: {e}"))),
        }
    }
    // Ordered teardown: park/halt jobs and drain the executor first so the
    // final progress events reach the hubs, then let subscribers flush
    // their rings and end-stats lines, then reap the connection threads.
    service.shutdown_wait();
    stop_subs.store(true, Ordering::Relaxed);
    let handles = std::mem::take(&mut *conns.handles.lock().expect("connection registry"));
    for h in handles {
        let _ = h.join();
    }
    let _ = std::fs::remove_file(path);
    let jobs = service.list();
    Ok(format!(
        "serve: clean shutdown, {} job(s) known, state in {state}",
        jobs.len()
    ))
}

fn handle_conn(
    stream: UnixStream,
    service: &Arc<DiagService>,
    shutdown_req: &AtomicBool,
    stop_subs: &AtomicBool,
) -> io::Result<()> {
    // Bounded reads: an idle connection must notice shutdown, or joining
    // its thread would hang the server teardown.
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut line = String::new();
    'requests: loop {
        line.clear();
        loop {
            match reader.read_line(&mut line) {
                Ok(0) => return Ok(()),
                Ok(_) => break,
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    // `read_line` keeps any partial line in `line`; just
                    // poll again unless the server is going away.
                    if shutdown_req.load(Ordering::Relaxed) || stop_subs.load(Ordering::Relaxed) {
                        return Ok(());
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        if line.trim().is_empty() {
            continue 'requests;
        }
        let request: Request = match serde_json::from_str(line.trim()) {
            Ok(r) => r,
            Err(e) => {
                writeln!(writer, "{}", err_line(&format!("bad request: {e}")))?;
                writer.flush()?;
                continue;
            }
        };
        let job_reply = |job: JobStatus| {
            ok_line(
                JobReply {
                    job,
                    host: service.host().clone(),
                }
                .to_value(),
            )
        };
        match request {
            Request::Submit { spec } => {
                let reply = match service.submit(spec) {
                    Ok(job) => job_reply(job),
                    Err(e) => err_line(&e),
                };
                writeln!(writer, "{reply}")?;
            }
            Request::Status { job } => {
                let reply = match service.status(job) {
                    Some(job) => job_reply(job),
                    None => err_line(&format!("unknown job {job}")),
                };
                writeln!(writer, "{reply}")?;
            }
            Request::List => {
                let jobs = Value::Seq(service.list().iter().map(Serialize::to_value).collect());
                writeln!(
                    writer,
                    "{}",
                    ok_line(Value::Map(vec![
                        ("jobs".to_string(), jobs),
                        ("host".to_string(), service.host().to_value()),
                    ]))
                )?;
            }
            Request::Halt { job } => {
                let reply = match service.halt(job) {
                    Ok(job) => job_reply(job),
                    Err(e) => err_line(&e),
                };
                writeln!(writer, "{reply}")?;
            }
            Request::Resume { job } => {
                let reply = match service.resume(job) {
                    Ok(job) => job_reply(job),
                    Err(e) => err_line(&e),
                };
                writeln!(writer, "{reply}")?;
            }
            Request::Subscribe {
                feed,
                capacity,
                max,
            } => {
                let capacity = capacity.clamp(1, 1 << 20) as usize;
                let hubs = service.hubs();
                match feed.as_str() {
                    "metrics" => {
                        ack_subscribe(&mut writer, &feed)?;
                        return stream_frames(&hubs.metrics, writer, capacity, max, stop_subs);
                    }
                    "spans" => {
                        ack_subscribe(&mut writer, &feed)?;
                        return stream_frames(&hubs.spans, writer, capacity, max, stop_subs);
                    }
                    "progress" => {
                        ack_subscribe(&mut writer, &feed)?;
                        return stream_frames(&hubs.progress, writer, capacity, max, stop_subs);
                    }
                    other => {
                        writeln!(writer, "{}", err_line(&format!("unknown feed {other:?}")))?;
                    }
                }
            }
            Request::Shutdown => {
                writeln!(
                    writer,
                    "{}",
                    ok_line(Value::Map(vec![(
                        "shutdown".to_string(),
                        Value::Bool(true)
                    )]))
                )?;
                writer.flush()?;
                shutdown_req.store(true, Ordering::Relaxed);
                return Ok(());
            }
        }
        writer.flush()?;
    }
}

fn ack_subscribe(writer: &mut BufWriter<UnixStream>, feed: &str) -> io::Result<()> {
    writeln!(
        writer,
        "{}",
        ok_line(Value::Map(vec![(
            "subscribed".to_string(),
            Value::Str(feed.to_string())
        )]))
    )?;
    writer.flush()
}

/// Streams framed events from `hub` until `max` frames were delivered, the
/// client disconnects, or the server shuts down — then emits the final
/// `{"end": ...}` accounting line.
fn stream_frames<E: Clone + Serialize>(
    hub: &Arc<StreamHub<E>>,
    mut writer: BufWriter<UnixStream>,
    capacity: usize,
    max: u64,
    stop_subs: &AtomicBool,
) -> io::Result<()> {
    let sub = hub.subscribe(capacity);
    let mut delivered = 0u64;
    'feed: loop {
        let stopping = stop_subs.load(Ordering::Relaxed);
        // On shutdown, one final non-blocking drain flushes whatever the
        // teardown published before subscribers were stopped.
        let frames = if stopping {
            sub.drain(usize::MAX)
        } else {
            sub.recv_timeout(Duration::from_millis(100), 512)
        };
        for frame in &frames {
            let json = serde_json::to_string(frame)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            writeln!(writer, "{json}")?;
            delivered += 1;
            if max > 0 && delivered >= max {
                break 'feed;
            }
        }
        writer.flush()?;
        if stopping {
            break;
        }
    }
    let end = Value::Map(vec![("end".to_string(), sub.stats().to_value())]);
    writeln!(
        writer,
        "{}",
        serde_json::to_string(&end).expect("value serialization is infallible")
    )?;
    writer.flush()
}

// ---------------------------------------------------------------- client

/// A line-oriented client connection to the admin socket.
struct Client {
    reader: BufReader<UnixStream>,
    writer: BufWriter<UnixStream>,
}

impl Client {
    /// Connects, mapping failures (bad path, dead server) to usage errors:
    /// the socket argument, like any other argument, named something that
    /// does not exist.
    fn connect(socket: &str) -> Result<Client, CliError> {
        let stream = UnixStream::connect(socket)
            .map_err(|e| usage(format!("cannot connect to ttdiag serve at {socket}: {e}")))?;
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| internal(format!("socket clone: {e}")))?,
        );
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    fn send(&mut self, request: &Request) -> Result<(), CliError> {
        let line =
            serde_json::to_string(request).map_err(|e| internal(format!("encode request: {e}")))?;
        writeln!(self.writer, "{line}")
            .and_then(|()| self.writer.flush())
            .map_err(|e| internal(format!("send request: {e}")))
    }

    /// Reads one line; `None` at EOF (server went away).
    fn read_line(&mut self) -> Result<Option<String>, CliError> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => Ok(None),
            Ok(_) => Ok(Some(line.trim_end().to_string())),
            Err(e) => Err(internal(format!("read response: {e}"))),
        }
    }

    /// Reads one `{"ok": ...}` / `{"err": ...}` response line. Server-side
    /// rejections surface as usage errors: the request named an unknown
    /// job, an unknown feed, or an invalid spec.
    fn read_response(&mut self) -> Result<Value, CliError> {
        let line = self
            .read_line()?
            .ok_or_else(|| internal("server closed the connection mid-request"))?;
        parse_response(&line)
    }
}

/// Splits a response line into its `ok` payload, or the `err` as a usage
/// failure.
fn parse_response(line: &str) -> Result<Value, CliError> {
    let value: Value =
        serde_json::from_str(line).map_err(|e| internal(format!("bad response line: {e}")))?;
    let map = value
        .as_map()
        .ok_or_else(|| internal(format!("malformed response: {line}")))?;
    if let Some(err) = Value::get_field(map, "err") {
        return Err(usage(
            err.as_str()
                .unwrap_or("unspecified server error")
                .to_string(),
        ));
    }
    Value::get_field(map, "ok")
        .cloned()
        .ok_or_else(|| internal(format!("malformed response: {line}")))
}

fn job_reply_of(value: &Value) -> Result<JobReply, CliError> {
    JobReply::from_value(value).map_err(|e| internal(format!("malformed job reply: {e}")))
}

fn render_job(status: &JobStatus) -> String {
    let mut line = format!(
        "job {} [{}] {}: {}/{} settled",
        status.id,
        status.kind,
        status.state.label(),
        status.completed,
        status.total
    );
    if status.quarantined > 0 {
        line.push_str(&format!(", {} quarantined", status.quarantined));
    }
    line.push_str(&format!(", checkpoint #{}", status.checkpoint_seq));
    if status.halt_requested {
        line.push_str(", halt requested");
    }
    if !status.detail.is_empty() {
        line.push_str(&format!(" — {}", status.detail));
    }
    line
}

/// `ttdiag submit`: enqueue a job, print its id, state, and the host.
pub fn submit(socket: &str, spec: JobSpec) -> Result<String, CliError> {
    let mut client = Client::connect(socket)?;
    client.send(&Request::Submit { spec })?;
    let reply = job_reply_of(&client.read_response()?)?;
    Ok(format!(
        "{}\nhost: {} cores, {}",
        render_job(&reply.job),
        reply.host.logical_cores,
        reply.host.cpu_model
    ))
}

/// `ttdiag job list|status|halt|resume`.
pub fn job(socket: &str, op: JobOp) -> Result<String, CliError> {
    let mut client = Client::connect(socket)?;
    let request = match op {
        JobOp::List => Request::List,
        JobOp::Status(id) => Request::Status { job: id },
        JobOp::Halt(id) => Request::Halt { job: id },
        JobOp::Resume(id) => Request::Resume { job: id },
    };
    client.send(&request)?;
    let payload = client.read_response()?;
    if let JobOp::List = op {
        let map = payload
            .as_map()
            .ok_or_else(|| internal("malformed list reply"))?;
        let jobs = Value::get_field(map, "jobs")
            .and_then(Value::as_seq)
            .ok_or_else(|| internal("malformed list reply"))?;
        if jobs.is_empty() {
            return Ok("no jobs".to_string());
        }
        let lines = jobs
            .iter()
            .map(|j| {
                JobStatus::from_value(j)
                    .map(|s| render_job(&s))
                    .map_err(|e| internal(format!("malformed job entry: {e}")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        return Ok(lines.join("\n"));
    }
    Ok(render_job(&job_reply_of(&payload)?.job))
}

/// `ttdiag shutdown`.
pub fn shutdown(socket: &str) -> Result<String, CliError> {
    let mut client = Client::connect(socket)?;
    client.send(&Request::Shutdown)?;
    client.read_response()?;
    Ok("service shutting down".to_string())
}

/// `ttdiag watch`: follow the progress feed and redraw a one-line summary
/// per update until the job reaches a terminal or parked state. A failed
/// job is a counterexample (exit 1), matching `campaign`.
pub fn watch(socket: &str, job: u64) -> Result<String, CliError> {
    // Subscribe before the status probe: any terminal transition after the
    // probe is then guaranteed to appear in the stream.
    let mut feed = Client::connect(socket)?;
    feed.send(&Request::Subscribe {
        feed: "progress".to_string(),
        capacity: 4096,
        max: 0,
    })?;
    feed.read_response()?;
    let mut view = LiveJobView::new(job);
    {
        let mut probe = Client::connect(socket)?;
        probe.send(&Request::Status { job })?;
        let reply = job_reply_of(&probe.read_response()?)?;
        let status = reply.job;
        view.kind = status.kind.clone();
        view.completed = status.completed;
        view.total = status.total;
        view.quarantined = status.quarantined;
        view.checkpoint_seq = status.checkpoint_seq;
        match status.state {
            tt_bench::JobState::Done => view.passed = Some(status.passed),
            tt_bench::JobState::Failed => view.passed = Some(false),
            tt_bench::JobState::Halted => view.halted = true,
            _ => {}
        }
    }
    while !view.done() {
        let Some(line) = feed.read_line()? else {
            return Err(internal("server closed the progress feed mid-watch"));
        };
        if line.starts_with("{\"end\"") {
            return Err(internal("progress feed ended before the job finished"));
        }
        let frame: Framed<ProgressEvent> = serde_json::from_str(&line)
            .map_err(|e| internal(format!("malformed progress frame: {e}")))?;
        if view.apply(&frame) {
            println!("{}", view.render_line());
        }
    }
    let summary = view.render_line();
    if view.passed == Some(false) {
        return Err(CliError::Counterexample(summary));
    }
    Ok(summary)
}

/// `ttdiag tail`: raw JSONL pass-through of one feed; returns the final
/// `{"end": ...}` accounting line as the command output.
pub fn tail(socket: &str, feed: FeedName, max: u64, capacity: u64) -> Result<String, CliError> {
    let mut client = Client::connect(socket)?;
    client.send(&Request::Subscribe {
        feed: feed.as_str().to_string(),
        capacity,
        max,
    })?;
    client.read_response()?;
    loop {
        let Some(line) = client.read_line()? else {
            return Err(internal("server closed the feed without an end line"));
        };
        if line.starts_with("{\"end\"") {
            return Ok(line);
        }
        println!("{line}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_lines_round_trip() {
        let requests = [
            Request::Submit {
                spec: JobSpec::TuneSweep { chunk: 4 },
            },
            Request::Status { job: 3 },
            Request::List,
            Request::Halt { job: 1 },
            Request::Resume { job: 1 },
            Request::Subscribe {
                feed: "progress".to_string(),
                capacity: 64,
                max: 10,
            },
            Request::Shutdown,
        ];
        for request in requests {
            let line = serde_json::to_string(&request).unwrap();
            let back: Request = serde_json::from_str(&line).unwrap();
            assert_eq!(back, request);
        }
    }

    #[test]
    fn response_frames_split_ok_and_err() {
        let ok = ok_line(Value::Bool(true));
        assert_eq!(parse_response(&ok).unwrap(), Value::Bool(true));
        let err = err_line("unknown job 9");
        match parse_response(&err) {
            Err(CliError::Usage(msg)) => assert_eq!(msg, "unknown job 9"),
            other => panic!("expected usage error, got {other:?}"),
        }
    }
}
