//! Hand-rolled argument parsing for the `ttdiag` CLI (no dependencies).
//!
//! Grammar:
//!
//! ```text
//! ttdiag simulate [--nodes N] [--rounds R] [--penalty P] [--reward R]
//!                 [--seed S] [--timeline] [--fault SPEC]...
//! ttdiag tune [automotive|aerospace]
//! ttdiag isolation [automotive|aerospace]
//! ttdiag campaign [--reps N] [--threads T] [--json PATH]
//! ttdiag help
//! ```
//!
//! Fault specs:
//!
//! ```text
//! crash:NODE@ROUND          permanent benign sender fault
//! intermittent:NODE@ROUND/PERIOD  recurring benign sender fault
//! burst:LEN@ROUND.SLOT      bus burst of LEN slots from ROUND/SLOT
//! noise:P                   benign noise with per-slot probability P
//! asym:NODE@ROUND:R1,R2     asymmetric fault detected by receivers R1,R2
//! scenario:blinking         the Table 3 blinking-light scenario
//! scenario:lightning        the Table 3 lightning-bolt scenario
//! ```

use std::fmt;

/// A parsed fault specification.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultSpec {
    /// `crash:NODE@ROUND`
    Crash {
        /// 1-based node id.
        node: u32,
        /// Round the crash begins.
        round: u64,
    },
    /// `intermittent:NODE@ROUND/PERIOD`
    Intermittent {
        /// 1-based node id.
        node: u32,
        /// First faulty round.
        round: u64,
        /// The fault recurs every `period` rounds.
        period: u64,
    },
    /// `burst:LEN@ROUND.SLOT`
    Burst {
        /// Length in slots.
        len: u64,
        /// Starting round.
        round: u64,
        /// Starting slot position (0-based).
        slot: usize,
    },
    /// `noise:P`
    Noise {
        /// Per-slot corruption probability.
        p: f64,
    },
    /// `asym:NODE@ROUND:R1,R2,...`
    Asym {
        /// 1-based sender id.
        node: u32,
        /// The affected round.
        round: u64,
        /// 0-based receiver indices that miss the frame.
        detected_by: Vec<usize>,
    },
    /// `scenario:blinking` / `scenario:lightning`
    Scenario {
        /// `"blinking"` or `"lightning"`.
        name: String,
    },
}

/// The parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run a cluster and report the protocol's view.
    Simulate {
        /// Cluster size.
        nodes: usize,
        /// Rounds to simulate.
        rounds: u64,
        /// Penalty threshold `P`.
        penalty: u64,
        /// Reward threshold `R`.
        reward: u64,
        /// Seed for randomized disturbances.
        seed: u64,
        /// Print the fault timeline.
        timeline: bool,
        /// Injected faults.
        faults: Vec<FaultSpec>,
        /// Write the fault trace (with replayable effects) to this path.
        record: Option<String>,
    },
    /// Replay a recorded fault trace against a (possibly re-tuned) cluster.
    Replay {
        /// Path to a JSON trace written by `simulate --record`.
        trace: String,
        /// Cluster size.
        nodes: usize,
        /// Rounds to simulate.
        rounds: u64,
        /// Penalty threshold `P`.
        penalty: u64,
        /// Reward threshold `R`.
        reward: u64,
        /// Print the fault timeline.
        timeline: bool,
    },
    /// Print the Table 2 tuning for a domain.
    Tune {
        /// `"automotive"` or `"aerospace"` (validated at execution, so
        /// unknown domains share one error path with `isolation`).
        domain: String,
    },
    /// Run a campaign-scale Monte Carlo tuning sweep over a
    /// `(N, P, R, s, λ)` grid.
    TuneSweep {
        /// The grid and sampling parameters.
        config: tt_analysis::SweepConfig,
        /// JSON report output path, if any.
        json: Option<String>,
        /// Directory for the CSV table exports (Fig. 3 boundary,
        /// isolation estimators, safety curves), if any.
        csv_dir: Option<String>,
        /// Fail (exit 1) when a measured Fig. 3 boundary disagrees with
        /// the analytic model beyond its Wilson interval.
        check: bool,
        /// Checkpoint file path, if checkpointing is enabled.
        checkpoint: Option<String>,
        /// Resume from the checkpoint (which carries the grid) instead
        /// of starting fresh.
        resume: bool,
        /// Halt (with a checkpoint) after this many newly completed
        /// cells.
        halt_after: Option<u64>,
    },
    /// Print the Table 4 time-to-isolation rows for a domain.
    Isolation {
        /// `"automotive"` or `"aerospace"`.
        domain: String,
    },
    /// Run an instrumented cluster and dump the recorded metrics.
    Metrics {
        /// Cluster size.
        nodes: usize,
        /// Rounds to simulate.
        rounds: u64,
        /// Penalty threshold `P`.
        penalty: u64,
        /// Reward threshold `R`.
        reward: u64,
        /// Seed for randomized disturbances.
        seed: u64,
        /// Injected faults.
        faults: Vec<FaultSpec>,
        /// Output format.
        format: MetricsFormat,
        /// Write the output to this path instead of stdout.
        out: Option<String>,
        /// Write the fault trace (with replayable effects) to this path.
        record: Option<String>,
    },
    /// Run a trace-instrumented cluster and export the provenance spans.
    Trace {
        /// Cluster size.
        nodes: usize,
        /// Rounds to simulate.
        rounds: u64,
        /// Penalty threshold `P`.
        penalty: u64,
        /// Reward threshold `R`.
        reward: u64,
        /// Seed for randomized disturbances.
        seed: u64,
        /// Injected faults.
        faults: Vec<FaultSpec>,
        /// Output format.
        format: TraceFormat,
        /// Write the output to this path instead of stdout.
        out: Option<String>,
    },
    /// Run the Sec. 8 validation campaign under supervision.
    Campaign {
        /// Repetitions per class.
        reps: u64,
        /// JSON output path, if any.
        json: Option<String>,
        /// Supervised worker threads.
        threads: usize,
        /// Checkpoint file path, if checkpointing is enabled.
        checkpoint: Option<String>,
        /// Checkpoint every this many settled experiments.
        checkpoint_every: u64,
        /// Resume from the checkpoint instead of starting fresh.
        resume: bool,
        /// Stop (with a checkpoint) after this many newly settled
        /// experiments.
        halt_after: Option<usize>,
        /// Per-experiment watchdog budget in milliseconds.
        watchdog_ms: Option<u64>,
        /// Seed of the injected harness-fault plan.
        chaos_seed: u64,
        /// Per-mille of experiments whose attempts panic.
        chaos_panic: u16,
        /// Per-mille of experiments whose attempts hang.
        chaos_hang: u16,
        /// Per-mille of experiments whose attempts fail transiently.
        chaos_transient: u16,
    },
    /// Run the coverage-guided fault-schedule explorer.
    Explore {
        /// The protocol variant the explorer drives and checks.
        protocol: tt_fault::ProtocolUnderTest,
        /// Cluster size.
        nodes: usize,
        /// Rounds per explored schedule.
        rounds: u64,
        /// Penalty threshold `P` of explored schedules.
        penalty: u64,
        /// Reward threshold `R` of explored schedules.
        reward: u64,
        /// Generator seed (the run is a pure function of it).
        seed: u64,
        /// Schedule executions to spend.
        budget: u64,
        /// Maximum faults per schedule.
        max_faults: usize,
        /// Use the pure-random baseline generator instead of coverage
        /// guidance.
        random: bool,
        /// Seed-corpus directory to replay before generating.
        corpus: Option<String>,
        /// Directory to write coverage-discovering schedules to.
        corpus_out: Option<String>,
        /// Directory to write shrunk counterexample schedules to.
        repro: Option<String>,
        /// JSON report output path, if any.
        json: Option<String>,
        /// Checkpoint file path, if checkpointing is enabled.
        checkpoint: Option<String>,
        /// Checkpoint every this many executed schedules.
        checkpoint_every: u64,
        /// Resume from the checkpoint (which carries the exploration
        /// parameters) instead of starting fresh.
        resume: bool,
    },
    /// Run the long-lived diagnosis service on a Unix admin socket.
    Serve {
        /// Admin socket path.
        socket: String,
        /// Directory for per-job checkpoints.
        state: String,
    },
    /// Submit a job to a running service and print its id.
    Submit {
        /// Admin socket path.
        socket: String,
        /// The job to enqueue.
        spec: tt_bench::JobSpec,
    },
    /// Query or control jobs on a running service.
    Job {
        /// Admin socket path.
        socket: String,
        /// The operation.
        op: JobOp,
    },
    /// Live one-line progress summary of one job.
    Watch {
        /// Admin socket path.
        socket: String,
        /// The job id to follow.
        job: u64,
    },
    /// Stream one live feed as raw JSONL.
    Tail {
        /// Admin socket path.
        socket: String,
        /// Which feed to subscribe to.
        feed: FeedName,
        /// Stop after this many frames (0 = until server shutdown).
        max: u64,
        /// Subscriber ring capacity (frames buffered server-side).
        capacity: u64,
    },
    /// Ask a running service to halt its jobs, checkpoint, and exit.
    Shutdown {
        /// Admin socket path.
        socket: String,
    },
    /// Run an N-node UDP cluster on loopback threads (`ttdiag net run`).
    NetRun {
        /// Cluster size (one TDMA slot per node).
        nodes: usize,
        /// Rounds to run.
        rounds: u64,
        /// TDMA slot duration in microseconds.
        slot_us: u64,
        /// Reception grace in microseconds (default: half a slot).
        grace_us: Option<u64>,
        /// Penalty threshold `P`.
        penalty: u64,
        /// Reward threshold `R`.
        reward: u64,
        /// Reintegrate an isolated node after this many consecutive
        /// rewards (0 = never reintegrate).
        reintegrate_after: u64,
        /// Chaos seed (the injected loss pattern is a pure function of
        /// seed and topology).
        seed: u64,
        /// Per-mille of frames dropped per directed link.
        drop: u16,
        /// Per-mille of frames duplicated.
        duplicate: u16,
        /// Per-mille of frames held back one round.
        reorder: u16,
        /// Per-mille of frames with one byte flipped.
        corrupt: u16,
        /// Kill `(node, at_round, down_rounds)` mid-run and restart it.
        crash: Option<(u32, u64, u64)>,
        /// Write the full JSON report (with host fingerprint) here.
        json: Option<String>,
        /// Exit 1 unless the run converged and the simulator replay
        /// agrees.
        check: bool,
    },
    /// Run one UDP peer of a multi-process cluster (`ttdiag net node`).
    NetNode {
        /// This peer's 1-based id (slot = id - 1).
        id: u32,
        /// Bind address (default: the own entry of `--peers`).
        bind: Option<String>,
        /// All peer addresses in slot order, comma-separated.
        peers: Vec<String>,
        /// Rounds to run.
        rounds: u64,
        /// TDMA slot duration in microseconds.
        slot_us: u64,
        /// Reception grace in microseconds (default: half a slot).
        grace_us: Option<u64>,
        /// Penalty threshold `P`.
        penalty: u64,
        /// Reward threshold `R`.
        reward: u64,
        /// Reintegrate after this many consecutive rewards (0 = never).
        reintegrate_after: u64,
        /// Epoch delay in milliseconds: all peers must start within this
        /// window for their slot clocks to align.
        start_delay_ms: u64,
        /// Write this node's JSON segment report here.
        json: Option<String>,
    },
    /// Print usage.
    Help,
}

/// A `ttdiag job` operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobOp {
    /// Status of every known job.
    List,
    /// Status of one job.
    Status(u64),
    /// Request a halt (checkpointed, resumable).
    Halt(u64),
    /// Requeue a halted job from its checkpoint.
    Resume(u64),
}

/// A live feed name (`ttdiag tail --feed ...`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeedName {
    /// The `MetricsEvent` feed.
    Metrics,
    /// The `SpanEvent` provenance feed.
    Spans,
    /// The `ProgressEvent` job-lifecycle feed.
    Progress,
}

impl FeedName {
    /// Parses a `--feed` value.
    pub fn parse(s: &str) -> Result<Self, ParseError> {
        match s {
            "metrics" => Ok(FeedName::Metrics),
            "spans" => Ok(FeedName::Spans),
            "progress" => Ok(FeedName::Progress),
            other => err(format!("unknown feed {other:?} (metrics|spans|progress)")),
        }
    }

    /// The wire name of the feed.
    pub fn as_str(self) -> &'static str {
        match self {
            FeedName::Metrics => "metrics",
            FeedName::Spans => "spans",
            FeedName::Progress => "progress",
        }
    }
}

/// Output format of `ttdiag metrics`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MetricsFormat {
    /// The full `MetricsReport` as pretty-printed JSON (default).
    #[default]
    Json,
    /// The event stream as CSV.
    Csv,
    /// Human-readable counter/event-count tables.
    Summary,
}

impl MetricsFormat {
    /// Parses a `--format` value.
    pub fn parse(s: &str) -> Result<Self, ParseError> {
        match s {
            "json" => Ok(MetricsFormat::Json),
            "csv" => Ok(MetricsFormat::Csv),
            "summary" => Ok(MetricsFormat::Summary),
            other => err(format!("unknown format {other:?} (json|csv|summary)")),
        }
    }
}

/// Output format of `ttdiag trace`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceFormat {
    /// Human-readable provenance-chain and latency tables (default).
    #[default]
    Summary,
    /// One span event as JSON per line.
    Jsonl,
    /// Chrome trace-event JSON for Perfetto / `chrome://tracing`.
    Perfetto,
}

impl TraceFormat {
    /// Parses a `--format` value.
    pub fn parse(s: &str) -> Result<Self, ParseError> {
        match s {
            "summary" => Ok(TraceFormat::Summary),
            "jsonl" => Ok(TraceFormat::Jsonl),
            "perfetto" => Ok(TraceFormat::Perfetto),
            other => err(format!("unknown format {other:?} (jsonl|perfetto|summary)")),
        }
    }
}

/// A parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError(msg.into()))
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, ParseError> {
    s.parse()
        .map_err(|_| ParseError(format!("invalid {what}: {s:?}")))
}

/// Parses a comma-separated axis value (`--reward 2,8,24`).
fn parse_list<T: std::str::FromStr>(s: &str, what: &str) -> Result<Vec<T>, ParseError> {
    s.split(',').map(|v| parse_num(v.trim(), what)).collect()
}

/// Parses `NODE@ROUND` into `(node, round)`.
fn parse_at(s: &str, what: &str) -> Result<(u32, u64), ParseError> {
    let (node, round) = s
        .split_once('@')
        .ok_or_else(|| ParseError(format!("{what} must be NODE@ROUND, got {s:?}")))?;
    Ok((parse_num(node, "node")?, parse_num(round, "round")?))
}

/// Parses `NODE@ROUND+DOWN` into `(node, at_round, down_rounds)`.
fn parse_crash(s: &str) -> Result<(u32, u64, u64), ParseError> {
    let (at, down) = s
        .split_once('+')
        .ok_or_else(|| ParseError(format!("--crash must be NODE@ROUND+DOWN, got {s:?}")))?;
    let (node, round) = parse_at(at, "--crash")?;
    let down: u64 = parse_num(down, "down rounds")?;
    if down == 0 {
        return err("--crash needs at least one down round");
    }
    Ok((node, round, down))
}

impl FaultSpec {
    /// Parses one `--fault` value.
    pub fn parse(s: &str) -> Result<FaultSpec, ParseError> {
        let (kind, rest) = s
            .split_once(':')
            .ok_or_else(|| ParseError(format!("fault spec needs KIND:ARGS, got {s:?}")))?;
        match kind {
            "crash" => {
                let (node, round) = parse_at(rest, "crash")?;
                Ok(FaultSpec::Crash { node, round })
            }
            "intermittent" => {
                let (at, period) = rest.rsplit_once('/').ok_or_else(|| {
                    ParseError(format!(
                        "intermittent must be NODE@ROUND/PERIOD, got {rest:?}"
                    ))
                })?;
                let (node, round) = parse_at(at, "intermittent")?;
                let period: u64 = parse_num(period, "period")?;
                if period == 0 {
                    return err("intermittent period must be positive");
                }
                Ok(FaultSpec::Intermittent {
                    node,
                    round,
                    period,
                })
            }
            "burst" => {
                let (len, at) = rest.split_once('@').ok_or_else(|| {
                    ParseError(format!("burst must be LEN@ROUND.SLOT, got {rest:?}"))
                })?;
                let (round, slot) = at.split_once('.').ok_or_else(|| {
                    ParseError(format!("burst must be LEN@ROUND.SLOT, got {rest:?}"))
                })?;
                Ok(FaultSpec::Burst {
                    len: parse_num(len, "burst length")?,
                    round: parse_num(round, "round")?,
                    slot: parse_num(slot, "slot")?,
                })
            }
            "noise" => {
                let p: f64 = parse_num(rest, "noise probability")?;
                if !(0.0..=1.0).contains(&p) {
                    return err(format!("noise probability out of range: {p}"));
                }
                Ok(FaultSpec::Noise { p })
            }
            "asym" => {
                let (at, rxs) = rest.rsplit_once(':').ok_or_else(|| {
                    ParseError(format!("asym must be NODE@ROUND:RX,..., got {rest:?}"))
                })?;
                let (node, round) = parse_at(at, "asym")?;
                let detected_by = rxs
                    .split(',')
                    .map(|r| parse_num(r, "receiver index"))
                    .collect::<Result<Vec<usize>, _>>()?;
                if detected_by.is_empty() {
                    return err("asym needs at least one receiver");
                }
                Ok(FaultSpec::Asym {
                    node,
                    round,
                    detected_by,
                })
            }
            "scenario" => match rest {
                "blinking" | "lightning" => Ok(FaultSpec::Scenario {
                    name: rest.to_string(),
                }),
                other => err(format!("unknown scenario {other:?} (blinking|lightning)")),
            },
            other => err(format!("unknown fault kind {other:?}")),
        }
    }
}

/// Parses the full argument list (without the program name).
pub fn parse(args: &[String]) -> Result<Command, ParseError> {
    let Some(cmd) = args.first() else {
        return Ok(Command::Help);
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "tune" if rest.first().map(String::as_str) == Some("sweep") => {
            let mut config = tt_analysis::SweepConfig::default();
            let mut json = None;
            let mut csv_dir = None;
            let mut check = false;
            let mut checkpoint = None;
            let mut resume = false;
            let mut halt_after = None;
            let mut it = rest[1..].iter();
            while let Some(a) = it.next() {
                let mut val = |name: &str| -> Result<&String, ParseError> {
                    it.next()
                        .ok_or_else(|| ParseError(format!("{name} needs a value")))
                };
                match a.as_str() {
                    "--nodes" => config.nodes = parse_list(val("--nodes")?, "nodes")?,
                    "--rounds" => config.rounds = parse_list(val("--rounds")?, "rounds")?,
                    "--penalty" => {
                        config.penalty_thresholds = parse_list(val("--penalty")?, "penalty")?
                    }
                    "--reward" => {
                        config.reward_thresholds = parse_list(val("--reward")?, "reward")?
                    }
                    "--crit" => config.criticalities = parse_list(val("--crit")?, "criticality")?,
                    "--rate" => config.rates_per_hour = parse_list(val("--rate")?, "rate")?,
                    "--intermittent" => {
                        config.intermittent_periods =
                            parse_list(val("--intermittent")?, "intermittent period")?
                    }
                    "--experiments" => {
                        config.experiments = parse_num(val("--experiments")?, "experiments")?
                    }
                    "--batch" => config.batch_size = parse_num(val("--batch")?, "batch size")?,
                    "--seed" => config.base_seed = parse_num(val("--seed")?, "seed")?,
                    "--json" => json = Some(val("--json")?.clone()),
                    "--csv-dir" => csv_dir = Some(val("--csv-dir")?.clone()),
                    "--check" => check = true,
                    "--checkpoint" => checkpoint = Some(val("--checkpoint")?.clone()),
                    "--resume" => resume = true,
                    "--halt-after" => {
                        halt_after = Some(parse_num(val("--halt-after")?, "halt count")?)
                    }
                    other => return err(format!("unknown tune sweep flag {other:?}")),
                }
            }
            if resume && checkpoint.is_none() {
                return err("--resume needs --checkpoint PATH");
            }
            Ok(Command::TuneSweep {
                config,
                json,
                csv_dir,
                check,
                checkpoint,
                resume,
                halt_after,
            })
        }
        "tune" | "isolation" => {
            // Any domain token parses; `commands::domain_setup` rejects
            // unknown ones so `tune` and `isolation` share one error path.
            let domain = rest.first().cloned().unwrap_or_else(|| "automotive".into());
            if cmd == "tune" {
                Ok(Command::Tune { domain })
            } else {
                Ok(Command::Isolation { domain })
            }
        }
        "campaign" => {
            let mut reps = 100u64;
            let mut json = None;
            let mut threads = 1usize;
            let mut checkpoint = None;
            let mut checkpoint_every = 25u64;
            let mut resume = false;
            let mut halt_after = None;
            let mut watchdog_ms = None;
            let mut chaos_seed = 0u64;
            let mut chaos_panic = 0u16;
            let mut chaos_hang = 0u16;
            let mut chaos_transient = 0u16;
            let mut it = rest.iter();
            while let Some(a) = it.next() {
                let mut val = |name: &str| -> Result<&String, ParseError> {
                    it.next()
                        .ok_or_else(|| ParseError(format!("{name} needs a value")))
                };
                match a.as_str() {
                    "--reps" => reps = parse_num(val("--reps")?, "reps")?,
                    "--json" => json = Some(val("--json")?.clone()),
                    "--threads" => threads = parse_num(val("--threads")?, "threads")?,
                    "--checkpoint" => checkpoint = Some(val("--checkpoint")?.clone()),
                    "--checkpoint-every" => {
                        checkpoint_every =
                            parse_num(val("--checkpoint-every")?, "checkpoint interval")?
                    }
                    "--resume" => resume = true,
                    "--halt-after" => {
                        halt_after = Some(parse_num(val("--halt-after")?, "halt count")?)
                    }
                    "--watchdog-ms" => {
                        watchdog_ms = Some(parse_num(val("--watchdog-ms")?, "watchdog budget")?)
                    }
                    "--chaos-seed" => chaos_seed = parse_num(val("--chaos-seed")?, "chaos seed")?,
                    "--chaos-panic" => {
                        chaos_panic = parse_num(val("--chaos-panic")?, "panic per-mille")?
                    }
                    "--chaos-hang" => {
                        chaos_hang = parse_num(val("--chaos-hang")?, "hang per-mille")?
                    }
                    "--chaos-transient" => {
                        chaos_transient =
                            parse_num(val("--chaos-transient")?, "transient per-mille")?
                    }
                    other => return err(format!("unknown campaign flag {other:?}")),
                }
            }
            if threads == 0 {
                return err("--threads must be positive");
            }
            if resume && checkpoint.is_none() {
                return err("--resume needs --checkpoint PATH");
            }
            if u32::from(chaos_panic) + u32::from(chaos_hang) + u32::from(chaos_transient) > 1000 {
                return err("chaos per-mille rates must sum to at most 1000");
            }
            Ok(Command::Campaign {
                reps,
                json,
                threads,
                checkpoint,
                checkpoint_every,
                resume,
                halt_after,
                watchdog_ms,
                chaos_seed,
                chaos_panic,
                chaos_hang,
                chaos_transient,
            })
        }
        "explore" => {
            let mut protocol = tt_fault::ProtocolUnderTest::Diag;
            let mut nodes = 4usize;
            let mut rounds = 24u64;
            let mut penalty = 3u64;
            let mut reward = 2u64;
            let mut seed = 0xD1A6_05E5u64;
            let mut budget = 200u64;
            let mut max_faults = 6usize;
            let mut random = false;
            let mut corpus = None;
            let mut corpus_out = None;
            let mut repro = None;
            let mut json = None;
            let mut checkpoint = None;
            let mut checkpoint_every = 25u64;
            let mut resume = false;
            let mut it = rest.iter();
            while let Some(a) = it.next() {
                let mut val = |name: &str| -> Result<&String, ParseError> {
                    it.next()
                        .ok_or_else(|| ParseError(format!("{name} needs a value")))
                };
                match a.as_str() {
                    "--protocol" => {
                        let v = val("--protocol")?;
                        protocol = tt_fault::ProtocolUnderTest::parse_cli(v).ok_or_else(|| {
                            ParseError(format!(
                                "unknown protocol {v:?} (expected diag, membership or lowlat)"
                            ))
                        })?;
                    }
                    "--nodes" => nodes = parse_num(val("--nodes")?, "nodes")?,
                    "--rounds" => rounds = parse_num(val("--rounds")?, "rounds")?,
                    "--penalty" => penalty = parse_num(val("--penalty")?, "penalty")?,
                    "--reward" => reward = parse_num(val("--reward")?, "reward")?,
                    "--seed" => seed = parse_num(val("--seed")?, "seed")?,
                    "--budget" => budget = parse_num(val("--budget")?, "budget")?,
                    "--max-faults" => max_faults = parse_num(val("--max-faults")?, "max faults")?,
                    "--random" => random = true,
                    "--corpus" => corpus = Some(val("--corpus")?.clone()),
                    "--corpus-out" => corpus_out = Some(val("--corpus-out")?.clone()),
                    "--repro" => repro = Some(val("--repro")?.clone()),
                    "--json" => json = Some(val("--json")?.clone()),
                    "--checkpoint" => checkpoint = Some(val("--checkpoint")?.clone()),
                    "--checkpoint-every" => {
                        checkpoint_every =
                            parse_num(val("--checkpoint-every")?, "checkpoint interval")?
                    }
                    "--resume" => resume = true,
                    other => return err(format!("unknown explore flag {other:?}")),
                }
            }
            if nodes < 4 {
                return err("explore needs at least 4 nodes");
            }
            if budget == 0 {
                return err("explore budget must be positive");
            }
            if resume && checkpoint.is_none() {
                return err("--resume needs --checkpoint PATH");
            }
            Ok(Command::Explore {
                protocol,
                nodes,
                rounds,
                penalty,
                reward,
                seed,
                budget,
                max_faults,
                random,
                corpus,
                corpus_out,
                repro,
                json,
                checkpoint,
                checkpoint_every,
                resume,
            })
        }
        "simulate" => {
            let mut nodes = 4usize;
            let mut rounds = 50u64;
            let mut penalty = 197u64;
            let mut reward = 1_000_000u64;
            let mut seed = 0u64;
            let mut timeline = false;
            let mut faults = Vec::new();
            let mut record = None;
            let mut it = rest.iter();
            while let Some(a) = it.next() {
                let mut val = |name: &str| -> Result<&String, ParseError> {
                    it.next()
                        .ok_or_else(|| ParseError(format!("{name} needs a value")))
                };
                match a.as_str() {
                    "--nodes" => nodes = parse_num(val("--nodes")?, "nodes")?,
                    "--rounds" => rounds = parse_num(val("--rounds")?, "rounds")?,
                    "--penalty" => penalty = parse_num(val("--penalty")?, "penalty")?,
                    "--reward" => reward = parse_num(val("--reward")?, "reward")?,
                    "--seed" => seed = parse_num(val("--seed")?, "seed")?,
                    "--timeline" => timeline = true,
                    "--fault" => faults.push(FaultSpec::parse(val("--fault")?)?),
                    "--record" => record = Some(val("--record")?.clone()),
                    other => return err(format!("unknown simulate flag {other:?}")),
                }
            }
            if nodes < 2 {
                return err("need at least 2 nodes");
            }
            Ok(Command::Simulate {
                nodes,
                rounds,
                penalty,
                reward,
                seed,
                timeline,
                faults,
                record,
            })
        }
        "metrics" => {
            let mut nodes = 4usize;
            let mut rounds = 50u64;
            let mut penalty = 197u64;
            let mut reward = 1_000_000u64;
            let mut seed = 0u64;
            let mut faults = Vec::new();
            let mut format = MetricsFormat::default();
            let mut out = None;
            let mut record = None;
            let mut it = rest.iter();
            while let Some(a) = it.next() {
                let mut val = |name: &str| -> Result<&String, ParseError> {
                    it.next()
                        .ok_or_else(|| ParseError(format!("{name} needs a value")))
                };
                match a.as_str() {
                    "--nodes" => nodes = parse_num(val("--nodes")?, "nodes")?,
                    "--rounds" => rounds = parse_num(val("--rounds")?, "rounds")?,
                    "--penalty" => penalty = parse_num(val("--penalty")?, "penalty")?,
                    "--reward" => reward = parse_num(val("--reward")?, "reward")?,
                    "--seed" => seed = parse_num(val("--seed")?, "seed")?,
                    "--fault" => faults.push(FaultSpec::parse(val("--fault")?)?),
                    "--format" => format = MetricsFormat::parse(val("--format")?)?,
                    "--out" => out = Some(val("--out")?.clone()),
                    "--record" => record = Some(val("--record")?.clone()),
                    other => return err(format!("unknown metrics flag {other:?}")),
                }
            }
            if nodes < 2 {
                return err("need at least 2 nodes");
            }
            Ok(Command::Metrics {
                nodes,
                rounds,
                penalty,
                reward,
                seed,
                faults,
                format,
                out,
                record,
            })
        }
        "trace" => {
            let mut nodes = 4usize;
            let mut rounds = 50u64;
            let mut penalty = 197u64;
            let mut reward = 1_000_000u64;
            let mut seed = 0u64;
            let mut faults = Vec::new();
            let mut format = TraceFormat::default();
            let mut out = None;
            let mut it = rest.iter();
            while let Some(a) = it.next() {
                let mut val = |name: &str| -> Result<&String, ParseError> {
                    it.next()
                        .ok_or_else(|| ParseError(format!("{name} needs a value")))
                };
                match a.as_str() {
                    "--nodes" => nodes = parse_num(val("--nodes")?, "nodes")?,
                    "--rounds" => rounds = parse_num(val("--rounds")?, "rounds")?,
                    "--penalty" => penalty = parse_num(val("--penalty")?, "penalty")?,
                    "--reward" => reward = parse_num(val("--reward")?, "reward")?,
                    "--seed" => seed = parse_num(val("--seed")?, "seed")?,
                    "--fault" => faults.push(FaultSpec::parse(val("--fault")?)?),
                    "--format" => format = TraceFormat::parse(val("--format")?)?,
                    "--out" => out = Some(val("--out")?.clone()),
                    other => return err(format!("unknown trace flag {other:?}")),
                }
            }
            if nodes < 2 {
                return err("need at least 2 nodes");
            }
            Ok(Command::Trace {
                nodes,
                rounds,
                penalty,
                reward,
                seed,
                faults,
                format,
                out,
            })
        }
        "replay" => {
            let Some(trace) = rest.first() else {
                return err("replay needs a trace path");
            };
            let mut nodes = 4usize;
            let mut rounds = 50u64;
            let mut penalty = 197u64;
            let mut reward = 1_000_000u64;
            let mut timeline = false;
            let mut it = rest[1..].iter();
            while let Some(a) = it.next() {
                let mut val = |name: &str| -> Result<&String, ParseError> {
                    it.next()
                        .ok_or_else(|| ParseError(format!("{name} needs a value")))
                };
                match a.as_str() {
                    "--nodes" => nodes = parse_num(val("--nodes")?, "nodes")?,
                    "--rounds" => rounds = parse_num(val("--rounds")?, "rounds")?,
                    "--penalty" => penalty = parse_num(val("--penalty")?, "penalty")?,
                    "--reward" => reward = parse_num(val("--reward")?, "reward")?,
                    "--timeline" => timeline = true,
                    other => return err(format!("unknown replay flag {other:?}")),
                }
            }
            Ok(Command::Replay {
                trace: trace.clone(),
                nodes,
                rounds,
                penalty,
                reward,
                timeline,
            })
        }
        "serve" => {
            let mut socket = DEFAULT_SOCKET.to_string();
            let mut state = DEFAULT_STATE.to_string();
            let mut it = rest.iter();
            while let Some(a) = it.next() {
                let mut val = |name: &str| -> Result<&String, ParseError> {
                    it.next()
                        .ok_or_else(|| ParseError(format!("{name} needs a value")))
                };
                match a.as_str() {
                    "--socket" => socket = val("--socket")?.clone(),
                    "--state" => state = val("--state")?.clone(),
                    other => return err(format!("unknown serve flag {other:?}")),
                }
            }
            Ok(Command::Serve { socket, state })
        }
        "submit" => {
            let Some(kind) = rest.first() else {
                return err("submit needs a job kind (campaign|explore|tune-sweep)");
            };
            let mut socket = DEFAULT_SOCKET.to_string();
            // Per-kind knobs, defaulted to small service-friendly jobs.
            let mut nodes = 4usize;
            let mut reps = 10u64;
            let mut rounds = 24u64;
            let mut budget = 150u64;
            let mut seed = 0xD1A6_05E5u64;
            let mut threads = 4usize;
            let mut chunk = 25u64;
            let mut it = rest[1..].iter();
            while let Some(a) = it.next() {
                let mut val = |name: &str| -> Result<&String, ParseError> {
                    it.next()
                        .ok_or_else(|| ParseError(format!("{name} needs a value")))
                };
                match a.as_str() {
                    "--socket" => socket = val("--socket")?.clone(),
                    "--nodes" => nodes = parse_num(val("--nodes")?, "nodes")?,
                    "--reps" => reps = parse_num(val("--reps")?, "reps")?,
                    "--rounds" => rounds = parse_num(val("--rounds")?, "rounds")?,
                    "--budget" => budget = parse_num(val("--budget")?, "budget")?,
                    "--seed" => seed = parse_num(val("--seed")?, "seed")?,
                    "--threads" => threads = parse_num(val("--threads")?, "threads")?,
                    "--chunk" => chunk = parse_num(val("--chunk")?, "chunk")?,
                    other => return err(format!("unknown submit flag {other:?}")),
                }
            }
            if chunk == 0 {
                return err("--chunk must be positive");
            }
            let spec = match kind.as_str() {
                "campaign" => tt_bench::JobSpec::Campaign {
                    nodes,
                    reps,
                    base_seed: seed,
                    threads,
                    chunk,
                },
                "explore" => tt_bench::JobSpec::Explore {
                    nodes,
                    rounds,
                    budget,
                    seed,
                    chunk,
                },
                "tune-sweep" => tt_bench::JobSpec::TuneSweep { chunk },
                other => {
                    return err(format!(
                        "unknown job kind {other:?} (campaign|explore|tune-sweep)"
                    ))
                }
            };
            Ok(Command::Submit { socket, spec })
        }
        "job" => {
            let Some(op) = rest.first() else {
                return err("job needs an operation (list|status|halt|resume)");
            };
            let mut operand = None;
            let mut socket = DEFAULT_SOCKET.to_string();
            let mut it = rest[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--socket" => {
                        socket = it
                            .next()
                            .ok_or_else(|| ParseError("--socket needs a value".into()))?
                            .clone()
                    }
                    other if operand.is_none() && !other.starts_with('-') => {
                        operand = Some(parse_num::<u64>(other, "job id")?)
                    }
                    other => return err(format!("unknown job argument {other:?}")),
                }
            }
            let need_id = |op: &str| -> Result<u64, ParseError> {
                operand.ok_or_else(|| ParseError(format!("job {op} needs a job id")))
            };
            let op = match op.as_str() {
                "list" => JobOp::List,
                "status" => JobOp::Status(need_id("status")?),
                "halt" => JobOp::Halt(need_id("halt")?),
                "resume" => JobOp::Resume(need_id("resume")?),
                other => {
                    return err(format!(
                        "unknown job operation {other:?} (list|status|halt|resume)"
                    ))
                }
            };
            Ok(Command::Job { socket, op })
        }
        "watch" => {
            let Some(job) = rest.first() else {
                return err("watch needs a job id");
            };
            let job = parse_num(job, "job id")?;
            let mut socket = DEFAULT_SOCKET.to_string();
            let mut it = rest[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--socket" => {
                        socket = it
                            .next()
                            .ok_or_else(|| ParseError("--socket needs a value".into()))?
                            .clone()
                    }
                    other => return err(format!("unknown watch flag {other:?}")),
                }
            }
            Ok(Command::Watch { socket, job })
        }
        "tail" => {
            let mut socket = DEFAULT_SOCKET.to_string();
            let mut feed = None;
            let mut max = 0u64;
            let mut capacity = 4096u64;
            let mut it = rest.iter();
            while let Some(a) = it.next() {
                let mut val = |name: &str| -> Result<&String, ParseError> {
                    it.next()
                        .ok_or_else(|| ParseError(format!("{name} needs a value")))
                };
                match a.as_str() {
                    "--socket" => socket = val("--socket")?.clone(),
                    "--feed" => feed = Some(FeedName::parse(val("--feed")?)?),
                    "--max" => max = parse_num(val("--max")?, "frame count")?,
                    "--capacity" => capacity = parse_num(val("--capacity")?, "capacity")?,
                    other => return err(format!("unknown tail flag {other:?}")),
                }
            }
            let Some(feed) = feed else {
                return err("tail needs --feed metrics|spans|progress");
            };
            if capacity == 0 {
                return err("--capacity must be positive");
            }
            Ok(Command::Tail {
                socket,
                feed,
                max,
                capacity,
            })
        }
        "net" => {
            let Some(sub) = rest.first() else {
                return err("net needs a subcommand (run|node)");
            };
            let rest = &rest[1..];
            match sub.as_str() {
                "run" => {
                    let mut nodes = 5usize;
                    let mut rounds = 40u64;
                    let mut slot_us = 3000u64;
                    let mut grace_us = None;
                    let mut penalty = 6u64;
                    let mut reward = 1_000_000u64;
                    let mut reintegrate_after = 4u64;
                    let mut seed = 0u64;
                    let mut drop = 0u16;
                    let mut duplicate = 0u16;
                    let mut reorder = 0u16;
                    let mut corrupt = 0u16;
                    let mut crash = None;
                    let mut json = None;
                    let mut check = false;
                    let mut it = rest.iter();
                    while let Some(a) = it.next() {
                        let mut val = |name: &str| -> Result<&String, ParseError> {
                            it.next()
                                .ok_or_else(|| ParseError(format!("{name} needs a value")))
                        };
                        match a.as_str() {
                            "--nodes" => nodes = parse_num(val("--nodes")?, "nodes")?,
                            "--rounds" => rounds = parse_num(val("--rounds")?, "rounds")?,
                            "--slot-us" => slot_us = parse_num(val("--slot-us")?, "slot")?,
                            "--grace-us" => {
                                grace_us = Some(parse_num(val("--grace-us")?, "grace")?)
                            }
                            "--penalty" => penalty = parse_num(val("--penalty")?, "penalty")?,
                            "--reward" => reward = parse_num(val("--reward")?, "reward")?,
                            "--reintegrate-after" => {
                                reintegrate_after =
                                    parse_num(val("--reintegrate-after")?, "reward count")?
                            }
                            "--seed" => seed = parse_num(val("--seed")?, "seed")?,
                            "--drop" => drop = parse_num(val("--drop")?, "drop per-mille")?,
                            "--duplicate" => {
                                duplicate = parse_num(val("--duplicate")?, "duplicate per-mille")?
                            }
                            "--reorder" => {
                                reorder = parse_num(val("--reorder")?, "reorder per-mille")?
                            }
                            "--corrupt" => {
                                corrupt = parse_num(val("--corrupt")?, "corrupt per-mille")?
                            }
                            "--crash" => crash = Some(parse_crash(val("--crash")?)?),
                            "--json" => json = Some(val("--json")?.clone()),
                            "--check" => check = true,
                            other => return err(format!("unknown net run flag {other:?}")),
                        }
                    }
                    if !(2..=64).contains(&nodes) {
                        return err(format!("net run needs 2..=64 nodes, got {nodes}"));
                    }
                    if rounds == 0 {
                        return err("net run needs at least one round");
                    }
                    if u32::from(drop)
                        + u32::from(duplicate)
                        + u32::from(reorder)
                        + u32::from(corrupt)
                        > 1000
                    {
                        return err("chaos per-mille rates must sum to at most 1000");
                    }
                    if let Some((node, at_round, _)) = crash {
                        if node == 0 || node as usize > nodes {
                            return err(format!("--crash node {node} outside the cluster"));
                        }
                        if at_round == 0 || at_round >= rounds {
                            return err("--crash round must fall inside the run");
                        }
                    }
                    Ok(Command::NetRun {
                        nodes,
                        rounds,
                        slot_us,
                        grace_us,
                        penalty,
                        reward,
                        reintegrate_after,
                        seed,
                        drop,
                        duplicate,
                        reorder,
                        corrupt,
                        crash,
                        json,
                        check,
                    })
                }
                "node" => {
                    let mut id = 1u32;
                    let mut bind = None;
                    let mut peers = Vec::new();
                    let mut rounds = 40u64;
                    let mut slot_us = 3000u64;
                    let mut grace_us = None;
                    let mut penalty = 6u64;
                    let mut reward = 1_000_000u64;
                    let mut reintegrate_after = 4u64;
                    let mut start_delay_ms = 500u64;
                    let mut json = None;
                    let mut it = rest.iter();
                    while let Some(a) = it.next() {
                        let mut val = |name: &str| -> Result<&String, ParseError> {
                            it.next()
                                .ok_or_else(|| ParseError(format!("{name} needs a value")))
                        };
                        match a.as_str() {
                            "--id" => id = parse_num(val("--id")?, "node id")?,
                            "--bind" => bind = Some(val("--bind")?.clone()),
                            "--peers" => {
                                peers = val("--peers")?
                                    .split(',')
                                    .map(|p| p.trim().to_string())
                                    .collect()
                            }
                            "--rounds" => rounds = parse_num(val("--rounds")?, "rounds")?,
                            "--slot-us" => slot_us = parse_num(val("--slot-us")?, "slot")?,
                            "--grace-us" => {
                                grace_us = Some(parse_num(val("--grace-us")?, "grace")?)
                            }
                            "--penalty" => penalty = parse_num(val("--penalty")?, "penalty")?,
                            "--reward" => reward = parse_num(val("--reward")?, "reward")?,
                            "--reintegrate-after" => {
                                reintegrate_after =
                                    parse_num(val("--reintegrate-after")?, "reward count")?
                            }
                            "--start-delay-ms" => {
                                start_delay_ms = parse_num(val("--start-delay-ms")?, "start delay")?
                            }
                            "--json" => json = Some(val("--json")?.clone()),
                            other => return err(format!("unknown net node flag {other:?}")),
                        }
                    }
                    if peers.is_empty() {
                        return err("net node needs --peers ADDR,ADDR,...");
                    }
                    Ok(Command::NetNode {
                        id,
                        bind,
                        peers,
                        rounds,
                        slot_us,
                        grace_us,
                        penalty,
                        reward,
                        reintegrate_after,
                        start_delay_ms,
                        json,
                    })
                }
                other => err(format!("unknown net subcommand {other:?} (run|node)")),
            }
        }
        "shutdown" => {
            let mut socket = DEFAULT_SOCKET.to_string();
            let mut it = rest.iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--socket" => {
                        socket = it
                            .next()
                            .ok_or_else(|| ParseError("--socket needs a value".into()))?
                            .clone()
                    }
                    other => return err(format!("unknown shutdown flag {other:?}")),
                }
            }
            Ok(Command::Shutdown { socket })
        }
        other => err(format!("unknown command {other:?} (try `ttdiag help`)")),
    }
}

/// Default admin socket path of `ttdiag serve` and its clients.
pub const DEFAULT_SOCKET: &str = "ttdiag.sock";
/// Default per-job checkpoint directory of `ttdiag serve`.
pub const DEFAULT_STATE: &str = "ttdiag-state";

/// The usage text.
pub const USAGE: &str = "\
ttdiag — tunable add-on diagnosis for time-triggered systems (DSN 2007)

USAGE:
  ttdiag simulate [--nodes N] [--rounds R] [--penalty P] [--reward R]
                  [--seed S] [--timeline] [--fault SPEC]... [--record PATH]
  ttdiag replay PATH [--nodes N] [--rounds R] [--penalty P] [--reward R]
                  [--timeline]             re-drive a recorded trace
  ttdiag metrics [--nodes N] [--rounds R] [--penalty P] [--reward R]
                  [--seed S] [--fault SPEC]... [--format json|csv|summary]
                  [--out PATH] [--record PATH]
                                           instrumented run -> metrics dump
  ttdiag trace   [--nodes N] [--rounds R] [--penalty P] [--reward R]
                  [--seed S] [--fault SPEC]... [--format jsonl|perfetto|summary]
                  [--out PATH]             provenance spans for each diagnosis
  ttdiag tune [automotive|aerospace]       regenerate the Table 2 tuning
  ttdiag tune sweep [--nodes LIST] [--rounds LIST] [--penalty LIST]
                  [--reward LIST] [--crit LIST] [--rate LIST]
                  [--intermittent LIST] [--experiments N] [--batch N]
                  [--seed S] [--json PATH] [--csv-dir DIR] [--check]
                  [--checkpoint PATH] [--resume] [--halt-after CELLS]
                                           Monte Carlo tuning sweep over the
                                           (N, P, R, s, lambda) grid: per-cell
                                           false-isolation probability with
                                           Wilson CIs, time-to-isolation
                                           distributions, forgiveness counts;
                                           measures the Fig. 3 boundary and
                                           (--check) cross-checks it against
                                           the analytic model; LIST values are
                                           comma-separated; checkpointed runs
                                           halt/resume byte-identically
  ttdiag isolation [automotive|aerospace]  Table 4 time-to-isolation rows
  ttdiag campaign [--reps N] [--json PATH] [--threads T]
                  [--checkpoint PATH] [--checkpoint-every N] [--resume]
                  [--halt-after N] [--watchdog-ms MS] [--chaos-seed S]
                  [--chaos-panic PM] [--chaos-hang PM] [--chaos-transient PM]
                                           Sec. 8 validation campaign under
                                           supervision: panicking/hanging
                                           experiments are quarantined (with
                                           seeds), transient failures retried
                                           with backoff, progress checkpointed
                                           atomically; a resumed run is
                                           byte-identical to an uninterrupted
                                           one (chaos rates are per-mille)
  ttdiag explore [--protocol diag|membership|lowlat] [--nodes N] [--rounds R]
                  [--penalty P] [--reward R]
                  [--seed S] [--budget ITERS] [--max-faults K] [--random]
                  [--corpus DIR] [--corpus-out DIR] [--repro DIR] [--json PATH]
                  [--checkpoint PATH] [--checkpoint-every N] [--resume]
                                           coverage-guided fault-schedule
                                           search with shrinking (exit 1 on
                                           any surviving counterexample);
                                           --protocol picks the variant under
                                           test (Sec. 7 membership, Sec. 10
                                           low latency); --resume continues
                                           from the checkpoint's parameters
                                           and RNG position, byte-identically
  ttdiag serve [--socket PATH] [--state DIR]
                                           long-lived diagnosis service on a
                                           Unix admin socket: queued campaign/
                                           explore/tune-sweep jobs run in
                                           checkpointed chunks (halt/resume
                                           over the socket) with live metrics,
                                           span and progress feeds fanned out
                                           to concurrent subscribers
  ttdiag submit (campaign|explore|tune-sweep)
                  [--nodes N] [--reps N] [--rounds R] [--budget ITERS]
                  [--seed S] [--threads T] [--chunk K] [--socket PATH]
                                           enqueue a job, print its id plus
                                           the serving host's fingerprint
  ttdiag job (list|status ID|halt ID|resume ID) [--socket PATH]
                                           query or control submitted jobs
  ttdiag watch ID [--socket PATH]          live one-line progress summary
                                           (exit 1 if the job fails)
  ttdiag tail --feed (metrics|spans|progress)
                  [--max N] [--capacity N] [--socket PATH]
                                           stream one feed as raw JSONL; the
                                           final line reports delivered/
                                           dropped frame counts
  ttdiag shutdown [--socket PATH]          halt jobs (checkpointed), then stop
                                           the service cleanly
  ttdiag net run [--nodes N] [--rounds R] [--slot-us US] [--grace-us US]
                  [--penalty P] [--reward R] [--reintegrate-after K]
                  [--seed S] [--drop PM] [--duplicate PM] [--reorder PM]
                  [--corrupt PM] [--crash NODE@ROUND+DOWN] [--json PATH]
                  [--check]                run the certified protocol as a
                                           distributed system: N node threads
                                           exchange real UDP datagrams on an
                                           emulated TDMA schedule (loopback),
                                           with seeded chaos, optional
                                           mid-run crash/restart, and a
                                           simulator-replay cross-check of
                                           every surviving node's verdict
                                           (--check exits 1 on divergence;
                                           chaos rates are per-mille)
  ttdiag net node --peers A1,A2,... [--id I] [--bind ADDR] [--rounds R]
                  [--slot-us US] [--grace-us US] [--penalty P] [--reward R]
                  [--reintegrate-after K] [--start-delay-ms MS] [--json PATH]
                                           run one peer of a multi-process
                                           cluster; all peers need the same
                                           peer list (slot order) and must
                                           start within the epoch window
  ttdiag help

EXIT CODES:
  0    success (quarantined experiments alone do not fail a campaign)
  1    a protocol check failed: campaign experiment failure, surviving
       explorer counterexample, violated latency bound
  2    usage error: unparseable or semantically invalid arguments
  101  internal error: I/O or serialization failure in the harness

FAULT SPECS:
  crash:NODE@ROUND         permanent benign sender fault
  intermittent:NODE@ROUND/PERIOD
                           benign sender fault recurring every PERIOD rounds
  burst:LEN@ROUND.SLOT     bus burst of LEN slots
  noise:P                  per-slot benign noise, probability P
  asym:NODE@ROUND:R1,R2    asymmetric fault missed by receivers R1,R2
  scenario:blinking        Table 3 blinking-light scenario
  scenario:lightning       Table 3 lightning-bolt scenario

EXAMPLES:
  ttdiag simulate --fault crash:3@12 --timeline
  ttdiag metrics --fault crash:3@12 --format json
  ttdiag trace --rounds 16 --penalty 3 --reward 2 --fault intermittent:2@4/2 \\
               --format perfetto --out trace.json
  ttdiag metrics --rounds 200 --fault noise:0.05 --format csv --out events.csv
  ttdiag simulate --fault noise:0.1 --record trace.json
  ttdiag replay trace.json --penalty 10
  ttdiag simulate --nodes 6 --rounds 200 --fault noise:0.05 --penalty 10 --reward 50
  ttdiag tune aerospace
  ttdiag tune sweep --reward 2,8,24 --rate 72000 --json sweep.json --check
  ttdiag campaign --reps 100 --json results.json
  ttdiag explore --budget 150 --seed 7 --corpus tests/corpus --repro repros/
  ttdiag serve --socket /tmp/ttdiag.sock --state /tmp/ttdiag-state &
  ttdiag submit campaign --reps 5 --chunk 10 --socket /tmp/ttdiag.sock
  ttdiag watch 1 --socket /tmp/ttdiag.sock
  ttdiag tail --feed progress --max 50 --socket /tmp/ttdiag.sock
  ttdiag shutdown --socket /tmp/ttdiag.sock
";

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn empty_and_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&args("help")).unwrap(), Command::Help);
        assert_eq!(parse(&args("--help")).unwrap(), Command::Help);
    }

    #[test]
    fn simulate_defaults_and_flags() {
        let c = parse(&args("simulate")).unwrap();
        assert_eq!(
            c,
            Command::Simulate {
                nodes: 4,
                rounds: 50,
                penalty: 197,
                reward: 1_000_000,
                seed: 0,
                timeline: false,
                faults: vec![],
                record: None,
            }
        );
        let c = parse(&args(
            "simulate --nodes 6 --rounds 200 --penalty 10 --reward 50 --seed 7 --timeline",
        ))
        .unwrap();
        match c {
            Command::Simulate {
                nodes,
                rounds,
                penalty,
                reward,
                seed,
                timeline,
                ..
            } => {
                assert_eq!(
                    (nodes, rounds, penalty, reward, seed, timeline),
                    (6, 200, 10, 50, 7, true)
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn fault_specs_parse() {
        assert_eq!(
            FaultSpec::parse("crash:3@12").unwrap(),
            FaultSpec::Crash { node: 3, round: 12 }
        );
        assert_eq!(
            FaultSpec::parse("burst:8@10.2").unwrap(),
            FaultSpec::Burst {
                len: 8,
                round: 10,
                slot: 2
            }
        );
        assert_eq!(
            FaultSpec::parse("noise:0.1").unwrap(),
            FaultSpec::Noise { p: 0.1 }
        );
        assert_eq!(
            FaultSpec::parse("asym:1@9:1,2").unwrap(),
            FaultSpec::Asym {
                node: 1,
                round: 9,
                detected_by: vec![1, 2]
            }
        );
        assert_eq!(
            FaultSpec::parse("scenario:lightning").unwrap(),
            FaultSpec::Scenario {
                name: "lightning".into()
            }
        );
        assert_eq!(
            FaultSpec::parse("intermittent:2@4/2").unwrap(),
            FaultSpec::Intermittent {
                node: 2,
                round: 4,
                period: 2
            }
        );
    }

    #[test]
    fn fault_spec_errors_are_informative() {
        assert!(FaultSpec::parse("crash:3")
            .unwrap_err()
            .0
            .contains("NODE@ROUND"));
        assert!(FaultSpec::parse("noise:2.0")
            .unwrap_err()
            .0
            .contains("out of range"));
        assert!(FaultSpec::parse("warp:9")
            .unwrap_err()
            .0
            .contains("unknown fault kind"));
        assert!(FaultSpec::parse("scenario:rain")
            .unwrap_err()
            .0
            .contains("unknown scenario"));
        assert!(FaultSpec::parse("intermittent:2@4")
            .unwrap_err()
            .0
            .contains("NODE@ROUND/PERIOD"));
        assert!(FaultSpec::parse("intermittent:2@4/0")
            .unwrap_err()
            .0
            .contains("period must be positive"));
    }

    #[test]
    fn metrics_defaults_and_flags() {
        let c = parse(&args("metrics")).unwrap();
        assert_eq!(
            c,
            Command::Metrics {
                nodes: 4,
                rounds: 50,
                penalty: 197,
                reward: 1_000_000,
                seed: 0,
                faults: vec![],
                format: MetricsFormat::Json,
                out: None,
                record: None,
            }
        );
        let c = parse(&args(
            "metrics --rounds 20 --fault crash:3@5 --format csv --out events.csv --record t.json",
        ))
        .unwrap();
        match c {
            Command::Metrics {
                rounds,
                faults,
                format,
                out,
                record,
                ..
            } => {
                assert_eq!(rounds, 20);
                assert_eq!(faults, vec![FaultSpec::Crash { node: 3, round: 5 }]);
                assert_eq!(format, MetricsFormat::Csv);
                assert_eq!(out, Some("events.csv".into()));
                assert_eq!(record, Some("t.json".into()));
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&args("metrics --format xml")).is_err());
        assert!(parse(&args("metrics --nodes 1")).is_err());
    }

    #[test]
    fn trace_defaults_and_flags() {
        let c = parse(&args("trace")).unwrap();
        assert_eq!(
            c,
            Command::Trace {
                nodes: 4,
                rounds: 50,
                penalty: 197,
                reward: 1_000_000,
                seed: 0,
                faults: vec![],
                format: TraceFormat::Summary,
                out: None,
            }
        );
        let c = parse(&args(
            "trace --rounds 16 --penalty 3 --reward 2 --fault intermittent:2@4/2 \
             --format perfetto --out trace.json",
        ))
        .unwrap();
        match c {
            Command::Trace {
                rounds,
                penalty,
                reward,
                faults,
                format,
                out,
                ..
            } => {
                assert_eq!((rounds, penalty, reward), (16, 3, 2));
                assert_eq!(
                    faults,
                    vec![FaultSpec::Intermittent {
                        node: 2,
                        round: 4,
                        period: 2
                    }]
                );
                assert_eq!(format, TraceFormat::Perfetto);
                assert_eq!(out, Some("trace.json".into()));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(
            TraceFormat::parse("jsonl").unwrap(),
            TraceFormat::Jsonl,
            "jsonl accepted"
        );
        assert!(parse(&args("trace --format xml")).is_err());
        assert!(parse(&args("trace --nodes 1")).is_err());
    }

    #[test]
    fn tune_and_isolation_domains() {
        assert_eq!(
            parse(&args("tune")).unwrap(),
            Command::Tune {
                domain: "automotive".into()
            }
        );
        assert_eq!(
            parse(&args("isolation aerospace")).unwrap(),
            Command::Isolation {
                domain: "aerospace".into()
            }
        );
        // Unknown domains parse; `commands::domain_setup` rejects them with
        // a usage error so `tune` and `isolation` share one error path.
        assert_eq!(
            parse(&args("tune maritime")).unwrap(),
            Command::Tune {
                domain: "maritime".into()
            }
        );
        assert_eq!(
            parse(&args("isolation maritime")).unwrap(),
            Command::Isolation {
                domain: "maritime".into()
            }
        );
    }

    #[test]
    fn tune_sweep_defaults_and_flags() {
        let c = parse(&args("tune sweep")).unwrap();
        assert_eq!(
            c,
            Command::TuneSweep {
                config: tt_analysis::SweepConfig::default(),
                json: None,
                csv_dir: None,
                check: false,
                checkpoint: None,
                resume: false,
                halt_after: None,
            }
        );
        let c = parse(&args(
            "tune sweep --nodes 4 --rounds 48 --penalty 1 --reward 2,8 --crit 1 \
             --rate 72000,1400 --intermittent 0 --experiments 32 --batch 8 --seed 3 \
             --json s.json --csv-dir tables/ --check --checkpoint cp.json --halt-after 2",
        ))
        .unwrap();
        match c {
            Command::TuneSweep {
                config,
                json,
                csv_dir,
                check,
                checkpoint,
                resume,
                halt_after,
            } => {
                assert_eq!(config.nodes, vec![4]);
                assert_eq!(config.rounds, vec![48]);
                assert_eq!(config.penalty_thresholds, vec![1]);
                assert_eq!(config.reward_thresholds, vec![2, 8]);
                assert_eq!(config.criticalities, vec![1]);
                assert_eq!(config.rates_per_hour, vec![72_000.0, 1_400.0]);
                assert_eq!(config.intermittent_periods, vec![0]);
                assert_eq!((config.experiments, config.batch_size), (32, 8));
                assert_eq!(config.base_seed, 3);
                assert_eq!(json, Some("s.json".into()));
                assert_eq!(csv_dir, Some("tables/".into()));
                assert!(check);
                assert_eq!(checkpoint, Some("cp.json".into()));
                assert!(!resume);
                assert_eq!(halt_after, Some(2));
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&args("tune sweep --rate bogus")).is_err());
        assert!(parse(&args("tune sweep --reward")).is_err());
        assert!(parse(&args("tune sweep --warp 9")).is_err());
        assert!(parse(&args("tune sweep --resume")).is_err());
        assert!(parse(&args("tune sweep --resume --checkpoint cp.json")).is_ok());
    }

    #[test]
    fn campaign_flags() {
        let c = parse(&args("campaign --reps 5 --json out.json")).unwrap();
        assert_eq!(
            c,
            Command::Campaign {
                reps: 5,
                json: Some("out.json".into()),
                threads: 1,
                checkpoint: None,
                checkpoint_every: 25,
                resume: false,
                halt_after: None,
                watchdog_ms: None,
                chaos_seed: 0,
                chaos_panic: 0,
                chaos_hang: 0,
                chaos_transient: 0,
            }
        );
        assert!(parse(&args("campaign --bogus")).is_err());
    }

    #[test]
    fn campaign_supervision_flags() {
        let c = parse(&args(
            "campaign --reps 2 --threads 4 --checkpoint cp.json --checkpoint-every 10 \
             --halt-after 7 --watchdog-ms 500 --chaos-seed 9 --chaos-panic 100 \
             --chaos-hang 50 --chaos-transient 25",
        ))
        .unwrap();
        match c {
            Command::Campaign {
                reps,
                threads,
                checkpoint,
                checkpoint_every,
                resume,
                halt_after,
                watchdog_ms,
                chaos_seed,
                chaos_panic,
                chaos_hang,
                chaos_transient,
                ..
            } => {
                assert_eq!((reps, threads), (2, 4));
                assert_eq!(checkpoint, Some("cp.json".into()));
                assert_eq!(checkpoint_every, 10);
                assert!(!resume);
                assert_eq!(halt_after, Some(7));
                assert_eq!(watchdog_ms, Some(500));
                assert_eq!((chaos_seed, chaos_panic), (9, 100));
                assert_eq!((chaos_hang, chaos_transient), (50, 25));
            }
            other => panic!("{other:?}"),
        }
        // Resume needs a checkpoint path to resume from.
        assert!(parse(&args("campaign --resume")).is_err());
        assert!(parse(&args("campaign --resume --checkpoint cp.json")).is_ok());
        assert!(parse(&args("campaign --threads 0")).is_err());
        // Per-mille bands cannot overflow the draw range.
        assert!(parse(&args(
            "campaign --chaos-panic 600 --chaos-hang 300 --chaos-transient 200"
        ))
        .is_err());
    }

    #[test]
    fn explore_defaults_and_flags() {
        let c = parse(&args("explore")).unwrap();
        assert_eq!(
            c,
            Command::Explore {
                protocol: tt_fault::ProtocolUnderTest::Diag,
                nodes: 4,
                rounds: 24,
                penalty: 3,
                reward: 2,
                seed: 0xD1A6_05E5,
                budget: 200,
                max_faults: 6,
                random: false,
                corpus: None,
                corpus_out: None,
                repro: None,
                json: None,
                checkpoint: None,
                checkpoint_every: 25,
                resume: false,
            }
        );
        let c = parse(&args(
            "explore --protocol membership --nodes 5 --rounds 30 --penalty 4 --reward 3 \
             --seed 9 --budget 50 \
             --max-faults 3 --random --corpus in/ --corpus-out out/ --repro rep/ --json r.json \
             --checkpoint cp.json --checkpoint-every 5",
        ))
        .unwrap();
        match c {
            Command::Explore {
                protocol,
                nodes,
                rounds,
                penalty,
                reward,
                seed,
                budget,
                max_faults,
                random,
                corpus,
                corpus_out,
                repro,
                json,
                checkpoint,
                checkpoint_every,
                resume,
            } => {
                assert_eq!(protocol, tt_fault::ProtocolUnderTest::Membership);
                assert_eq!((nodes, rounds, penalty, reward), (5, 30, 4, 3));
                assert_eq!((seed, budget, max_faults, random), (9, 50, 3, true));
                assert_eq!(corpus, Some("in/".into()));
                assert_eq!(corpus_out, Some("out/".into()));
                assert_eq!(repro, Some("rep/".into()));
                assert_eq!(json, Some("r.json".into()));
                assert_eq!(checkpoint, Some("cp.json".into()));
                assert_eq!(checkpoint_every, 5);
                assert!(!resume);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&args("explore --nodes 3")).is_err());
        assert!(parse(&args("explore --budget 0")).is_err());
        assert!(parse(&args("explore --warp 9")).is_err());
        assert!(parse(&args("explore --protocol lowlat")).is_ok());
        assert!(parse(&args("explore --protocol quorum")).is_err());
        assert!(parse(&args("explore --protocol")).is_err());
        assert!(parse(&args("explore --resume")).is_err());
        assert!(parse(&args("explore --resume --checkpoint cp.json")).is_ok());
    }

    #[test]
    fn unknown_command_rejected() {
        assert!(parse(&args("launch")).is_err());
        assert!(parse(&args("simulate --warp 9")).is_err());
    }

    #[test]
    fn net_run_defaults_and_flags() {
        let c = parse(&args("net run")).unwrap();
        assert_eq!(
            c,
            Command::NetRun {
                nodes: 5,
                rounds: 40,
                slot_us: 3000,
                grace_us: None,
                penalty: 6,
                reward: 1_000_000,
                reintegrate_after: 4,
                seed: 0,
                drop: 0,
                duplicate: 0,
                reorder: 0,
                corrupt: 0,
                crash: None,
                json: None,
                check: false,
            }
        );
        let c = parse(&args(
            "net run --nodes 4 --rounds 60 --slot-us 5000 --grace-us 2000 --penalty 3 \
             --reward 8 --reintegrate-after 6 --seed 7 --drop 50 --duplicate 5 --reorder 5 \
             --corrupt 5 --crash 3@12+10 --json report.json --check",
        ))
        .unwrap();
        match c {
            Command::NetRun {
                nodes,
                rounds,
                slot_us,
                grace_us,
                penalty,
                reward,
                reintegrate_after,
                seed,
                drop,
                duplicate,
                reorder,
                corrupt,
                crash,
                json,
                check,
            } => {
                assert_eq!(
                    (nodes, rounds, slot_us, grace_us),
                    (4, 60, 5000, Some(2000))
                );
                assert_eq!((penalty, reward, reintegrate_after, seed), (3, 8, 6, 7));
                assert_eq!((drop, duplicate, reorder, corrupt), (50, 5, 5, 5));
                assert_eq!(crash, Some((3, 12, 10)));
                assert_eq!(json, Some("report.json".into()));
                assert!(check);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn net_usage_errors() {
        // The exit-code taxonomy: every one of these is a usage error
        // (exit 2), checked end to end in crates/cli/tests/exit_codes.rs.
        assert!(parse(&args("net")).is_err());
        assert!(parse(&args("net frobnicate")).is_err());
        assert!(parse(&args("net run --nodes 1")).is_err());
        assert!(parse(&args("net run --nodes 65")).is_err());
        assert!(parse(&args("net run --rounds 0")).is_err());
        assert!(parse(&args("net run --warp 9")).is_err());
        assert!(parse(&args("net run --drop 600 --corrupt 600")).is_err());
        assert!(parse(&args("net run --crash 3@12")).is_err());
        assert!(parse(&args("net run --crash 3@12+0")).is_err());
        assert!(parse(&args("net run --crash 9@12+4")).is_err());
        assert!(parse(&args("net run --crash 3@0+4")).is_err());
        assert!(parse(&args("net run --rounds 10 --crash 3@10+4")).is_err());
        assert!(parse(&args("net node")).is_err());
        assert!(parse(&args("net node --id 1")).is_err(), "peers required");
    }

    #[test]
    fn net_node_flags() {
        let c = parse(&args(
            "net node --id 2 --peers 127.0.0.1:9001,127.0.0.1:9002 --rounds 8 --start-delay-ms 200",
        ))
        .unwrap();
        match c {
            Command::NetNode {
                id,
                bind,
                peers,
                rounds,
                start_delay_ms,
                ..
            } => {
                assert_eq!(id, 2);
                assert_eq!(bind, None);
                assert_eq!(peers, vec!["127.0.0.1:9001", "127.0.0.1:9002"]);
                assert_eq!((rounds, start_delay_ms), (8, 200));
            }
            other => panic!("{other:?}"),
        }
    }
}
