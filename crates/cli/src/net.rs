//! Execution of `ttdiag net run` / `ttdiag net node`: the certified
//! protocol as a distributed system over real UDP sockets.
//!
//! `net run` hosts the whole cluster as loopback threads (the CI-friendly
//! single-process deployment); `net node` runs one peer so a cluster can
//! be spread over processes or hosts. Both feed the same `tt_net` engine;
//! the run report carries the serving host's fingerprint so measured slot
//! jitter can be attributed to a machine, like the service's job replies.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use serde::Serialize;

use tt_bench::HostFingerprint;
use tt_core::{ProtocolConfig, ReintegrationPolicy};
use tt_net::{
    run_cluster, run_node, CrashSpec, JitterStats, LinkRates, NetChaos, NetError, NodeParams,
    NodeSegment, RunConfig, RunReport, SlotClock, UdpTransport,
};
use tt_sim::{CancellationToken, NodeId};

use crate::args::Command;
use crate::commands::{internal, usage, CliError};

/// The `net run` JSON document: the full report plus the host it ran on.
#[derive(Serialize)]
struct NetRunDoc {
    host: HostFingerprint,
    report: RunReport,
}

/// The `net node` JSON document: one peer's segment plus its host.
#[derive(Serialize)]
struct NetNodeDoc {
    host: HostFingerprint,
    segment: NodeSegment,
}

/// Dispatches the two `net` subcommands.
pub fn run(cmd: Command) -> Result<String, CliError> {
    match cmd {
        Command::NetRun {
            nodes,
            rounds,
            slot_us,
            grace_us,
            penalty,
            reward,
            reintegrate_after,
            seed,
            drop,
            duplicate,
            reorder,
            corrupt,
            crash,
            json,
            check,
        } => {
            let protocol = protocol(nodes, penalty, reward, reintegrate_after)?;
            let mut cfg = RunConfig::new(protocol, rounds, Duration::from_micros(slot_us));
            if let Some(g) = grace_us {
                cfg.grace = Duration::from_micros(g);
            }
            let rates = LinkRates {
                drop_per_mille: drop,
                duplicate_per_mille: duplicate,
                reorder_per_mille: reorder,
                corrupt_per_mille: corrupt,
            };
            if rates.total() > 0 {
                cfg.chaos = Some(NetChaos::uniform(seed, rates));
            }
            cfg.crash = crash.map(|(node, at_round, down_rounds)| CrashSpec {
                node,
                at_round,
                down_rounds,
            });
            net_run(cfg, json, check)
        }
        Command::NetNode {
            id,
            bind,
            peers,
            rounds,
            slot_us,
            grace_us,
            penalty,
            reward,
            reintegrate_after,
            start_delay_ms,
            json,
        } => {
            let slot = Duration::from_micros(slot_us);
            let grace = grace_us.map(Duration::from_micros).unwrap_or(slot / 2);
            let protocol = protocol(peers.len(), penalty, reward, reintegrate_after)?;
            net_node(NetNodeOpts {
                id,
                bind,
                peers,
                protocol,
                rounds,
                slot,
                grace,
                start_delay: Duration::from_millis(start_delay_ms),
                json,
            })
        }
        other => Err(internal(format!("not a net command: {other:?}"))),
    }
}

fn protocol(
    n: usize,
    penalty: u64,
    reward: u64,
    reintegrate_after: u64,
) -> Result<ProtocolConfig, CliError> {
    let reintegration = if reintegrate_after == 0 {
        ReintegrationPolicy::Never
    } else {
        ReintegrationPolicy::AfterRewards(reintegrate_after)
    };
    ProtocolConfig::builder(n)
        .penalty_threshold(penalty)
        .reward_threshold(reward)
        .reintegration(reintegration)
        .build()
        .map_err(|e| usage(e.to_string()))
}

fn net_run(cfg: RunConfig, json: Option<String>, check: bool) -> Result<String, CliError> {
    let report = run_cluster(cfg).map_err(|e| match e {
        NetError::Config(m) => usage(m),
        NetError::Io(m) => internal(m),
    })?;
    let host = HostFingerprint::detect();

    if let Some(path) = json {
        let doc = NetRunDoc {
            host: host.clone(),
            report: report.clone(),
        };
        let body = serde_json::to_string(&doc)
            .map_err(|e| internal(format!("serializing report: {e}")))?;
        std::fs::write(&path, body).map_err(|e| internal(format!("writing {path}: {e}")))?;
    }

    let text = render_run_report(&report, &host);
    let ok = report.convergence.converged && report.replay.agree;
    if check && !ok {
        return Err(CliError::Counterexample(text));
    }
    Ok(text)
}

fn render_run_report(report: &RunReport, host: &HostFingerprint) -> String {
    let mut out = String::new();
    let push = |out: &mut String, line: String| {
        out.push_str(&line);
        out.push('\n');
    };
    push(
        &mut out,
        format!(
            "net run: {} nodes, {} rounds, slot {}us, grace {}us",
            report.n_nodes,
            report.rounds,
            report.slot_ns / 1_000,
            report.grace_ns / 1_000
        ),
    );
    push(
        &mut out,
        format!("host: {} cores, {}", host.logical_cores, host.cpu_model),
    );
    if let Some(chaos) = &report.chaos {
        let r = chaos.default_rates;
        push(
            &mut out,
            format!(
                "chaos: seed {}, per-mille drop {} / duplicate {} / reorder {} / corrupt {}",
                chaos.seed,
                r.drop_per_mille,
                r.duplicate_per_mille,
                r.reorder_per_mille,
                r.corrupt_per_mille
            ),
        );
    }
    if let Some(digest) = report.chaos_digest {
        push(&mut out, format!("chaos digest: 0x{digest:016x}"));
    }
    if let Some(crash) = report.crash {
        push(
            &mut out,
            format!(
                "crash: node {} down rounds {}..{}",
                crash.node,
                crash.at_round,
                crash.at_round + crash.down_rounds
            ),
        );
    }
    for t in &report.nodes {
        for seg in &t.segments {
            let tm = &seg.timing;
            push(
                &mut out,
                format!(
                    "node {} rounds {}..{}: {} frames (late {}, stale {}, corrupt {}, \
                     duplicate {}, missing {}), arrival {}, exec lag {}, isolations {}",
                    seg.node,
                    seg.start_round,
                    seg.end_round,
                    tm.frames,
                    tm.late,
                    tm.stale,
                    tm.corrupt,
                    tm.duplicate,
                    tm.missing,
                    jitter(&tm.arrival_error),
                    jitter(&tm.exec_lag),
                    seg.isolations.len()
                ),
            );
        }
    }
    let injected: u64 = report
        .nodes
        .iter()
        .flat_map(|t| &t.segments)
        .map(|s| s.chaos.dropped + s.chaos.duplicated + s.chaos.reordered + s.chaos.corrupted)
        .sum();
    if report.chaos.is_some() {
        push(&mut out, format!("chaos injections: {injected}"));
    }
    let c = &report.convergence;
    if c.converged {
        push(&mut out, "convergence: ok".to_string());
    } else {
        push(
            &mut out,
            format!(
                "convergence: FAILED (wrongful isolations {}, survivors active {}, \
                 survivors healthy {}, crash isolated {}, crash reintegrated {})",
                c.wrongful_isolations,
                c.survivors_active,
                c.survivors_healthy,
                c.crash_isolated,
                c.crash_reintegrated
            ),
        );
    }
    if report.replay.agree {
        push(
            &mut out,
            format!(
                "verdict cross-check: agree ({} rounds replayed, {} nodes compared)",
                report.replay.replayed_rounds,
                report.replay.compared_nodes.len()
            ),
        );
    } else {
        push(
            &mut out,
            format!(
                "verdict cross-check: DISAGREE ({} mismatches)",
                report.replay.mismatches.len()
            ),
        );
        for m in report.replay.mismatches.iter().take(10) {
            push(&mut out, format!("  {m}"));
        }
    }
    out.pop();
    out
}

fn jitter(j: &JitterStats) -> String {
    if j.count == 0 {
        "n/a".to_string()
    } else {
        format!("mean {:.0}us max {}us", j.mean_us, j.max_us)
    }
}

struct NetNodeOpts {
    id: u32,
    bind: Option<String>,
    peers: Vec<String>,
    protocol: ProtocolConfig,
    rounds: u64,
    slot: Duration,
    grace: Duration,
    start_delay: Duration,
    json: Option<String>,
}

fn net_node(opts: NetNodeOpts) -> Result<String, CliError> {
    let n = opts.peers.len();
    if !(2..=64).contains(&n) {
        return Err(usage(format!("net node needs 2..=64 peers, got {n}")));
    }
    if opts.id == 0 || opts.id as usize > n {
        return Err(usage(format!(
            "--id {} outside the peer list (1..={n})",
            opts.id
        )));
    }
    if opts.slot < Duration::from_micros(200) {
        return Err(usage("slot must be at least 200us"));
    }
    let mut addrs: Vec<SocketAddr> = Vec::with_capacity(n);
    for p in &opts.peers {
        let a: SocketAddr = p
            .parse()
            .map_err(|e| usage(format!("bad peer address {p:?}: {e}")))?;
        if addrs.contains(&a) {
            return Err(usage(format!("inconsistent peer list: {a} appears twice")));
        }
        addrs.push(a);
    }
    let slot_idx = opts.id as usize - 1;
    let bind_addr: SocketAddr = match &opts.bind {
        Some(b) => b
            .parse()
            .map_err(|e| usage(format!("bad bind address {b:?}: {e}")))?,
        None => addrs[slot_idx],
    };
    let mut transport = UdpTransport::bind(bind_addr, addrs, slot_idx as u8)
        .map_err(|e| usage(format!("binding {bind_addr}: {e}")))?;

    let clock = SlotClock::new(Instant::now() + opts.start_delay, opts.slot, n as u32);
    let params = NodeParams {
        node: NodeId::new(opts.id),
        protocol: opts.protocol,
        grace: opts.grace,
        exec_offset_slots: 0,
        end_round: opts.rounds,
    };
    let cancel = CancellationToken::new();
    let segment = run_node(&params, clock, &mut transport, &cancel, 0);

    let host = HostFingerprint::detect();
    if let Some(path) = &opts.json {
        let doc = NetNodeDoc {
            host: host.clone(),
            segment: segment.clone(),
        };
        let body = serde_json::to_string(&doc)
            .map_err(|e| internal(format!("serializing segment: {e}")))?;
        std::fs::write(path, body).map_err(|e| internal(format!("writing {path}: {e}")))?;
    }

    let tm = &segment.timing;
    let active: Vec<String> = segment
        .final_active
        .iter()
        .enumerate()
        .map(|(i, &a)| format!("{}:{}", i + 1, if a { "ACTIVE" } else { "ISOLATED" }))
        .collect();
    Ok(format!(
        "net node {} on {}: rounds {}..{}, {} frames (late {}, stale {}, corrupt {}, \
         missing {}), arrival {}, isolations {}\nfinal view: {}",
        segment.node,
        bind_addr,
        segment.start_round,
        segment.end_round,
        tm.frames,
        tm.late,
        tm.stale,
        tm.corrupt,
        tm.missing,
        jitter(&tm.arrival_error),
        segment.isolations.len(),
        active.join(" ")
    ))
}
