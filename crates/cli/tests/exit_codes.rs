//! Process-level checks of the documented exit-code taxonomy:
//! `0` success, `1` protocol counterexample, `2` usage error, `101`
//! internal error (mirroring Rust's panic exit status).

use std::process::Command;

fn ttdiag() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ttdiag"))
}

#[test]
fn success_exits_zero() {
    let out = ttdiag()
        .args(["tune", "automotive"])
        .output()
        .expect("spawn ttdiag");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
}

#[test]
fn unknown_command_is_a_usage_error() {
    let out = ttdiag().arg("frobnicate").output().expect("spawn ttdiag");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("USAGE") || stderr.contains("usage"),
        "{stderr}"
    );
}

#[test]
fn bad_flag_value_is_a_usage_error() {
    let out = ttdiag()
        .args(["simulate", "--nodes", "not-a-number"])
        .output()
        .expect("spawn ttdiag");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn missing_replay_trace_is_an_internal_error() {
    let out = ttdiag()
        .args(["replay", "/nonexistent/ttdiag-no-such.json"])
        .output()
        .expect("spawn ttdiag");
    assert_eq!(out.status.code(), Some(101), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("no-such"), "error names the path: {stderr}");
}

#[test]
fn chaos_campaign_with_quarantines_still_exits_zero() {
    let out = ttdiag()
        .args([
            "campaign",
            "--reps",
            "1",
            "--chaos-seed",
            "5",
            "--chaos-panic",
            "400",
        ])
        .output()
        .expect("spawn ttdiag");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("quarantined"), "{stdout}");
}
