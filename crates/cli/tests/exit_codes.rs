//! Process-level checks of the documented exit-code taxonomy:
//! `0` success, `1` protocol counterexample, `2` usage error, `101`
//! internal error (mirroring Rust's panic exit status).

use std::process::Command;

fn ttdiag() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ttdiag"))
}

#[test]
fn success_exits_zero() {
    let out = ttdiag()
        .args(["tune", "automotive"])
        .output()
        .expect("spawn ttdiag");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
}

#[test]
fn unknown_command_is_a_usage_error() {
    let out = ttdiag().arg("frobnicate").output().expect("spawn ttdiag");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("USAGE") || stderr.contains("usage"),
        "{stderr}"
    );
}

#[test]
fn bad_flag_value_is_a_usage_error() {
    let out = ttdiag()
        .args(["simulate", "--nodes", "not-a-number"])
        .output()
        .expect("spawn ttdiag");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn unknown_domain_is_a_usage_error_in_tune_and_isolation() {
    // Both commands route through the same `domain_setup` validation, so
    // an unknown domain is a usage error (2) — not a silent default.
    for cmd in ["tune", "isolation"] {
        let out = ttdiag()
            .args([cmd, "maritime"])
            .output()
            .expect("spawn ttdiag");
        assert_eq!(out.status.code(), Some(2), "{cmd}: {out:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("unknown domain"), "{cmd}: {stderr}");
    }
}

#[test]
fn bad_tune_sweep_axis_is_a_usage_error() {
    let out = ttdiag()
        .args(["tune", "sweep", "--rate", "bogus"])
        .output()
        .expect("spawn ttdiag");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn tiny_tune_sweep_exits_zero() {
    let out = ttdiag()
        .args([
            "tune",
            "sweep",
            "--nodes",
            "4",
            "--rounds",
            "32",
            "--penalty",
            "1",
            "--reward",
            "4",
            "--crit",
            "1",
            "--intermittent",
            "0",
            "--experiments",
            "16",
            "--batch",
            "8",
        ])
        .output()
        .expect("spawn ttdiag");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("tune sweep: 1 cells"), "{stdout}");
}

#[test]
fn missing_replay_trace_is_an_internal_error() {
    let out = ttdiag()
        .args(["replay", "/nonexistent/ttdiag-no-such.json"])
        .output()
        .expect("spawn ttdiag");
    assert_eq!(out.status.code(), Some(101), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("no-such"), "error names the path: {stderr}");
}

#[test]
fn chaos_campaign_with_quarantines_still_exits_zero() {
    let out = ttdiag()
        .args([
            "campaign",
            "--reps",
            "1",
            "--chaos-seed",
            "5",
            "--chaos-panic",
            "400",
        ])
        .output()
        .expect("spawn ttdiag");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("quarantined"), "{stdout}");
}

#[test]
fn unknown_feed_name_is_a_usage_error() {
    let out = ttdiag()
        .args(["tail", "--feed", "flamegraphs"])
        .output()
        .expect("spawn ttdiag");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown feed"), "{stderr}");
}

#[test]
fn missing_tail_feed_is_a_usage_error() {
    let out = ttdiag().arg("tail").output().expect("spawn ttdiag");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn connecting_to_a_dead_server_is_a_usage_error() {
    // The socket path names nothing listening — for every client command.
    let sock = "/tmp/ttdiag-no-such-server.sock";
    let _ = std::fs::remove_file(sock);
    for args in [
        vec!["submit", "campaign"],
        vec!["job", "list"],
        vec!["job", "status", "1"],
        vec!["watch", "1"],
        vec!["tail", "--feed", "progress"],
        vec!["shutdown"],
    ] {
        let mut full = args.clone();
        full.extend(["--socket", sock]);
        let out = ttdiag().args(&full).output().expect("spawn ttdiag");
        assert_eq!(out.status.code(), Some(2), "{args:?}: {out:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("cannot connect"), "{args:?}: {stderr}");
    }
}

#[test]
fn unbindable_socket_path_is_a_usage_error() {
    let out = ttdiag()
        .args([
            "serve",
            "--socket",
            "/nonexistent-dir/ttdiag.sock",
            "--state",
            "/tmp/ttdiag-exitcode-state",
        ])
        .output()
        .expect("spawn ttdiag");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot bind"), "{stderr}");
}

#[test]
fn unknown_explore_protocol_is_a_usage_error() {
    let out = ttdiag()
        .args(["explore", "--protocol", "bogus"])
        .output()
        .expect("spawn ttdiag");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown protocol"), "{stderr}");
}

#[test]
fn explore_accepts_every_documented_protocol() {
    for protocol in ["diag", "membership", "lowlat"] {
        let out = ttdiag()
            .args(["explore", "--protocol", protocol, "--budget", "10"])
            .output()
            .expect("spawn ttdiag");
        assert_eq!(out.status.code(), Some(0), "{protocol}: {out:?}");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains(&format!("protocol={protocol}")),
            "{protocol}: {stdout}"
        );
    }
}

#[test]
fn net_without_a_subcommand_is_a_usage_error() {
    let out = ttdiag().arg("net").output().expect("spawn ttdiag");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("needs a subcommand"), "{stderr}");
}

#[test]
fn unknown_net_subcommand_is_a_usage_error() {
    let out = ttdiag()
        .args(["net", "frobnicate"])
        .output()
        .expect("spawn ttdiag");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown net subcommand"), "{stderr}");
}

#[test]
fn undersized_net_cluster_is_a_usage_error() {
    let out = ttdiag()
        .args(["net", "run", "--nodes", "1"])
        .output()
        .expect("spawn ttdiag");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn bad_net_peer_address_is_a_usage_error() {
    let out = ttdiag()
        .args([
            "net",
            "node",
            "--id",
            "1",
            "--peers",
            "not-an-addr,127.0.0.1:9",
        ])
        .output()
        .expect("spawn ttdiag");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("bad peer address"), "{stderr}");
}

#[test]
fn bad_net_bind_address_is_a_usage_error() {
    let out = ttdiag()
        .args([
            "net",
            "node",
            "--id",
            "1",
            "--bind",
            "999.999.999.999:77777",
            "--peers",
            "127.0.0.1:19901,127.0.0.1:19902",
        ])
        .output()
        .expect("spawn ttdiag");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("bad bind address"), "{stderr}");
}

#[test]
fn duplicate_net_peers_are_a_usage_error() {
    let out = ttdiag()
        .args([
            "net",
            "node",
            "--id",
            "1",
            "--peers",
            "127.0.0.1:19903,127.0.0.1:19903",
        ])
        .output()
        .expect("spawn ttdiag");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("inconsistent peer list"), "{stderr}");
}

#[test]
fn out_of_range_net_node_id_is_a_usage_error() {
    let out = ttdiag()
        .args([
            "net",
            "node",
            "--id",
            "3",
            "--peers",
            "127.0.0.1:19904,127.0.0.1:19905",
        ])
        .output()
        .expect("spawn ttdiag");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("outside the peer list"), "{stderr}");
}

#[test]
fn net_node_port_in_use_is_a_usage_error() {
    // Hold the port so the node's bind fails.
    let holder = std::net::UdpSocket::bind("127.0.0.1:0").expect("bind holder");
    let addr = holder.local_addr().expect("holder addr").to_string();
    let peers = format!("{addr},127.0.0.1:19906");
    let out = ttdiag()
        .args(["net", "node", "--id", "1", "--peers", &peers])
        .output()
        .expect("spawn ttdiag");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("binding"), "{stderr}");
}

#[test]
fn small_net_run_exits_zero_and_reports_agreement() {
    let out = ttdiag()
        .args([
            "net",
            "run",
            "--nodes",
            "3",
            "--rounds",
            "10",
            "--penalty",
            "4",
            "--check",
        ])
        .output()
        .expect("spawn ttdiag");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("convergence: ok"), "{stdout}");
    assert!(stdout.contains("verdict cross-check: agree"), "{stdout}");
}

#[test]
fn bad_submit_job_kind_is_a_usage_error() {
    let out = ttdiag()
        .args(["submit", "bake-cookies"])
        .output()
        .expect("spawn ttdiag");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown job kind"), "{stderr}");
}
