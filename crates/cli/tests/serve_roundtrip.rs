//! End-to-end checks of `ttdiag serve` over a real Unix admin socket:
//! submit → watch → tail round trips, halt + checkpoint-resume of a job
//! submitted over the socket, and a clean shutdown.

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn ttdiag() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ttdiag"))
}

/// A serve process bound to its own socket/state pair, killed on drop so
/// a failing test cannot leak a server.
struct Server {
    child: Child,
    socket: String,
    dir: PathBuf,
}

impl Server {
    fn start(tag: &str) -> Server {
        let dir = std::env::temp_dir().join(format!("ttdiag-serve-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let socket = dir.join("admin.sock").to_string_lossy().into_owned();
        let state = dir.join("state").to_string_lossy().into_owned();
        let child = ttdiag()
            .args(["serve", "--socket", &socket, "--state", &state])
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn ttdiag serve");
        let server = Server { child, socket, dir };
        // The socket appears once the listener is bound.
        let deadline = Instant::now() + Duration::from_secs(30);
        while !std::path::Path::new(&server.socket).exists() {
            assert!(Instant::now() < deadline, "serve never bound its socket");
            std::thread::sleep(Duration::from_millis(20));
        }
        server
    }

    fn client(&self, args: &[&str]) -> std::process::Output {
        let mut full = args.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        full.extend(["--socket".to_string(), self.socket.clone()]);
        ttdiag().args(&full).output().expect("spawn ttdiag client")
    }

    /// Runs a client command, asserting exit 0 and returning stdout.
    fn ok(&self, args: &[&str]) -> String {
        let out = self.client(args);
        assert_eq!(
            out.status.code(),
            Some(0),
            "{args:?}: stdout={} stderr={}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    }

    fn shutdown_and_wait(mut self) {
        let out = self.client(&["shutdown"]);
        assert_eq!(out.status.code(), Some(0), "{out:?}");
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            match self.child.try_wait().expect("poll serve") {
                Some(status) => {
                    assert!(status.success(), "serve exited {status:?}");
                    break;
                }
                None => {
                    assert!(
                        Instant::now() < deadline,
                        "serve never exited after shutdown"
                    );
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
        assert!(
            !std::path::Path::new(&self.socket).exists(),
            "socket not cleaned up"
        );
        let _ = std::fs::remove_dir_all(&self.dir);
        // Disarm the drop guard: the child has already exited.
        std::mem::forget(self);
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Extracts the job id from a `job N [...]` submit/status line.
fn job_id(line: &str) -> u64 {
    let rest = line.strip_prefix("job ").expect("job line");
    rest.split_whitespace()
        .next()
        .unwrap()
        .parse()
        .expect("job id")
}

#[test]
fn submit_watch_tail_round_trip() {
    let server = Server::start("roundtrip");
    // Tail the progress feed concurrently with the job so live events (not
    // just the ring backlog) flow through the subscription.
    let tail_socket = server.socket.clone();
    let tail = std::thread::spawn(move || {
        ttdiag()
            .args(["tail", "--feed", "progress", "--socket", &tail_socket])
            .output()
            .expect("spawn tail")
    });
    // Give the tail subscriber time to attach: events published with no
    // subscriber are (by design) not retained anywhere.
    std::thread::sleep(Duration::from_secs(2));
    let submitted = server.ok(&["submit", "campaign", "--reps", "1", "--chunk", "7"]);
    assert!(submitted.contains("[campaign] queued"), "{submitted}");
    assert!(submitted.contains("host:"), "{submitted}");
    let id = job_id(&submitted);

    let watched = server.ok(&["watch", &id.to_string()]);
    assert!(watched.contains("PASS"), "{watched}");

    let status = server.ok(&["job", "status", &id.to_string()]);
    assert!(status.contains("[campaign] done"), "{status}");
    assert!(status.contains("18/18 settled"), "{status}");
    // Satellite: the chunked executor wrote checkpoints and the status
    // response carries the sequence number.
    assert!(status.contains("checkpoint #"), "{status}");
    let listed = server.ok(&["job", "list"]);
    assert!(listed.contains(&format!("job {id}")), "{listed}");

    server.shutdown_and_wait();

    let out = tail.join().unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().filter(|l| !l.is_empty()).collect();
    // The progress feed carried the whole job lifecycle...
    assert!(lines.iter().any(|l| l.contains("JobStarted")), "{stdout}");
    assert!(lines.iter().any(|l| l.contains("JobFinished")), "{stdout}");
    // ...every frame is seq-framed, and the keeping-up subscriber dropped
    // nothing (asserted from the end accounting line).
    assert!(
        lines
            .iter()
            .all(|l| l.contains("\"seq\"") || l.starts_with("{\"end\"")),
        "{stdout}"
    );
    let end = lines.last().expect("end line");
    assert!(end.starts_with("{\"end\""), "{stdout}");
    assert!(end.contains("\"dropped\":0"), "{end}");
}

#[test]
fn halt_and_resume_over_the_socket() {
    let server = Server::start("haltresume");
    // A long job (34 classes x 4 reps at n=8) in tiny chunks, so a halt
    // request reliably lands before completion.
    let submitted = server.ok(&[
        "submit",
        "campaign",
        "--nodes",
        "8",
        "--reps",
        "4",
        "--chunk",
        "2",
        "--threads",
        "2",
    ]);
    let id = job_id(&submitted).to_string();
    // Wait until it is running, then halt.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let status = server.ok(&["job", "status", &id]);
        if status.contains("running") {
            break;
        }
        assert!(
            !status.contains("done") && Instant::now() < deadline,
            "job finished before the halt could land: {status}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let halted = server.ok(&["job", "halt", &id]);
    assert!(
        halted.contains("halt requested") || halted.contains("halted"),
        "{halted}"
    );
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let status = server.ok(&["job", "status", &id]);
        if status.contains("[campaign] halted") {
            assert!(status.contains("checkpoint #"), "{status}");
            break;
        }
        assert!(Instant::now() < deadline, "job never halted: {status}");
        std::thread::sleep(Duration::from_millis(20));
    }
    // Resume from the checkpoint over the socket and watch it finish.
    server.ok(&["job", "resume", &id]);
    let watched = server.ok(&["watch", &id]);
    assert!(watched.contains("PASS"), "{watched}");
    let status = server.ok(&["job", "status", &id]);
    assert!(status.contains("136/136 settled"), "{status}");
    server.shutdown_and_wait();
}

#[test]
fn server_side_rejections_are_usage_errors() {
    let server = Server::start("rejections");
    // Unknown job id.
    let out = server.client(&["job", "status", "99"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("unknown job"),
        "{out:?}"
    );
    // Resuming a job that is not halted.
    let submitted = server.ok(&["submit", "explore", "--budget", "6", "--chunk", "3"]);
    let id = job_id(&submitted).to_string();
    let out = server.client(&["job", "resume", "999"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    // The submitted job still completes.
    let watched = server.ok(&["watch", &id]);
    assert!(watched.contains("PASS"), "{watched}");
    server.shutdown_and_wait();
}
