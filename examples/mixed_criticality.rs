//! Mixed-criticality integration: the paper's central tuning idea is that
//! *different nodes host functions of different criticality*, so the same
//! physical fault pattern must trigger recovery at different speeds.
//! Here one cluster hosts an X-by-wire node (SC, s = 40), a stability
//! control node (SR, s = 6) and two comfort nodes (NSR, s = 1) — the
//! automotive integration of Table 2 — and each node suffers the same
//! intermittent fault pattern.
//!
//! Run with: `cargo run -p tt-bench --example mixed_criticality`

use tt_core::{DiagJob, ProtocolConfig};
use tt_fault::{DisturbanceNode, SenderBurst};
use tt_sim::{ClusterBuilder, NodeId, RoundIndex};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Per-node criticality levels straight from the Table 2 tuning:
    // node 1 = SC (40), node 2 = SR (6), nodes 3-4 = NSR (1). P = 197.
    let config = ProtocolConfig::builder(4)
        .penalty_threshold(197)
        .reward_threshold(1_000_000)
        .criticalities(vec![40, 6, 1, 1])
        .build()?;

    // Every node becomes intermittently faulty from round 10 on: one
    // faulty slot every 4 rounds (an internal fault per the extended fault
    // model — time to reappearance far below R x T).
    let mut pipeline = DisturbanceNode::new(0);
    for node in NodeId::all(4) {
        let mut r = 10u64;
        while r < 4_000 {
            pipeline.push(SenderBurst::new(node, RoundIndex::new(r), 1));
            r += 4;
        }
    }

    let mut cluster = ClusterBuilder::new(4).build_with_jobs(
        |id| Box::new(DiagJob::new(id, config.clone())),
        Box::new(pipeline),
    );
    cluster.run_rounds(1_000);

    let diag: &DiagJob = cluster.job_as(NodeId::new(1))?;
    println!("Same intermittent fault on every node; isolation by criticality:");
    let mut last = 0.0;
    for iso in diag.isolations() {
        let t = iso.decided_at.as_u64() as f64 * 2.5 / 1000.0;
        let s = config.criticalities()[iso.node.index()];
        println!(
            "  {} (s = {:>2}) isolated at round {:>4} = {:>6.3} s",
            iso.node,
            s,
            iso.decided_at.as_u64(),
            t
        );
        assert!(t >= last, "higher criticality isolates sooner");
        last = t;
    }
    // Order: SC first (5 faults x 40 > 197), then SR (33 x 6), then the
    // two NSR nodes (198 x 1).
    let order: Vec<NodeId> = diag.isolations().iter().map(|i| i.node).collect();
    assert_eq!(order[0], NodeId::new(1), "SC node reacts first");
    assert_eq!(order[1], NodeId::new(2), "SR node second");
    println!(
        "\nOne penalty threshold (P = 197), one protocol — but the criticality\nlevels s_i translate it into per-function diagnostic latencies, exactly\nthe integration argument of the paper's Sec. 9."
    );
    Ok(())
}
