//! Platform portability (paper Sec. 10): the add-on protocol targets "any
//! TT system" — FlexRay, TTP/C, SAFEbus, TT-Ethernet. The paper's prototype
//! ran a TTP-like 4-node, 2.5 ms profile; this example re-runs the *same
//! tuning procedure* on a FlexRay-flavoured profile (16 nodes in the static
//! segment, 5 ms communication cycle) and shows how the constants — but not
//! the procedure — change.
//!
//! Run with: `cargo run -p tt-bench --example flexray_profile`

use tt_analysis::{measure_time_to_isolation, tune, CriticalityClass, DomainSetup};
use tt_fault::TransientScenario;
use tt_sim::Nanos;

fn flexray_setup() -> DomainSetup {
    DomainSetup {
        domain: "Automotive (FlexRay profile)".into(),
        classes: vec![
            CriticalityClass {
                name: "Safety Critical (SC)".into(),
                example: "X-by-wire".into(),
                tolerated_outage: Nanos::from_millis(20),
                tolerated_outage_hi: Some(Nanos::from_millis(50)),
            },
            CriticalityClass {
                name: "Safety Relevant (SR)".into(),
                example: "Stability control".into(),
                tolerated_outage: Nanos::from_millis(100),
                tolerated_outage_hi: Some(Nanos::from_millis(200)),
            },
            CriticalityClass {
                name: "Non Safety Relevant (NSR)".into(),
                example: "Door control".into(),
                tolerated_outage: Nanos::from_millis(500),
                tolerated_outage_hi: Some(Nanos::from_millis(1000)),
            },
        ],
        n_nodes: 16,
        round: Nanos::from_millis(5), // FlexRay communication cycle
        reward_threshold: 500_000,    // same ~42 min horizon at 5 ms rounds
    }
}

fn main() {
    let setup = flexray_setup();
    let tuned = tune(&setup);
    println!(
        "{}: {} nodes, {} cycles",
        tuned.domain, setup.n_nodes, tuned.round
    );
    println!("\nSame tolerated outages, same procedure, new constants (paper: P = 197 at 2.5 ms):");
    for row in &tuned.rows {
        println!(
            "  {:<28} outage >= {:<9} budget {:>3}  =>  s = {}",
            row.class.name,
            format!("{}", row.class.tolerated_outage),
            row.penalty_budget,
            row.criticality
        );
    }
    println!(
        "  P = {}   R = {:.0e}  (R x T = {:.0} min, the Fig. 3 horizon preserved)",
        tuned.penalty_threshold,
        tuned.reward_threshold as f64,
        (tuned.round * tuned.reward_threshold).as_secs_f64() / 60.0
    );
    // Half the rounds fit in each budget at 5 ms, so every p_i halves
    // (minus the fixed 3-round lag): P = 500/5 - 3 = 97.
    assert_eq!(tuned.penalty_threshold, 97);
    assert_eq!(
        tuned.rows.iter().map(|r| r.criticality).collect::<Vec<_>>(),
        vec![97, 6, 1] // SC budget is only 1 round at 5 ms: s = ceil(97/1)
    );

    // And the availability behaviour transfers: the blinking light still
    // costs the SC class its node first.
    let blinking = TransientScenario::blinking_light();
    println!("\nBlinking-light scenario on the FlexRay profile:");
    for row in &tuned.rows {
        let m = measure_time_to_isolation(
            &blinking,
            row.criticality,
            tuned.penalty_threshold,
            tuned.reward_threshold,
            tuned.round,
            setup.n_nodes,
        );
        match m.time_to_isolation {
            Some(t) => println!(
                "  {:<28} isolated after {:>7.3} s",
                row.class.name,
                t.as_secs_f64()
            ),
            None => println!("  {:<28} survives the whole scenario", row.class.name),
        }
    }
    println!(
        "\nThe protocol and the procedure are unchanged — only the platform profile\n(N, T) differs. That is the portability claim of Sec. 10, exercised."
    );
}
