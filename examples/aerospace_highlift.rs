//! Aerospace scenario: a High-Lift/Landing-Gear backbone (safety-critical
//! only), tuned per the paper (P = 17, R = 10^6), surviving a lightning
//! strike — and the reintegration extension keeping observation of the
//! (healthy) isolated node so it can rejoin once the disturbance passes.
//!
//! Run with: `cargo run -p tt-bench --example aerospace_highlift`

use tt_analysis::{aerospace_setup, measure_time_to_isolation, tune};
use tt_core::penalty::ReintegrationPolicy;
use tt_core::{DiagJob, ProtocolConfig};
use tt_fault::{DisturbanceNode, TransientScenario};
use tt_sim::{ClusterBuilder, CommunicationSchedule, Nanos, NodeId, TraceMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let setup = aerospace_setup();
    let tuned = tune(&setup);
    println!(
        "Tuned aerospace parameters: P = {}, R = {:.0e}, T = {} (paper Table 2)",
        tuned.penalty_threshold, tuned.reward_threshold as f64, tuned.round
    );

    // A lightning bolt produces 11 bursts of 40 ms with increasing time to
    // reappearance (Table 3). With P = 17 the second burst already exceeds
    // the threshold: the paper measures 0.205 s to (incorrect) isolation.
    let scenario = TransientScenario::lightning_bolt();
    let m = measure_time_to_isolation(
        &scenario,
        tuned.rows[0].criticality,
        tuned.penalty_threshold,
        tuned.reward_threshold,
        tuned.round,
        setup.n_nodes,
    );
    println!(
        "\nLightning bolt: first incorrect isolation after {:.3} s (paper: 0.205 s)",
        m.time_to_isolation.expect("isolated").as_secs_f64()
    );

    // The paper's closing suggestion (Sec. 9): keep isolated nodes under
    // observation and reintegrate them after a reward threshold. We rerun
    // the scenario with that extension: nodes drop out during the strike
    // but return to service afterwards.
    let config = ProtocolConfig::builder(setup.n_nodes)
        .penalty_threshold(tuned.penalty_threshold)
        .reward_threshold(tuned.reward_threshold)
        .uniform_criticality(1)
        .reintegration(ReintegrationPolicy::AfterRewards(400)) // 1 s clean
        .build()?;
    let sched = CommunicationSchedule::new(setup.n_nodes, tuned.round)?;
    let pipeline = scenario.install(DisturbanceNode::new(0), &sched, Nanos::from_millis(20));
    let mut cluster = ClusterBuilder::new(setup.n_nodes)
        .round_length(tuned.round)
        .trace_mode(TraceMode::Off)
        .build_with_jobs(
            |id| Box::new(DiagJob::with_logging(id, config.clone(), false)),
            Box::new(pipeline),
        );
    // Run through the strike plus two seconds of calm.
    let total = scenario.duration(Nanos::from_millis(20)) + Nanos::from_secs(2);
    cluster.run_rounds(total.as_nanos().div_ceil(tuned.round.as_nanos()));
    let diag: &DiagJob = cluster.job_as(NodeId::new(1))?;
    let isolated_during = diag.isolations().len();
    let active_after = NodeId::all(setup.n_nodes)
        .filter(|&n| diag.is_active(n))
        .count();
    println!(
        "\nWith the reintegration extension: {isolated_during} isolation decisions during \
         the strike,\nbut {active_after}/{} nodes active again two seconds after it passed.",
        setup.n_nodes
    );
    assert_eq!(active_after, setup.n_nodes);
    Ok(())
}
