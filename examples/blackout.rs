//! Communication blackout: a long transient burst kills every slot of four
//! whole TDMA rounds — including the rounds in which the local syndromes
//! about the blackout would be disseminated. Lemma 3: diagnosis of *other*
//! nodes still works from each node's own local syndrome, while
//! *self*-diagnosis needs a correct local collision detector — shown here
//! by breaking one detector and watching that node wrongly acquit itself.
//!
//! Run with: `cargo run -p tt-bench --example blackout`

use tt_core::{DiagJob, ProtocolConfig};
use tt_sim::{ClusterBuilder, CollisionDetectorMode, NodeId, RoundIndex, SlotEffect, TxCtx};

/// Rounds 10..14 fully lost: b = N for four consecutive rounds, so the
/// dissemination of the syndromes about rounds 10-11 is lost as well.
fn blackout_rounds(ctx: &TxCtx) -> SlotEffect {
    if (10..14).contains(&ctx.round.as_u64()) {
        SlotEffect::Benign
    } else {
        SlotEffect::Correct
    }
}

fn run(broken_detector: Option<NodeId>) -> Result<bool, Box<dyn std::error::Error>> {
    let config = ProtocolConfig::builder(4)
        .penalty_threshold(1_000)
        .reward_threshold(1_000)
        .build()?;
    let mut cluster = ClusterBuilder::new(4).build_with_jobs(
        |id| Box::new(DiagJob::new(id, config.clone())),
        Box::new(blackout_rounds),
    );
    if let Some(node) = broken_detector {
        cluster
            .controller_mut(node)?
            .set_collision_detector_mode(CollisionDetectorMode::StuckOk);
    }
    cluster.run_rounds(22);
    println!(
        "Verdicts for diagnosed round 11 ({}):",
        match broken_detector {
            Some(n) => format!("{n}'s collision detector stuck at OK"),
            None => "all collision detectors correct".into(),
        }
    );
    let mut verdicts = Vec::new();
    for obs in NodeId::all(4) {
        let d: &DiagJob = cluster.job_as(obs)?;
        let health = &d
            .health_for(RoundIndex::new(11))
            .expect("round 11 diagnosed")
            .health;
        let hv: String = health.iter().map(|&b| if b { '1' } else { '0' }).collect();
        println!("  as seen by {obs}: {hv}");
        verdicts.push(health.clone());
    }
    let consistent = verdicts.windows(2).all(|w| w[0] == w[1]);
    println!("  -> all nodes agree: {consistent}\n");
    Ok(consistent)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "Four TDMA rounds lost (10..13). The syndromes about rounds 10-11 are\n\
         themselves swallowed by the blackout, so every matrix column is ε and\n\
         self-diagnosis must fall back to the local collision detector.\n"
    );
    // With correct collision detectors every node convicts everyone —
    // including itself — consistently (Lemma 3, sufficiency).
    let ok = run(None)?;
    assert!(ok, "correct collision detectors give consistent diagnosis");
    // With node 2's detector stuck at OK, node 2 wrongly acquits itself
    // while everyone else convicts it (Lemma 3, necessity).
    let ok = run(Some(NodeId::new(2)))?;
    assert!(!ok, "a broken collision detector breaks self-diagnosis");
    println!(
        "A correct local collision detector is necessary (and sufficient) for\n\
         self-diagnosis during communication blackouts — exactly Lemma 3."
    );
    Ok(())
}
