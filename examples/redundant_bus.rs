//! Redundant bus channels: the paper's system model allows a replicated
//! communication bus (its prototype ran layered TTP over a redundant
//! network). A disturbance confined to one channel is masked entirely; the
//! diagnostic protocol only ever sees faults that defeat the redundancy.
//!
//! Run with: `cargo run -p tt-bench --example redundant_bus`

use tt_core::{DiagJob, ProtocolConfig};
use tt_fault::{DisturbanceNode, RandomNoise};
use tt_sim::{timeline, ClusterBuilder, NodeId, ReplicatedBus, RoundIndex, TraceMode};

fn noisy_channel(seed: u64) -> Box<DisturbanceNode> {
    // Heavy interference: 30 % of the slots on this channel are destroyed.
    Box::new(DisturbanceNode::new(seed).with(RandomNoise::window(0.3, 0, 30 * 4)))
}

fn run(channels: Vec<Box<dyn tt_sim::FaultPipeline>>) -> (usize, usize) {
    let config = ProtocolConfig::builder(4)
        .penalty_threshold(1_000)
        .reward_threshold(1_000)
        .build()
        .expect("valid");
    let mut cluster = ClusterBuilder::new(4)
        .trace_mode(TraceMode::Anomalies)
        .build_with_jobs(
            |id| Box::new(DiagJob::new(id, config.clone())),
            Box::new(ReplicatedBus::new(channels)),
        );
    cluster.run_rounds(30);
    // Only faults old enough to have completed the diagnosis pipeline
    // (lag 3 + dissemination) are expected to be convicted already.
    let diagnosable = |r: RoundIndex| r <= RoundIndex::new(30 - 4);
    let faults_on_wire = cluster
        .trace()
        .records()
        .iter()
        .filter(|rec| diagnosable(rec.round))
        .count();
    let diag: &DiagJob = cluster.job_as(NodeId::new(1)).expect("diag job");
    let convictions = cluster
        .trace()
        .records()
        .iter()
        .filter(|rec| diagnosable(rec.round))
        .filter(|rec| {
            diag.health_for(rec.round)
                .map(|h| !h.health[rec.sender.index()])
                .unwrap_or(false)
        })
        .count();
    if faults_on_wire > 0 {
        println!("{}", timeline::render_anomalies(cluster.trace(), 4, 1));
    }
    (faults_on_wire, convictions)
}

fn main() {
    println!("One noisy channel + one healthy channel (30% slot loss on A):");
    let (faults, convictions) = run(vec![noisy_channel(7), Box::new(tt_sim::NoFaults)]);
    println!(
        "  effective faults on the merged bus: {faults}, protocol convictions: {convictions}\n"
    );
    assert_eq!(faults, 0, "single-channel noise fully masked");
    assert_eq!(convictions, 0);

    println!("Both channels noisy (independent 30% slot loss each):");
    let (faults, convictions) = run(vec![noisy_channel(7), noisy_channel(8)]);
    println!(
        "\n  effective faults on the merged bus: {faults}, protocol convictions: {convictions}"
    );
    assert!(faults > 0, "coincident channel hits get through");
    assert_eq!(convictions, faults, "every effective fault is diagnosed");
    println!("\nRedundancy masks single-channel disturbances; only coincident hits reach\nthe protocol — which then detects every one of them (completeness).");
}
