//! The low-latency system-level variant (paper Sec. 10): constraining node
//! scheduling buys a 1-round detection latency (vs. up to 4 rounds for the
//! portable add-on) and a 2-round membership.
//!
//! Run with: `cargo run -p tt-bench --example lowlat_variant`

use tt_core::lowlat::LowLatCluster;
use tt_sim::{NodeId, RoundIndex, SlotEffect, TxCtx};

fn main() {
    // Node 3 fails benignly in round 6.
    let pipeline = |ctx: &TxCtx| {
        if ctx.round == RoundIndex::new(6) && ctx.sender == NodeId::new(3) {
            SlotEffect::Benign
        } else {
            SlotEffect::Correct
        }
    };
    let mut cluster = LowLatCluster::new(4, true, Box::new(pipeline));
    cluster.run_rounds(10);

    println!("Per-slot verdicts around the fault (node 1's view):");
    for v in cluster
        .verdicts(NodeId::new(1))
        .iter()
        .filter(|v| (5..=7).contains(&v.round.as_u64()))
    {
        println!(
            "  slot {:>2} (round {}, sender {}): {} — decided at slot {:>2}, latency {} slots",
            v.abs_slot,
            v.round.as_u64(),
            v.sender,
            if v.healthy { "healthy" } else { "FAULTY" },
            v.decided_at_slot,
            v.latency_slots()
        );
    }

    let v = cluster
        .verdict_for(NodeId::new(1), RoundIndex::new(6), NodeId::new(3))
        .expect("diagnosed");
    assert_eq!(v.latency_slots(), 4, "one TDMA round");
    println!(
        "\nDetection latency: {} slots = exactly one TDMA round (paper Sec. 10).",
        v.latency_slots()
    );

    println!("\nMembership views after the fault:");
    for node in NodeId::all(4) {
        let members: Vec<String> = cluster.view(node).iter().map(|n| n.to_string()).collect();
        println!("  {node}: {{{}}}", members.join(", "));
    }
    assert!(!cluster.view(NodeId::new(1)).contains(&NodeId::new(3)));
    println!("\nThe faulty sender is excluded within two rounds — half the best-case\nlatency of the portable add-on variant, at the price of constrained\nnode scheduling (the trade-off of Sec. 10).");
}
