//! Quickstart: add the diagnostic protocol to a simulated TT cluster,
//! crash a node, and watch the cluster detect and isolate it consistently.
//!
//! Run with: `cargo run -p tt-bench --example quickstart`

use tt_core::{DiagJob, ProtocolConfig};
use tt_sim::{ClusterBuilder, NodeId, RoundIndex, SlotEffect, TxCtx};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 4-node cluster with the paper's 2.5 ms TDMA rounds. Node 3 crashes
    // at round 12 and never sends a readable frame again.
    let crash = |ctx: &TxCtx| {
        if ctx.sender == NodeId::new(3) && ctx.round >= RoundIndex::new(12) {
            SlotEffect::Benign
        } else {
            SlotEffect::Correct
        }
    };

    // Tune the p/r algorithm: isolate after 4 correlated faults (P = 3,
    // criticality 1), forget after 100 clean rounds.
    let config = ProtocolConfig::builder(4)
        .penalty_threshold(3)
        .reward_threshold(100)
        .build()?;

    // The diagnostic job is an ordinary application-level job: one per
    // node, no changes to the platform.
    let mut cluster = ClusterBuilder::new(4).build_with_jobs(
        |id| Box::new(DiagJob::new(id, config.clone())),
        Box::new(crash),
    );

    cluster.run_rounds(30);

    // Every obedient node reached the same verdicts.
    println!("Per-round consistent health vectors (node 1's view):");
    let diag: &DiagJob = cluster.job_as(NodeId::new(1))?;
    for rec in diag.health_log().iter().take(14) {
        let hv: String = rec
            .health
            .iter()
            .map(|&ok| if ok { '1' } else { '0' })
            .collect();
        println!(
            "  diagnosed round {:>2} (decided at {:>2}): {}",
            rec.diagnosed.as_u64(),
            rec.decided_at.as_u64(),
            hv
        );
    }

    println!("\nIsolation decisions:");
    for obs in NodeId::all(4) {
        let d: &DiagJob = cluster.job_as(obs)?;
        for iso in d.isolations() {
            println!(
                "  {obs} isolated {} at round {} (fault diagnosed in round {})",
                iso.node,
                iso.decided_at.as_u64(),
                iso.diagnosed.as_u64()
            );
        }
    }

    let d1: &DiagJob = cluster.job_as(NodeId::new(1))?;
    assert!(!d1.is_active(NodeId::new(3)), "crashed node is isolated");
    assert!(d1.is_active(NodeId::new(1)) && d1.is_active(NodeId::new(2)));
    println!("\nNode 3 is isolated; nodes 1, 2, 4 continue. All views agree.");
    Ok(())
}
