//! Automotive scenario: an X-by-wire platform integrating functions of
//! three criticality classes, tuned exactly as in the paper (Table 2), then
//! driven through the blinking-light abnormal transient scenario (Table 3)
//! to compare availability per class (Table 4).
//!
//! Run with: `cargo run -p tt-bench --example automotive_xbywire`

use tt_analysis::{automotive_setup, measure_time_to_isolation, tune};
use tt_fault::TransientScenario;
use tt_sim::Nanos;

fn main() {
    // 1. Tune: inject continuous faulty bursts, measure the penalty budget
    //    each class's tolerated outage leaves, derive P and s_i.
    let setup = automotive_setup();
    let tuned = tune(&setup);
    println!("Tuned automotive parameters (paper Table 2):");
    println!(
        "  P = {}   R = {:.0e}   T = {}",
        tuned.penalty_threshold, tuned.reward_threshold as f64, tuned.round
    );
    for row in &tuned.rows {
        println!(
            "  {:<28} outage >= {:<8} penalty budget {:>3}  =>  s = {}",
            row.class.name,
            format!("{}", row.class.tolerated_outage),
            row.penalty_budget,
            row.criticality
        );
    }

    // 2. Abnormal transients: a blinking light (open relay) hammers the bus
    //    with 10 ms bursts every 500 ms. All nodes are healthy; how long
    //    until the p/r algorithm incorrectly isolates one, per class?
    let scenario = TransientScenario::blinking_light();
    println!(
        "\nBlinking-light scenario: {} bursts of 10 ms, 500 ms reappearance",
        scenario.burst_count()
    );
    println!("\nTime to incorrect isolation (paper Table 4):");
    for row in &tuned.rows {
        let m = measure_time_to_isolation(
            &scenario,
            row.criticality,
            tuned.penalty_threshold,
            tuned.reward_threshold,
            tuned.round,
            setup.n_nodes,
        );
        match m.time_to_isolation {
            Some(t) => println!(
                "  {:<28} isolated after {:>7.3} s",
                row.class.name,
                t.as_secs_f64()
            ),
            None => println!("  {:<28} survived the whole scenario", row.class.name),
        }
    }

    // 3. The counterfactual the paper argues against: isolating on the
    //    first fault would take the whole system down on the first burst.
    let m = measure_time_to_isolation(
        &scenario,
        2,
        1,
        tuned.reward_threshold,
        tuned.round,
        setup.n_nodes,
    );
    println!(
        "\nWithout the p/r delay (isolate on first fault): all nodes lost after {:.3} s — \na single abnormal transient period would restart the whole vehicle network.",
        m.time_to_isolation.unwrap_or(Nanos::ZERO).as_secs_f64()
    );
}
