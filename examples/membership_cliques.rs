//! Membership: asymmetric faults split the receivers into cliques; the
//! membership protocol detects the minority clique via minority accusations
//! and installs a new agreed view (paper Sec. 7, Theorem 2).
//!
//! Run with: `cargo run -p tt-bench --example membership_cliques`

use tt_core::{MembershipJob, ProtocolConfig};
use tt_fault::{CliquePartition, DisturbanceNode};
use tt_sim::{ClusterBuilder, NodeId, RoundIndex};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's Sec. 8 clique experiment: the disturbance node sits
    // between node 1 and the rest of the cluster and disconnects the bus
    // during other nodes' sending slots in round 10. Node 1 stops receiving
    // and becomes a minority clique of one.
    let pipeline =
        DisturbanceNode::new(7).with(CliquePartition::new(NodeId::new(1), RoundIndex::new(10), 1));

    let config = ProtocolConfig::builder(4)
        .penalty_threshold(100)
        .reward_threshold(1_000)
        .build()?;
    let mut cluster = ClusterBuilder::new(4).build_with_jobs(
        |id| Box::new(MembershipJob::new(id, config.clone())),
        Box::new(pipeline),
    );
    cluster.run_rounds(24);

    println!("Minority accusations issued (accuser -> accused @ round):");
    for obs in NodeId::all(4) {
        let m: &MembershipJob = cluster.job_as(obs)?;
        for (round, accused) in m.accusations() {
            println!("  {obs} -> {accused} @ round {}", round.as_u64());
        }
    }

    println!("\nView history per node:");
    for obs in NodeId::all(4) {
        let m: &MembershipJob = cluster.job_as(obs)?;
        for v in m.views() {
            let members: Vec<String> = v.members.iter().map(|n| n.to_string()).collect();
            println!(
                "  {obs}: view {} installed at round {:>2} = {{{}}}",
                v.view_id,
                v.installed_at.as_u64(),
                members.join(", ")
            );
        }
    }

    // All nodes agree on the final view, which excludes the minority.
    let final_views: Vec<Vec<NodeId>> = NodeId::all(4)
        .map(|obs| {
            let m: &MembershipJob = cluster.job_as(obs).expect("membership job");
            m.current_view().members.clone()
        })
        .collect();
    assert!(final_views.windows(2).all(|w| w[0] == w[1]));
    assert!(!final_views[0].contains(&NodeId::new(1)));
    println!(
        "\nAgreed final view excludes the minority clique (node 1): {:?}",
        final_views[0]
    );
    Ok(())
}
