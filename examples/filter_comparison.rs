//! Compares the paper's penalty/reward filter against its ancestor
//! (α-count) and against a TTP/C-style built-in membership with no
//! filtering at all — on both availability (abnormal transients must not
//! kill healthy nodes) and detection (unhealthy intermittent nodes must be
//! isolated).
//!
//! Run with: `cargo run -p tt-bench --example filter_comparison`

fn main() {
    println!("{}", tt_bench::comparison_report());
}
