//! Slightly-Off-Specification faults from first principles: instead of
//! injecting fault classes, this example runs the cluster over a bus whose
//! reception outcomes emerge from simulated *clock synchronization* — local
//! oscillators with bounded-rate correction (Welch–Lynch fault-tolerant
//! average). When one node's oscillator degrades beyond the correction
//! capability, it drifts out of the ensemble, crossing the SOS zone where
//! only *some* receivers reject its frames (the paper's Sec. 4 asymmetric
//! fault source, after Ademaj et al. [17]) — and the diagnostic protocol's
//! p/r algorithm isolates it as the intermittent/unhealthy node it is.
//!
//! Run with: `cargo run -p tt-bench --example sos_faults`

use tt_core::{DiagJob, ProtocolConfig};
use tt_sim::{
    timeline, ClockConfig, ClockDrivenPipeline, ClockEnsemble, ClusterBuilder, Nanos, NodeId,
    TraceMode,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 4-node ensemble with a tight 2 µs reception window. Node 2's
    // oscillator degrades to +140 ppm at round 10: it gains 350 ns per
    // round but can correct only 300, so it walks out of sync at
    // ~50 ns/round.
    let mut clock_cfg = ClockConfig::healthy(4);
    clock_cfg.window_half = Nanos::from_micros(2);
    clock_cfg.measurement_jitter_ns = 120.0;
    let clocks = ClockEnsemble::new(clock_cfg, 7);
    let pipeline = ClockDrivenPipeline::new(clocks).degrade_at(10, 1, 140.0);

    let config = ProtocolConfig::builder(4)
        .penalty_threshold(40)
        .reward_threshold(1_000_000)
        .build()?;
    let mut cluster = ClusterBuilder::new(4)
        .trace_mode(TraceMode::Anomalies)
        .build_with_jobs(
            |id| Box::new(DiagJob::new(id, config.clone())),
            Box::new(pipeline),
        );
    cluster.run_rounds(400);

    // What physically happened on the bus, per the ground-truth trace.
    let trace = cluster.trace();
    let (mut asym, mut benign) = (0usize, 0usize);
    for rec in trace.records() {
        match rec.class {
            tt_sim::SlotFaultClass::Asymmetric => asym += 1,
            tt_sim::SlotFaultClass::Benign => benign += 1,
            _ => {}
        }
    }
    println!(
        "Emergent faults on node 2's slots: {asym} asymmetric (SOS zone), {benign} benign (fully out of spec)"
    );
    let first = trace.records().first().expect("faults occurred");
    println!(
        "First mistimed frame observed in round {} — oscillator degraded at round 10\n",
        first.round.as_u64()
    );
    println!(
        "{}",
        &timeline::render(trace, 4, first.round, first.round + 8)
    );

    // The protocol's view: consistent diagnosis and eventual isolation.
    let diag: &DiagJob = cluster.job_as(NodeId::new(1))?;
    assert!(asym > 0, "the SOS zone was crossed");
    assert!(benign > 0, "the node eventually left the window entirely");
    assert!(!diag.is_active(NodeId::new(2)), "unhealthy node isolated");
    let iso = diag.isolations()[0];
    println!(
        "Node 2 isolated at round {} (penalty {} > P = 40) — diagnosed as an\nintermittent-then-permanent fault, exactly the paper's extended fault model.",
        iso.decided_at.as_u64(),
        diag.penalty(NodeId::new(2)),
    );
    Ok(())
}
