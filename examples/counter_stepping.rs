//! The Sec. 8 penalty/reward stepping experiment, visualized: a fault is
//! injected in one node's sending slot every second round for 20 rounds,
//! so "either the penalty or the reward counter should be increased at
//! every round" — watch both counters evolve.
//!
//! Run with: `cargo run -p tt-bench --example counter_stepping`

use tt_analysis::step_chart;
use tt_core::{DiagJob, ProtocolConfig};
use tt_sim::{ClusterBuilder, NodeId, SlotEffect, TxCtx};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let faulty = NodeId::new(2);
    let first = 8u64;
    // Faults in node 2's slot at rounds 8, 10, 12, ..., 26.
    let stepper = move |ctx: &TxCtx| {
        let r = ctx.round.as_u64();
        if ctx.sender == faulty && r >= first && r < first + 20 && (r - first).is_multiple_of(2) {
            SlotEffect::Benign
        } else {
            SlotEffect::Correct
        }
    };
    let config = ProtocolConfig::builder(4)
        .penalty_threshold(1_000)
        .reward_threshold(5) // small R so resets are visible after recovery
        .build()?;
    let mut cluster = ClusterBuilder::new(4).build_with_jobs(
        |id| Box::new(DiagJob::new(id, config.clone()).with_counter_trace()),
        Box::new(stepper),
    );
    cluster.run_rounds(40);

    let diag: &DiagJob = cluster.job_as(NodeId::new(1))?;
    let trace = diag.counter_trace();
    let penalties: Vec<u64> = trace.iter().map(|s| s.penalties[faulty.index()]).collect();
    let rewards: Vec<u64> = trace.iter().map(|s| s.rewards[faulty.index()]).collect();

    println!(
        "Faults in {faulty}'s slot every 2nd round (rounds {first}..{}), R = 5:\n",
        first + 19
    );
    println!("{}", step_chart("penalty counter", &penalties, 10));
    println!("{}", step_chart("reward counter", &rewards, 5));

    // The paper's check: inside the window, exactly one of the two
    // counters steps at every round.
    let mut steps = 0;
    for w in trace.windows(2) {
        let d = w[1].diagnosed.as_u64();
        if d > first && d < first + 20 {
            let p_inc = w[1].penalties[faulty.index()] > w[0].penalties[faulty.index()];
            let r_inc = w[1].rewards[faulty.index()] > w[0].rewards[faulty.index()];
            assert!(
                p_inc ^ r_inc,
                "round {d}: exactly one counter must increase"
            );
            steps += 1;
        }
    }
    println!("Verified: one counter stepped in each of the {steps} in-window rounds.");
    // After the window, 5 clean rounds reach R and reset the memory.
    let last = trace.last().unwrap();
    assert_eq!(
        last.penalties[faulty.index()],
        0,
        "reset after R clean rounds"
    );
    println!("After the window, R = 5 clean rounds erased the fault memory (penalty back to 0).");
    Ok(())
}
