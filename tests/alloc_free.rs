//! Proves the tentpole claim: with `TraceMode::Off`, steady-state
//! `Cluster::run_round` performs no heap allocation — the engine reuses its
//! cluster-owned scratch buffers and `Bytes` payload clones are reference
//! count bumps. The same holds with the observability layer attached via
//! the default `NoopSink`: the metrics hooks are disabled no-ops, so
//! instrumentation is zero-cost unless a recording sink is installed.
//!
//! The whole check lives in ONE `#[test]` on purpose: the counting
//! allocator is process-global, and concurrent tests in the same binary
//! would pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use std::sync::Arc;

use tt_core::{BatchDiagJob, BatchLaneParams, DiagJob, ProtocolConfig};
use tt_sim::{
    BatchCluster, BatchFaultPlan, ClusterBuilder, LaneEffect, LaneFault, NoFaults, NoopSink,
    NoopTraceSink, RecordingSink, RecordingTraceSink, RoundIndex, SlotEffect, StreamHub,
    StreamingSink, StreamingTraceSink, TraceMode, TxCtx,
};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::SeqCst)
}

/// Runs `measure` up to three times and returns the minimum allocation
/// delta observed. The counting allocator is process-global, so another
/// thread in the test process (e.g. the libtest harness) can sneak a stray
/// allocation into a measurement window; the minimum over a few attempts
/// isolates the deterministic per-round cost the test pins down.
fn min_allocation_delta(mut measure: impl FnMut() -> u64) -> u64 {
    (0..3).map(|_| measure()).min().expect("three attempts")
}

#[test]
fn steady_state_run_round_allocates_nothing_with_trace_off() {
    // Healthy bus.
    let mut cluster = ClusterBuilder::new(8)
        .trace_mode(TraceMode::Off)
        .build(Box::new(NoFaults))
        .expect("valid cluster");
    // Warm-up: fills the engine scratch buffers and the controllers'
    // collision-history windows (capacity 16 rounds).
    cluster.run_rounds(32);
    let delta = min_allocation_delta(|| {
        let before = allocations();
        cluster.run_rounds(256);
        allocations() - before
    });
    assert_eq!(
        delta, 0,
        "healthy steady-state rounds must not allocate (2048 slots ran)"
    );

    // A closure pipeline injecting benign faults: still allocation-free,
    // since benign receptions carry no payload and, with tracing off, no
    // effect record is built.
    let pipeline = |ctx: &TxCtx| {
        if ctx.abs_slot % 7 == 3 {
            SlotEffect::Benign
        } else {
            SlotEffect::Correct
        }
    };
    let mut cluster = ClusterBuilder::new(4)
        .trace_mode(TraceMode::Off)
        .build(Box::new(pipeline))
        .expect("valid cluster");
    cluster.run_rounds(32);
    let delta = min_allocation_delta(|| {
        let before = allocations();
        cluster.run_rounds(256);
        allocations() - before
    });
    assert_eq!(
        delta, 0,
        "benign-fault steady-state rounds must not allocate with tracing off"
    );
    assert_eq!(cluster.round(), RoundIndex::new(32 + 3 * 256));

    // An explicitly NoopSink-instrumented cluster is just as free: every
    // metrics hook is a virtual no-op call and no event is ever built
    // (`MetricsSink::enabled()` is false), so the observability layer costs
    // the fast path nothing.
    let mut instrumented = ClusterBuilder::new(8)
        .trace_mode(TraceMode::Off)
        .metrics_sink(Arc::new(NoopSink))
        .build(Box::new(NoFaults))
        .expect("valid cluster");
    instrumented.run_rounds(32);
    let delta = min_allocation_delta(|| {
        let before = allocations();
        instrumented.run_rounds(256);
        allocations() - before
    });
    assert_eq!(
        delta, 0,
        "NoopSink-instrumented steady-state rounds must not allocate (2048 slots ran)"
    );

    // The provenance-tracing layer follows the same contract: a cluster
    // with an explicit NoopTraceSink installed (tracing wired in, but
    // `TraceSink::enabled()` false) stays allocation-free even while
    // faults stream over the bus — the engine's SlotFault span sits
    // behind the `enabled()` guard like everything else.
    let faulty = |ctx: &TxCtx| {
        if ctx.abs_slot % 7 == 3 {
            SlotEffect::Benign
        } else {
            SlotEffect::Correct
        }
    };
    let mut noop_traced = ClusterBuilder::new(8)
        .trace_mode(TraceMode::Off)
        .trace_sink(Arc::new(NoopTraceSink))
        .build(Box::new(faulty))
        .expect("valid cluster");
    noop_traced.run_rounds(32);
    let delta = min_allocation_delta(|| {
        let before = allocations();
        noop_traced.run_rounds(256);
        allocations() - before
    });
    assert_eq!(
        delta, 0,
        "NoopTraceSink-instrumented steady-state rounds must not allocate (2048 slots ran)"
    );

    let config = ProtocolConfig::builder(8)
        .penalty_threshold(1_000_000)
        .reward_threshold(1_000_000)
        .build()
        .expect("valid protocol config");

    // The full diagnostic protocol is itself allocation-free in healthy
    // steady state (health logging off): syndromes are `Copy` bitsets, the
    // alignment pipeline recycles its scratch vectors through
    // `AlignmentBuffers::commit`, the voted health vector lands in a reused
    // buffer, and the disseminated payload is a cached `Bytes` whose clone
    // is a reference-count bump while the outgoing syndrome is unchanged.
    let mut diag_cluster = ClusterBuilder::new(8)
        .trace_mode(TraceMode::Off)
        .build_with_jobs(
            |id| Box::new(DiagJob::with_logging(id, config.clone(), false)),
            Box::new(NoFaults),
        );
    diag_cluster.run_rounds(32);
    let delta = min_allocation_delta(|| {
        let before = allocations();
        diag_cluster.run_rounds(256);
        allocations() - before
    });
    assert_eq!(
        delta, 0,
        "healthy DiagJob steady-state rounds must not allocate (2048 slots, 8 protocol instances)"
    );

    // With benign faults streaming, the read/align/vote path is still
    // allocation-free: ε rows cost nothing to represent and accusations
    // flip bits in the `Copy` syndrome. The only remaining allocation is
    // re-encoding the outgoing payload when the accusation pattern actually
    // changes — at most two allocations (the byte vector and its `Bytes`
    // refcount block) per node per round.
    let mut diag_faulty = ClusterBuilder::new(8)
        .trace_mode(TraceMode::Off)
        .build_with_jobs(
            |id| Box::new(DiagJob::with_logging(id, config.clone(), false)),
            Box::new(faulty),
        );
    diag_faulty.run_rounds(32);
    let delta = min_allocation_delta(|| {
        let before = allocations();
        diag_faulty.run_rounds(256);
        allocations() - before
    });
    assert!(
        delta <= 2 * 8 * 256,
        "benign-faulty DiagJob rounds may only pay for payload re-encodes, got {delta}"
    );

    // With health logging ON the jobs do allocate (records are pushed), so
    // for the logged protocol compare like with like: the noop-traced
    // logged cluster must allocate exactly as much as the same cluster
    // with no trace sink at all. Disabled tracing adds zero bytes even on
    // the span-emitting path.
    let faulty_delta = |trace_sink: Option<Arc<NoopTraceSink>>| {
        let mut b = ClusterBuilder::new(8).trace_mode(TraceMode::Off);
        if let Some(sink) = trace_sink {
            b = b.trace_sink(sink);
        }
        let mut cluster = b.build_with_jobs(
            |id| Box::new(DiagJob::new(id, config.clone())),
            Box::new(faulty),
        );
        cluster.run_rounds(32);
        min_allocation_delta(|| {
            let before = allocations();
            cluster.run_rounds(256);
            allocations() - before
        })
    };
    let untraced = faulty_delta(None);
    let traced_noop = faulty_delta(Some(Arc::new(NoopTraceSink)));
    assert_eq!(
        traced_noop, untraced,
        "a NoopTraceSink must not change the faulty path's allocation count"
    );

    // Positive control: swapping in a live RecordingTraceSink on the same
    // faulty protocol run allocates and captures spans, proving the span
    // emission points are wired through the whole pipeline.
    let trace_sink = Arc::new(RecordingTraceSink::new());
    let mut span_traced = ClusterBuilder::new(8)
        .trace_mode(TraceMode::Off)
        .trace_sink(trace_sink.clone())
        .build_with_jobs(
            |id| Box::new(DiagJob::new(id, config.clone())),
            Box::new(faulty),
        );
    span_traced.run_rounds(32);
    let before = allocations();
    span_traced.run_rounds(256);
    assert!(
        allocations() > before,
        "a live RecordingTraceSink is expected to allocate while capturing spans"
    );
    assert!(
        trace_sink.span_count() > 0,
        "the faulty run produced provenance spans"
    );

    // Sanity: the same faulty run with the trace recording anomalies DOES
    // allocate (records are pushed), proving the counter actually counts.
    let mut traced = ClusterBuilder::new(4)
        .trace_mode(TraceMode::Anomalies)
        .build(Box::new(pipeline))
        .expect("valid cluster");
    traced.run_rounds(32);
    let before = allocations();
    traced.run_rounds(256);
    assert!(
        allocations() > before,
        "anomaly tracing of faulty rounds is expected to allocate"
    );

    // The lockstep batch engine inherits the contract: a warmed
    // BatchCluster steady state allocates nothing across all lanes at
    // once, even in the campaign configuration (fingerprints enabled, the
    // streams pre-reserved up front) and with heterogeneous faults
    // streaming — fault effects are pure bitset arithmetic on the
    // structure-of-arrays state.
    let plans: Vec<BatchFaultPlan> = (0..64)
        .map(|lane| {
            BatchFaultPlan::new(match lane % 4 {
                0 => Vec::new(),
                1 => vec![LaneFault {
                    slot: 2,
                    first_round: 8,
                    hits: u64::MAX,
                    stride: 3,
                    effect: LaneEffect::Benign,
                }],
                2 => vec![LaneFault {
                    slot: 1,
                    first_round: 10,
                    hits: u64::MAX,
                    stride: 2,
                    effect: LaneEffect::Malicious { mask: 0b0000_0010 },
                }],
                _ => vec![LaneFault {
                    slot: 4,
                    first_round: 6,
                    hits: u64::MAX,
                    stride: 1,
                    effect: LaneEffect::Asymmetric {
                        detected_by: 0b0000_0101,
                        collision_ok: true,
                    },
                }],
            })
        })
        .collect();
    let params = BatchLaneParams {
        penalty_threshold: 1_000_000,
        reward_threshold: 1_000_000,
    };
    let mut batch = BatchCluster::new(8, plans.clone()).expect("valid batch");
    let mut batch_job = BatchDiagJob::new(8, &[params; 64]).with_fingerprints(32 + 256);
    batch.run_rounds(32, &mut batch_job);
    let before = allocations();
    batch.run_rounds(256, &mut batch_job);
    assert_eq!(
        allocations() - before,
        0,
        "batched steady-state rounds must not allocate (256 rounds x 64 faulty lanes)"
    );

    // Positive control: the batched recording mode (the equivalence tests'
    // inspection path) pushes health records and counter samples, proving
    // the counter sees the batched job's traffic too.
    let mut batch = BatchCluster::new(8, plans).expect("valid batch");
    let mut recording_job = BatchDiagJob::new(8, &[params; 64]).with_recording();
    batch.run_rounds(32, &mut recording_job);
    let before = allocations();
    batch.run_rounds(256, &mut recording_job);
    assert!(
        allocations() > before,
        "batched recording mode is expected to allocate while capturing logs"
    );
    assert!(
        !recording_job.health_log(0, 0).is_empty(),
        "recording mode captured health records"
    );

    // A serve-capable cluster — streaming metrics AND trace sinks wired to
    // live hubs — with ZERO subscribers attached is exactly as free as the
    // noop configuration: `StreamHub::has_subscribers` is a single relaxed
    // atomic load, so an unobserved `ttdiag serve` job pays nothing on the
    // hot path. No event is built, no lock taken, no frame cloned.
    let metrics_hub = Arc::new(StreamHub::new());
    let spans_hub = Arc::new(StreamHub::new());
    let mut serveable = ClusterBuilder::new(8)
        .trace_mode(TraceMode::Off)
        .metrics_sink(Arc::new(StreamingSink::new(metrics_hub.clone())))
        .trace_sink(Arc::new(StreamingTraceSink::new(spans_hub.clone())))
        .build(Box::new(faulty))
        .expect("valid cluster");
    serveable.run_rounds(32);
    let delta = min_allocation_delta(|| {
        let before = allocations();
        serveable.run_rounds(256);
        allocations() - before
    });
    assert_eq!(
        delta, 0,
        "streaming sinks with zero subscribers must not allocate (2048 slots ran)"
    );

    // Positive control: the moment a subscriber attaches, the same cluster
    // starts delivering framed events — and because the subscriber ring is
    // preallocated at subscribe time and `MetricsEvent` is `Copy`, even
    // the *observed* hot path stays allocation-free while frames flow.
    let subscription = metrics_hub.subscribe(1024);
    let delta = min_allocation_delta(|| {
        let before = allocations();
        serveable.run_rounds(16);
        allocations() - before
    });
    assert_eq!(
        delta, 0,
        "publishing into a preallocated subscriber ring must not allocate"
    );
    let frames = subscription.drain(usize::MAX);
    assert!(!frames.is_empty(), "the subscriber received live frames");
    drop(subscription);

    // And a live RecordingSink allocates too (events are captured), proving
    // the instrumentation points are actually wired into the engine.
    let recording = Arc::new(RecordingSink::new());
    let mut recorded = ClusterBuilder::new(4)
        .trace_mode(TraceMode::Off)
        .metrics_sink(recording.clone())
        .build(Box::new(NoFaults))
        .expect("valid cluster");
    recorded.run_rounds(32);
    let before = allocations();
    recorded.run_rounds(256);
    assert!(
        allocations() > before,
        "a live RecordingSink is expected to allocate while capturing events"
    );
    assert!(
        recording.event_count() >= 288,
        "one event per round at least"
    );
}
