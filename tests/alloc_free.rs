//! Proves the tentpole claim: with `TraceMode::Off`, steady-state
//! `Cluster::run_round` performs no heap allocation — the engine reuses its
//! cluster-owned scratch buffers and `Bytes` payload clones are reference
//! count bumps.
//!
//! The whole check lives in ONE `#[test]` on purpose: the counting
//! allocator is process-global, and concurrent tests in the same binary
//! would pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use tt_sim::{ClusterBuilder, NoFaults, RoundIndex, SlotEffect, TraceMode, TxCtx};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::SeqCst)
}

#[test]
fn steady_state_run_round_allocates_nothing_with_trace_off() {
    // Healthy bus.
    let mut cluster = ClusterBuilder::new(8)
        .trace_mode(TraceMode::Off)
        .build(Box::new(NoFaults))
        .expect("valid cluster");
    // Warm-up: fills the engine scratch buffers and the controllers'
    // collision-history windows (capacity 16 rounds).
    cluster.run_rounds(32);
    let before = allocations();
    cluster.run_rounds(256);
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "healthy steady-state rounds must not allocate (2048 slots ran)"
    );

    // A closure pipeline injecting benign faults: still allocation-free,
    // since benign receptions carry no payload and, with tracing off, no
    // effect record is built.
    let pipeline = |ctx: &TxCtx| {
        if ctx.abs_slot % 7 == 3 {
            SlotEffect::Benign
        } else {
            SlotEffect::Correct
        }
    };
    let mut cluster = ClusterBuilder::new(4)
        .trace_mode(TraceMode::Off)
        .build(Box::new(pipeline))
        .expect("valid cluster");
    cluster.run_rounds(32);
    let before = allocations();
    cluster.run_rounds(256);
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "benign-fault steady-state rounds must not allocate with tracing off"
    );
    assert_eq!(cluster.round(), RoundIndex::new(288));

    // Sanity: the same faulty run with the trace recording anomalies DOES
    // allocate (records are pushed), proving the counter actually counts.
    let mut traced = ClusterBuilder::new(4)
        .trace_mode(TraceMode::Anomalies)
        .build(Box::new(pipeline))
        .expect("valid cluster");
    traced.run_rounds(32);
    let before = allocations();
    traced.run_rounds(256);
    assert!(
        allocations() > before,
        "anomaly tracing of faulty rounds is expected to allocate"
    );
}
