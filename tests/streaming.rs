//! Backpressure contract of the live-feed `StreamHub` (the `ttdiag serve`
//! fan-out): a subscriber that never reads occupies bounded memory and
//! gets exact drop accounting, while a concurrent fast subscriber receives
//! the complete, gap-free (by `seq`) stream — and neither ever stalls the
//! publisher.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tt_sim::{Framed, ProgressEvent, StreamHub};

fn settled(i: u64) -> ProgressEvent {
    ProgressEvent::Settled {
        job: 1,
        completed: i,
        total: 100_000,
        quarantined: 0,
    }
}

#[test]
fn stalled_subscriber_is_bounded_while_fast_subscriber_sees_every_frame() {
    const STALLED_CAPACITY: usize = 64;
    const PUBLISHED: u64 = 20_000;

    let hub: Arc<StreamHub<ProgressEvent>> = Arc::new(StreamHub::new());
    // The stalled subscriber: attaches with a tiny ring and never reads
    // until the very end.
    let stalled = hub.subscribe(STALLED_CAPACITY);
    let fast = hub.subscribe(512);
    let done = Arc::new(AtomicBool::new(false));

    // Fast consumer thread: drains continuously and checks seq continuity.
    let consumer = {
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut received: Vec<Framed<ProgressEvent>> = Vec::new();
            loop {
                let frames = fast.recv_timeout(Duration::from_millis(5), 1024);
                received.extend(frames);
                if done.load(Ordering::Relaxed) {
                    received.extend(fast.drain(usize::MAX));
                    break;
                }
            }
            (received, fast.stats())
        })
    };

    // Publisher: the hot path. It must never block on either subscriber.
    let started = Instant::now();
    for i in 0..PUBLISHED {
        hub.publish(settled(i));
        // A gentle pacing every so often keeps the fast consumer keeping
        // up without a sleep per frame (which would mask lost wakeups).
        if i % 512 == 511 {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    let publish_wall = started.elapsed();
    done.store(true, Ordering::Relaxed);
    let (received, fast_stats) = consumer.join().expect("consumer thread");

    // The fast subscriber saw the complete stream, gap-free by seq.
    assert_eq!(received.len() as u64, PUBLISHED, "no frame lost");
    for (i, frame) in received.iter().enumerate() {
        assert_eq!(frame.seq, i as u64, "gap-free monotone seq");
    }
    assert_eq!(fast_stats.dropped, 0, "keeping-up subscriber drops nothing");
    assert_eq!(fast_stats.delivered, PUBLISHED);

    // The stalled subscriber's buffer stayed bounded at its ring capacity:
    // it holds exactly the newest `capacity` frames...
    let backlog = stalled.drain(usize::MAX);
    assert_eq!(backlog.len(), STALLED_CAPACITY, "bounded occupancy");
    let first_kept = PUBLISHED - STALLED_CAPACITY as u64;
    for (i, frame) in backlog.iter().enumerate() {
        assert_eq!(
            frame.seq,
            first_kept + i as u64,
            "oldest frames were evicted, newest kept, in order"
        );
    }
    // ...and its drop counter equals the observed seq gap exactly.
    let stats = stalled.stats();
    assert_eq!(stats.dropped, first_kept, "drop counter equals the seq gap");
    assert_eq!(stats.delivered, STALLED_CAPACITY as u64);
    assert_eq!(stats.capacity, STALLED_CAPACITY as u64);
    assert_eq!(stats.lag, 0, "fully drained");

    // Liveness sanity: publishing 20k frames past a stalled subscriber
    // finished in far less wall time than a blocking fan-out would take.
    assert!(
        publish_wall < Duration::from_secs(30),
        "publisher appears to have stalled: {publish_wall:?}"
    );
}

#[test]
fn detached_subscribers_return_the_hub_to_the_free_fast_path() {
    let hub: Arc<StreamHub<ProgressEvent>> = Arc::new(StreamHub::new());
    assert!(!hub.has_subscribers());
    let a = hub.subscribe(8);
    let b = hub.subscribe(8);
    assert!(hub.has_subscribers());
    hub.publish(settled(0));
    drop(a);
    assert!(hub.has_subscribers(), "one subscriber remains");
    assert_eq!(b.drain(usize::MAX).len(), 1);
    drop(b);
    assert!(
        !hub.has_subscribers(),
        "last detach restores the zero-subscriber fast path"
    );
    // Publishing now assigns no sequence numbers at all (nothing observes
    // them), so a later subscriber starts a fresh contiguous stream.
    hub.publish(settled(1));
    let late = hub.subscribe(8);
    hub.publish(settled(2));
    let frames = late.drain(usize::MAX);
    assert_eq!(frames.len(), 1);
    assert_eq!(
        frames[0].seq, 1,
        "seq continues from the last observed frame"
    );
}
