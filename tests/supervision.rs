//! Integration tests of the supervised campaign executor and the
//! explorer's checkpoint/resume guarantees: supervision must never change
//! *what* a campaign computes, only *how reliably* it computes it. The
//! proptest blocks interrupt runs at arbitrary points and require the
//! resumed result to be identical to an uninterrupted run's.

use std::path::PathBuf;
use std::time::Duration;

use proptest::prelude::*;

use tt_bench::{SupervisedCampaign, SupervisorConfig};
use tt_fault::{
    no_extra_oracle, run_campaign, BackoffPolicy, CampaignCheckpoint, ChaosPlan, ExperimentClass,
    ExploreConfig, Explorer, HarnessFault, HarnessFaultHook, QuarantineReason, WorkerHealth,
};

fn classes() -> Vec<ExperimentClass> {
    vec![
        ExperimentClass::Burst {
            len_slots: 1,
            start_slot: 0,
        },
        ExperimentClass::Burst {
            len_slots: 2,
            start_slot: 3,
        },
        ExperimentClass::Burst {
            len_slots: 1,
            start_slot: 2,
        },
    ]
}

fn fast_backoff(max_retries: u32) -> BackoffPolicy {
    BackoffPolicy {
        base: Duration::from_millis(1),
        cap: Duration::from_millis(2),
        max_retries,
    }
}

/// A hand-written fault script: item 0 always panics, item 1 always
/// hangs, item 2 fails transiently on its first attempt only. Everything
/// else runs untouched.
struct ScriptedFaults;

impl HarnessFaultHook for ScriptedFaults {
    fn fault(&self, item: usize, attempt: u32) -> Option<HarnessFault> {
        match (item, attempt) {
            (0, _) => Some(HarnessFault::Panic),
            (1, _) => Some(HarnessFault::Hang),
            (2, 0) => Some(HarnessFault::Transient),
            _ => None,
        }
    }
}

/// The retry delay follows bounded exponential backoff: it doubles per
/// attempt and saturates at the cap, and the retry budget is enforced at
/// the documented boundary.
#[test]
fn backoff_delay_doubles_and_saturates_at_the_cap() {
    let policy = BackoffPolicy {
        base: Duration::from_millis(10),
        cap: Duration::from_millis(80),
        max_retries: 3,
    };
    assert_eq!(policy.delay(0), Duration::from_millis(10));
    assert_eq!(policy.delay(1), Duration::from_millis(20));
    assert_eq!(policy.delay(2), Duration::from_millis(40));
    assert_eq!(policy.delay(3), Duration::from_millis(80));
    assert_eq!(policy.delay(4), Duration::from_millis(80), "capped");
    assert_eq!(policy.delay(63), Duration::from_millis(80), "shift-safe");
    // The initial attempt counts as the first failure; `max_retries`
    // retries are allowed beyond it.
    assert!(policy.allows_retry(1));
    assert!(policy.allows_retry(3));
    assert!(!policy.allows_retry(4));
}

/// The per-worker Alg. 2 mirror: `P` failures isolate, `R` consecutive
/// successes earn one penalty point back (forgiveness), and a success
/// streak broken by a failure restarts the reward counter.
#[test]
fn worker_health_isolates_at_the_penalty_threshold_and_forgives() {
    let mut h = WorkerHealth::new(3, 2);
    assert!(!h.record_failure());
    assert!(!h.record_failure());
    assert!(!h.is_isolated(), "below the threshold");
    assert!(h.record_failure(), "third failure crosses P");
    assert!(h.is_isolated());

    let mut h = WorkerHealth::new(3, 2);
    h.record_failure();
    h.record_failure();
    h.record_success();
    h.record_success();
    assert_eq!(h.penalty(), 1, "R consecutive successes forgive one");
    // An interleaved failure resets the success streak: two more
    // successes are needed before the next forgiveness.
    h.record_failure();
    h.record_success();
    h.record_failure();
    assert_eq!(h.penalty(), 3);
    assert!(h.is_isolated());
}

/// Scripted faults settle with the documented reasons: a persistent
/// panic and a persistent hang exhaust their retries and are quarantined
/// (with the panic message and the timeout reason respectively), a
/// first-attempt transient recovers, and untouched items match the
/// sequential reference bit for bit.
#[test]
fn scripted_faults_quarantine_with_the_right_reasons() {
    let classes = classes();
    let campaign = SupervisedCampaign {
        classes: &classes,
        n: 4,
        reps: 1,
        base_seed: 42,
        config: SupervisorConfig {
            threads: 2,
            watchdog: Some(Duration::from_millis(30)),
            backoff: fast_backoff(1),
            ..SupervisorConfig::default()
        },
    };
    let sup = campaign.run(&ScriptedFaults).expect("no checkpoint I/O");
    assert_eq!(sup.supervision.quarantined.len(), 2);
    let panic_q = &sup.supervision.quarantined[0];
    assert_eq!(panic_q.item, 0);
    assert_eq!(panic_q.attempts, 2, "initial attempt + one retry");
    assert!(
        matches!(&panic_q.reason, QuarantineReason::Panic(msg) if msg.contains("injected")),
        "{panic_q:?}"
    );
    let hang_q = &sup.supervision.quarantined[1];
    assert_eq!(hang_q.item, 1);
    assert_eq!(hang_q.reason, QuarantineReason::Timeout, "{hang_q:?}");
    // Item 2 recovered on its retry; its outcome matches the sequential
    // reference for the same (class, seed).
    let seq = run_campaign(&classes, 4, 1, 42);
    assert_eq!(sup.result.outcomes, vec![seq.outcomes[2].clone()]);
    assert_eq!(sup.supervision.retries, 1 + 1 + 1, "one per failed attempt");
    let timeouts: u64 = sup.supervision.workers.iter().map(|w| w.timeouts).sum();
    let panics: u64 = sup.supervision.workers.iter().map(|w| w.panics).sum();
    assert_eq!((panics, timeouts), (2, 2));
}

fn unique_checkpoint_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("tt-supervision-{}-{tag}.json", std::process::id()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Interrupting a chaos-ridden campaign after an arbitrary number of
    /// settled experiments and resuming from the on-disk checkpoint
    /// reproduces the uninterrupted run exactly: same outcomes, same
    /// quarantine records, same retry count.
    #[test]
    fn campaign_resume_matches_uninterrupted_at_any_interrupt_point(
        halt_after in 1usize..9,
        chaos_seed in 0u64..64,
    ) {
        let classes = classes();
        let plan = ChaosPlan {
            seed: chaos_seed,
            panic_per_mille: 150,
            hang_per_mille: 0,
            transient_per_mille: 150,
            first_attempt_only: false,
        };
        let config = SupervisorConfig {
            threads: 2,
            backoff: fast_backoff(1),
            checkpoint_every: 1,
            ..SupervisorConfig::default()
        };
        let uninterrupted = SupervisedCampaign {
            classes: &classes,
            n: 4,
            reps: 3,
            base_seed: 42,
            config: config.clone(),
        }
        .run(&plan)
        .unwrap();

        let path = unique_checkpoint_path(&format!("{halt_after}-{chaos_seed}"));
        let halted = SupervisedCampaign {
            classes: &classes,
            n: 4,
            reps: 3,
            base_seed: 42,
            config: SupervisorConfig {
                checkpoint_path: Some(path.clone()),
                halt_after: Some(halt_after),
                ..config.clone()
            },
        }
        .run(&plan)
        .unwrap();
        prop_assert!(halted.halted);
        let cp: CampaignCheckpoint = tt_fault::read_json(&path).unwrap();
        prop_assert!(cp.settled().count() >= halt_after);

        let resumed = SupervisedCampaign {
            classes: &classes,
            n: 4,
            reps: 3,
            base_seed: 42,
            config: SupervisorConfig {
                checkpoint_path: Some(path.clone()),
                ..config
            },
        }
        .run_resumed(&plan, &cp)
        .unwrap();
        let _ = std::fs::remove_file(&path);
        prop_assert!(!resumed.halted);
        prop_assert_eq!(&resumed.result.outcomes, &uninterrupted.result.outcomes);
        prop_assert_eq!(
            &resumed.supervision.quarantined,
            &uninterrupted.supervision.quarantined
        );
        prop_assert_eq!(resumed.supervision.retries, uninterrupted.supervision.retries);
    }

    /// An explorer session snapshotted after an arbitrary number of steps
    /// — with the checkpoint round-tripped through its JSON wire form —
    /// continues byte-identically to a session that was never
    /// interrupted: the snapshot carries the exact RNG stream position,
    /// coverage set and frontier.
    #[test]
    fn explorer_resume_matches_uninterrupted_at_any_step(
        interrupt in 0u64..24,
        seed in 0u64..1024,
    ) {
        let cfg = ExploreConfig {
            budget: 24,
            seed,
            ..ExploreConfig::default()
        };
        let mut straight = Explorer::new(&cfg, &[]);
        while straight.step(&no_extra_oracle) {}
        let reference = straight.into_report();

        let mut first = Explorer::new(&cfg, &[]);
        for _ in 0..interrupt {
            first.step(&no_extra_oracle);
        }
        let wire = serde_json::to_string(&first.checkpoint()).unwrap();
        let cp = serde_json::from_str(&wire).unwrap();
        let mut resumed = Explorer::from_checkpoint(&cp).unwrap();
        while resumed.step(&no_extra_oracle) {}
        prop_assert_eq!(resumed.into_report(), reference);
    }
}
