//! Integration tests for the Sec. 9 tuning pipeline: Fig. 3, Table 2,
//! Tables 3 & 4, end to end through the experiment-regeneration layer.

use tt_analysis::{
    aerospace_setup, automotive_setup, correlation_probability, measure_time_to_isolation, tune,
};
use tt_fault::TransientScenario;
use tt_sim::Nanos;

const T: Nanos = Nanos::from_micros(2_500);

#[test]
fn table2_constants_reproduce_exactly() {
    let auto = tune(&automotive_setup());
    assert_eq!(auto.penalty_threshold, 197);
    assert_eq!(
        auto.rows.iter().map(|r| r.criticality).collect::<Vec<_>>(),
        vec![40, 6, 1]
    );
    let aero = tune(&aerospace_setup());
    assert_eq!(aero.penalty_threshold, 17);
    assert_eq!(aero.rows[0].criticality, 1);
}

#[test]
fn table4_values_and_shape() {
    let auto = tune(&automotive_setup());
    let blinking = TransientScenario::blinking_light();
    let times: Vec<f64> = auto
        .rows
        .iter()
        .map(|row| {
            measure_time_to_isolation(
                &blinking,
                row.criticality,
                auto.penalty_threshold,
                auto.reward_threshold,
                T,
                4,
            )
            .time_to_isolation
            .expect("every class eventually isolated under the scenario")
            .as_secs_f64()
        })
        .collect();
    // Paper: 0.518 / 4.595 / 24.475 s. We reproduce the SC row exactly and
    // the SR/NSR rows to within one burst period (see EXPERIMENTS.md).
    assert!((times[0] - 0.518).abs() < 0.005, "SC: {}", times[0]);
    assert!((times[1] - 4.595).abs() < 0.55, "SR: {}", times[1]);
    assert!((times[2] - 24.475).abs() < 0.60, "NSR: {}", times[2]);
    // Strict ordering and the ~1 : 8 : 48 shape.
    assert!(times[0] < times[1] && times[1] < times[2]);
    assert!(times[2] / times[0] > 40.0 && times[2] / times[0] < 55.0);
    // Aerospace row: exact.
    let aero = tune(&aerospace_setup());
    let t_aero = measure_time_to_isolation(
        &TransientScenario::lightning_bolt(),
        aero.rows[0].criticality,
        aero.penalty_threshold,
        aero.reward_threshold,
        T,
        4,
    )
    .time_to_isolation
    .expect("isolated")
    .as_secs_f64();
    assert!((t_aero - 0.205).abs() < 0.01, "aero: {t_aero}");
}

#[test]
fn fig3_operating_point_and_monotonicity() {
    // R = 10^6 at 2.5 ms rounds keeps false correlation below 1% for the
    // paper's environment rates.
    assert!(correlation_probability(0.014, 1_000_000, T) < 0.01);
    // Increasing R by 100x at the same rate crosses the 1% line.
    assert!(correlation_probability(0.014, 100_000_000, T) > 0.01);
}

#[test]
fn tuning_scales_with_round_length() {
    // Halving the round length doubles the penalty budgets: the procedure
    // measures rounds, not wall-clock.
    let mut setup = aerospace_setup();
    setup.round = Nanos::from_micros(1_250);
    let tuned = tune(&setup);
    assert_eq!(tuned.penalty_threshold, 37, "50 ms / 1.25 ms - 3 = 37");
}

#[test]
fn report_generators_are_green() {
    let t2 = tt_bench::table2_report();
    assert!(!t2.contains("| NO "), "{t2}");
    let t3 = tt_bench::table3_report();
    assert!(
        t3.contains("10.000ms") || t3.contains("10ms") || t3.contains("10.0"),
        "{t3}"
    );
}
