//! Exhaustive model-checking-style verification of the Sec. 7 membership
//! variant on small worlds: instead of sampling fault patterns, enumerate
//! *every* pattern in a bounded window and run the full membership oracle
//! stack (Theorem 1 with accusation exemptions, counter agreement,
//! Theorem 2 view synchrony, wrongful exclusion, membership liveness,
//! clique accusation/exclusion) on each world. The membership-variant
//! sibling of `tests/exhaustive_small_worlds.rs`.
//!
//! Enumerations are parameterized over the cluster size `N ∈ {4, 5}` and
//! the window shape; the N = 5 two-round benign enumeration is
//! `#[ignore]`d and run by the weekly soak job (`cargo test -- --ignored`).

use tt_fault::explore::{
    clique_partition_faults, execute_schedule, FaultSchedule, ProtocolUnderTest, ScheduledClass,
    ScheduledFault,
};

const TOTAL_ROUNDS: u64 = 16;

/// One world shape under enumeration: the cluster size and the bounded
/// window of rounds whose slots the enumerated pattern drives.
#[derive(Clone, Copy)]
struct World {
    n: usize,
    window_start: u64,
    window_rounds: u64,
}

/// N = 4 with a two-round window starting at round 8.
const W4: World = World {
    n: 4,
    window_start: 8,
    window_rounds: 2,
};

/// N = 4, window shifted earlier — alignment must not matter.
const W4_EARLY: World = World {
    n: 4,
    window_start: 6,
    window_rounds: 2,
};

/// N = 5, single-round window (fast enough for every PR).
const W5: World = World {
    n: 5,
    window_start: 8,
    window_rounds: 1,
};

/// N = 5, two-round window — 2^10 benign worlds; weekly soak only.
const W5_WIDE: World = World {
    n: 5,
    window_start: 8,
    window_rounds: 2,
};

impl World {
    const fn slots(&self) -> u64 {
        self.window_rounds * self.n as u64
    }

    /// The world as an empty membership schedule; patterns add faults.
    fn schedule(&self) -> FaultSchedule {
        FaultSchedule {
            n: self.n,
            rounds: TOTAL_ROUNDS,
            penalty_threshold: 3,
            reward_threshold: 2,
            faults: Vec::new(),
            protocol: ProtocolUnderTest::Membership,
        }
    }

    /// The (1-based node, round) the window's `idx`-th slot belongs to.
    fn slot(&self, idx: u64) -> (u32, u64) {
        let node = (idx % self.n as u64) as u32 + 1;
        let round = self.window_start + idx / self.n as u64;
        (node, round)
    }
}

/// Runs one world through the full membership oracle stack and asserts
/// every oracle stays silent; the failure message names the schedule.
fn assert_world_ok(schedule: &FaultSchedule, label: &str) {
    let exec = execute_schedule(schedule);
    assert!(
        exec.verdict.ok(),
        "{label}: {:?}\nschedule: {schedule:?}",
        exec.verdict.all(),
    );
}

/// Every benign/correct pattern over the window: 2^slots worlds, each
/// checked against the whole membership stack. View synchrony must hold in
/// every one of them (identical view sequences, exclusions only of benign
/// senders), and membership liveness must exclude every benign sender that
/// fires inside the hypothesis prefix.
fn check_benign_patterns(world: World) {
    let slots = world.slots() as u32;
    let clean = execute_schedule(&world.schedule());
    let mut views_changed = 0u32;
    for mask in 0u32..(1 << slots) {
        let mut s = world.schedule();
        for idx in 0..u64::from(slots) {
            if mask & (1 << idx) != 0 {
                let (node, round) = world.slot(idx);
                s.faults.push(ScheduledFault {
                    node,
                    round,
                    hits: 1,
                    stride: 1,
                    class: ScheduledClass::Benign,
                });
            }
        }
        let exec = execute_schedule(&s);
        assert!(
            exec.verdict.ok(),
            "n={} mask {mask:#012b}: {:?}",
            world.n,
            exec.verdict.all(),
        );
        // Non-vacuity: every non-empty pattern perturbs the fingerprinted
        // membership state (view churn and accusations are coverage).
        if mask != 0 && exec.fingerprints != clean.fingerprints {
            views_changed += 1;
        }
    }
    assert!(
        views_changed > 0,
        "n={}: no benign pattern ever changed membership state — the \
         oracle run is vacuous",
        world.n,
    );
}

#[test]
fn all_benign_patterns_over_two_rounds() {
    check_benign_patterns(W4);
}

#[test]
fn all_benign_patterns_over_an_early_window() {
    check_benign_patterns(W4_EARLY);
}

#[test]
fn all_benign_patterns_at_n5() {
    check_benign_patterns(W5);
}

#[test]
#[ignore = "N = 5 two-round benign membership enumeration (1024 worlds): weekly soak"]
fn all_benign_patterns_at_n5_over_two_rounds() {
    check_benign_patterns(W5_WIDE);
}

/// One asymmetric sender — every non-trivial detector subset — combined
/// with every placement of one additional benign slot in the window. The
/// membership stack must stay silent on all of them: the detecting
/// minority's accusations either convict the sender (in hypothesis) or the
/// prefix gating keeps the oracles vacuous, but no world may produce
/// divergent view sequences among the nodes every view retains.
fn check_one_asymmetric_with_benign(world: World) {
    let n = world.n;
    let slots = world.slots();
    for subset in 1u8..(1 << (n - 1)) - 1 {
        // Receiver indices (0-based) of the asymmetric fault's detectors:
        // the window's first sender is node 1 (index 0), so detectors are
        // drawn from indices 1..n.
        let detected_by: Vec<usize> = (1..n).filter(|&r| subset & (1 << (r - 1)) != 0).collect();
        // `benign_at == slots` places no extra benign fault.
        for benign_at in 1..=slots {
            let mut s = world.schedule();
            let (node, round) = world.slot(0);
            s.faults.push(ScheduledFault {
                node,
                round,
                hits: 1,
                stride: 1,
                class: ScheduledClass::Asymmetric {
                    detected_by: detected_by.clone(),
                },
            });
            if benign_at < slots {
                let (node, round) = world.slot(benign_at);
                s.faults.push(ScheduledFault {
                    node,
                    round,
                    hits: 1,
                    stride: 1,
                    class: ScheduledClass::Benign,
                });
            }
            assert_world_ok(
                &s,
                &format!("n={n} subset {subset:#06b} benign at {benign_at}"),
            );
        }
    }
}

#[test]
fn one_asymmetric_sender_with_optional_benign_slot() {
    check_one_asymmetric_with_benign(W4);
}

#[test]
fn one_asymmetric_sender_with_optional_benign_slot_at_n5() {
    check_one_asymmetric_with_benign(W5);
}

/// Every minority clique partition: for each detector set `D` that can
/// never win a vote (`2·|D| < N - 1`), every majority sender transmits an
/// asymmetric frame only `D` detects — the paper's clique scenario. The
/// clique-mode oracle additionally requires every clique member to be
/// accused by every majority observer and excluded within two executions,
/// so this enumeration exercises the clique-liveness check on every world,
/// across window placements and burst lengths.
fn check_clique_partitions(world: World) {
    let n = world.n;
    for clique_mask in 1u8..(1 << n) {
        let clique: Vec<usize> = (0..n).filter(|&i| clique_mask & (1 << i) != 0).collect();
        if 2 * clique.len() >= n - 1 {
            continue;
        }
        for hits in 1..=world.window_rounds {
            let mut s = world.schedule();
            s.faults = clique_partition_faults(n, &clique, world.window_start, hits);
            assert_world_ok(&s, &format!("n={n} clique {clique:?} hits {hits}"));
        }
    }
}

#[test]
fn every_minority_clique_partition() {
    check_clique_partitions(W4);
}

#[test]
fn every_minority_clique_partition_at_n5() {
    check_clique_partitions(W5);
}

/// The clique-liveness oracle has bite: a clique partition at N = 5
/// actually produces accusations and a view excluding the clique (the
/// fingerprint stream differs from the fault-free run), so the silent
/// verdicts above are not vacuous truth.
#[test]
fn clique_partitions_actually_move_membership_state() {
    let mut s = W5.schedule();
    s.faults = clique_partition_faults(5, &[2], W5.window_start, 1);
    let exec = execute_schedule(&s);
    assert!(exec.verdict.ok(), "{:?}", exec.verdict.all());
    let clean = execute_schedule(&W5.schedule());
    assert_ne!(
        exec.fingerprints, clean.fingerprints,
        "clique partition left no trace in membership state"
    );
}
