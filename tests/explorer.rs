//! Integration tests of the coverage-guided fault-schedule explorer
//! (`tt_fault::explore`): determinism under a fixed seed, the coverage
//! claim (guided beats pure random at equal budget), oracle cleanliness
//! at the default operating point, and shrinker minimality.

use tt_fault::explore::{
    execute_schedule, explore, explore_with, Counterexample, ExploreConfig, ProtocolUnderTest,
    ScheduledClass, Strategy,
};
use tt_sim::Cluster;

/// Two runs with identical configuration produce byte-identical reports:
/// the explorer is fully deterministic under a fixed seed (generation,
/// mutation, fingerprinting and shrinking included).
#[test]
fn exploration_is_deterministic_under_a_fixed_seed() {
    let cfg = ExploreConfig {
        budget: 60,
        ..ExploreConfig::default()
    };
    let a = explore(&cfg);
    let b = explore(&cfg);
    assert_eq!(a, b);
    assert_eq!(a.executed, 60);
    assert!(a.unique_states > 0);
}

/// The acceptance-criterion assertion: with the same budget and seed, the
/// coverage-guided strategy reaches strictly more unique protocol-state
/// fingerprints than the pure-random baseline.
#[test]
fn coverage_guided_beats_pure_random_at_equal_budget() {
    let guided_cfg = ExploreConfig {
        budget: 120,
        ..ExploreConfig::default()
    };
    let random_cfg = ExploreConfig {
        strategy: Strategy::Random,
        ..guided_cfg.clone()
    };
    let guided = explore(&guided_cfg);
    let random = explore(&random_cfg);
    assert!(
        guided.unique_states > random.unique_states,
        "coverage-guided {} vs pure random {} unique states",
        guided.unique_states,
        random.unique_states,
    );
}

/// The real oracle stack survives exploration at the default operating
/// point: low thresholds make isolation and forgiveness reachable, yet no
/// schedule violates Theorem 1 (hypothesis-gated), counter consistency or
/// the Alg. 2 replay invariants.
#[test]
fn default_exploration_finds_no_real_violations() {
    let cfg = ExploreConfig {
        budget: 100,
        ..ExploreConfig::default()
    };
    let report = explore(&cfg);
    assert!(
        report.counterexamples.is_empty(),
        "real oracles violated: {:?}",
        report
            .counterexamples
            .iter()
            .map(|c| &c.violations)
            .collect::<Vec<_>>(),
    );
    // The frontier is real: the corpus replays to the recorded coverage.
    assert!(!report.corpus.is_empty());
    for schedule in &report.corpus {
        assert!(execute_schedule(schedule).verdict.ok());
    }
}

/// A deliberately weakened oracle ("no node is ever convicted" — false
/// under any effective fault) is detected, and the delta-debugging
/// shrinker minimizes the reproducer to a single one-shot fault.
#[test]
fn planted_weak_oracle_is_found_and_minimized() {
    let weak = |cluster: &Cluster| -> Vec<String> {
        use tt_core::DiagJob;
        use tt_sim::NodeId;
        let mut v = Vec::new();
        for id in NodeId::all(4) {
            let job: &DiagJob = cluster.job_as(id).expect("diag job");
            if job
                .health_log()
                .iter()
                .any(|rec| rec.health.contains(&false))
            {
                v.push(format!("node {id} convicted someone"));
                break;
            }
        }
        v
    };
    let cfg = ExploreConfig {
        budget: 40,
        ..ExploreConfig::default()
    };
    let report = explore_with(&cfg, &[], &weak);
    assert!(
        !report.counterexamples.is_empty(),
        "the planted weak oracle was never tripped",
    );
    let cx: &Counterexample = &report.counterexamples[0];
    assert_eq!(cx.shrunk.faults.len(), 1, "shrunk to a single fault");
    let f = &cx.shrunk.faults[0];
    assert_eq!(f.hits, 1, "shrunk to a single hit");
    assert_eq!(f.stride, 1, "stride normalized");
    assert_eq!(f.class, ScheduledClass::Benign, "class minimized to benign");
    // The minimized schedule still trips the weak oracle on replay.
    let exec = tt_fault::explore::execute_schedule_with_oracle(&cx.shrunk, &weak);
    assert!(!exec.verdict.extra.is_empty());
}

/// The protocol variants share the explorer's determinism guarantee: for
/// each [`ProtocolUnderTest`], two runs under the same seed yield
/// byte-identical reports, and variant fingerprints are live (membership
/// views and lowlat verdict streams feed the frontier).
#[test]
fn variant_exploration_is_deterministic_under_a_fixed_seed() {
    for protocol in [ProtocolUnderTest::Membership, ProtocolUnderTest::Lowlat] {
        let cfg = ExploreConfig {
            budget: 60,
            protocol,
            ..ExploreConfig::default()
        };
        let a = explore(&cfg);
        let b = explore(&cfg);
        assert_eq!(a, b, "{protocol:?} exploration must be deterministic");
        assert_eq!(a.executed, 60);
        assert!(a.unique_states > 0, "{protocol:?} fingerprints are live");
        for schedule in &a.corpus {
            assert_eq!(schedule.protocol, protocol, "corpus keeps its variant");
        }
    }
}

/// The full Sec. 7 membership oracle stack (Theorem 1 with accusation
/// exemptions, Theorem 2 view synchrony, wrongful exclusion, membership
/// and clique liveness) survives guided exploration at the default
/// operating point.
#[test]
fn membership_exploration_finds_no_real_violations() {
    let cfg = ExploreConfig {
        budget: 100,
        protocol: ProtocolUnderTest::Membership,
        ..ExploreConfig::default()
    };
    let report = explore(&cfg);
    assert!(
        report.counterexamples.is_empty(),
        "membership oracles violated: {:?}",
        report
            .counterexamples
            .iter()
            .map(|c| &c.violations)
            .collect::<Vec<_>>(),
    );
    assert!(!report.corpus.is_empty());
    for schedule in &report.corpus {
        assert!(execute_schedule(schedule).verdict.ok());
    }
}

/// The Sec. 10 low-latency oracle stack (per-slot verdict properties, the
/// 1-round diagnostic / 2-round membership latency bound, view synchrony,
/// membership liveness) survives guided exploration at the default
/// operating point.
#[test]
fn lowlat_exploration_finds_no_real_violations() {
    let cfg = ExploreConfig {
        budget: 100,
        protocol: ProtocolUnderTest::Lowlat,
        ..ExploreConfig::default()
    };
    let report = explore(&cfg);
    assert!(
        report.counterexamples.is_empty(),
        "lowlat oracles violated: {:?}",
        report
            .counterexamples
            .iter()
            .map(|c| &c.violations)
            .collect::<Vec<_>>(),
    );
    assert!(!report.corpus.is_empty());
    for schedule in &report.corpus {
        assert!(execute_schedule(schedule).verdict.ok());
    }
}

/// The ISSUE acceptance criterion: deliberately weaken the view-synchrony
/// oracle — flag the *correct* behavior ("node 1 installed a new view") so
/// any effective fault trips it — and require the membership explorer to
/// (a) find a counterexample, (b) shrink it to a minimal single-fault
/// single-hit schedule, and (c) do so deterministically (two runs produce
/// identical reports, shrunk schedule included).
#[test]
fn planted_weak_view_synchrony_oracle_is_found_and_minimized() {
    let weak = |cluster: &Cluster| -> Vec<String> {
        use tt_core::MembershipJob;
        use tt_sim::NodeId;
        let job: &MembershipJob = cluster.job_as(NodeId::new(1)).expect("membership job");
        if job.views().len() > 1 {
            vec![format!(
                "weak view-synchrony: node 1 reached view {}",
                job.views().last().unwrap().view_id
            )]
        } else {
            Vec::new()
        }
    };
    let cfg = ExploreConfig {
        budget: 40,
        protocol: ProtocolUnderTest::Membership,
        ..ExploreConfig::default()
    };
    let report = explore_with(&cfg, &[], &weak);
    assert!(
        !report.counterexamples.is_empty(),
        "the planted weak view-synchrony oracle was never tripped",
    );
    let cx: &Counterexample = &report.counterexamples[0];
    assert_eq!(cx.shrunk.faults.len(), 1, "shrunk to a single fault");
    let f = &cx.shrunk.faults[0];
    assert_eq!(f.hits, 1, "shrunk to a single hit");
    assert_eq!(f.stride, 1, "stride normalized");
    assert_eq!(
        cx.shrunk.protocol,
        ProtocolUnderTest::Membership,
        "shrinking preserves the protocol under test",
    );
    // Deterministic: a second identical run reproduces the same report.
    let again = explore_with(&cfg, &[], &weak);
    assert_eq!(report, again, "weak-oracle exploration is deterministic");
    // The minimized schedule still trips the weak oracle on replay.
    let exec = tt_fault::explore::execute_schedule_with_oracle(&cx.shrunk, &weak);
    assert!(!exec.verdict.extra.is_empty());
}
