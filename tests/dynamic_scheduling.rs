//! Dynamic node scheduling (paper Sec. 10): "In case of dynamic scheduling
//! we require the OS to provide this information [l_i, send_curr_round_i]
//! to the application at run-time."
//!
//! The engine supports per-round execution offsets, and these tests
//! characterize exactly when the alignment machinery stays sound — an
//! analysis the paper leaves implicit:
//!
//! * an offset *decrease* (or stay) keeps consecutive activations at most
//!   one round apart: read alignment reconstructs round `k-1` perfectly;
//! * an offset *increase* puts more than one round between activations:
//!   the interface copies of the skipped positions are overwritten before
//!   the job ever reads them, so the activation works with data one round
//!   stale for those positions — the job's matrix row and aggregated rows
//!   are off by one round there;
//! * such stale rows behave like the malicious rows of Lemma 2: the hybrid
//!   vote absorbs them while they are rare and not coincident with faults
//!   in the same execution window, and the warm-up transient ages out.
//!
//! Practical reading: dynamic scheduling is safe when the OS bounds the
//! activation gap to one round (the strict reading of the paper's
//! "executed at every round"), and degrades gracefully — not silently —
//! when it does not.

use tt_core::properties::{check_diag_cluster, checkable_rounds};
use tt_core::{DiagJob, ProtocolConfig};
use tt_sim::{ClusterBuilder, NodeId, RoundIndex, SlotEffect, TraceMode, TxCtx};

fn cfg(n: usize) -> ProtocolConfig {
    ProtocolConfig::builder(n)
        .penalty_threshold(u64::MAX / 2)
        .reward_threshold(u64::MAX / 2)
        .build()
        .unwrap()
}

#[test]
fn fault_free_dynamic_schedules_stay_healthy_after_warmup() {
    // Fully arbitrary per-round offsets, including activation gaps beyond
    // one round: in a fault-free system every stale value equals the fresh
    // one, so once the start-up transient (uninitialized buffers replayed
    // by early stale reads) ages out, diagnosis is permanently clean.
    let n = 4;
    let config = cfg(n);
    let mut cluster = ClusterBuilder::new(n)
        .build(Box::new(tt_sim::NoFaults))
        .unwrap();
    for id in NodeId::all(n) {
        let salt = id.get() as u64;
        cluster
            .add_dynamic_job(
                id,
                move |r: RoundIndex| {
                    ((r.as_u64()
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(salt * 997))
                        >> 33) as usize
                        % 4
                },
                Box::new(DiagJob::new(id, config.clone())),
            )
            .unwrap();
    }
    cluster.run_rounds(60);
    for id in NodeId::all(n) {
        let d: &DiagJob = cluster.job_as(id).unwrap();
        assert!(d.health_log().len() > 40, "{id} diagnosed most rounds");
        for rec in d.health_log().iter().filter(|h| h.diagnosed.as_u64() >= 6) {
            assert!(
                rec.health.iter().all(|&ok| ok),
                "{id}: false conviction at {:?}",
                rec.diagnosed
            );
        }
    }
}

#[test]
fn bounded_gap_dynamic_schedules_satisfy_theorem_1_under_faults() {
    // Offsets vary but never increase between consecutive rounds except by
    // re-starting a descent (a drop never hurts): each node's offset walks
    // N-1, N-2, ..., 0, 0, 0, ... phase-shifted per node, so every
    // activation gap is at most one round. Theorem 1 must hold over an
    // extended benign fault pattern, exactly as with static schedules.
    let n = 4;
    let config = cfg(n);
    let pattern = |ctx: &TxCtx| {
        if ctx.abs_slot % 11 == 4 || (40..44).contains(&ctx.abs_slot) {
            SlotEffect::Benign
        } else {
            SlotEffect::Correct
        }
    };
    let mut cluster = ClusterBuilder::new(n)
        .trace_mode(TraceMode::Anomalies)
        .build(Box::new(pattern))
        .unwrap();
    for id in NodeId::all(n) {
        let start = id.slot(); // staggered starting offsets
        cluster
            .add_dynamic_job(
                id,
                move |r: RoundIndex| start.saturating_sub(r.as_u64() as usize),
                Box::new(DiagJob::new(id, config.clone())),
            )
            .unwrap();
    }
    let total = 80;
    cluster.run_rounds(total);
    let all: Vec<NodeId> = NodeId::all(n).collect();
    let report = check_diag_cluster(&cluster, &all, checkable_rounds(total, 3));
    assert!(report.ok(), "{:?}", report.violations);
    assert!(report.rounds_checked > 60);
}

#[test]
fn sparse_jitter_away_from_faults_is_absorbed() {
    // All nodes re-schedule (with offset increases, i.e. over-long
    // activation gaps) every 10 rounds, at rounds != the fault rounds'
    // execution windows. The resulting stale rows are rare and never
    // pivotal, so correctness/completeness/consistency survive.
    let n = 4;
    let config = cfg(n);
    // Faults at rounds = 5 mod 10 (single benign slot); schedule changes
    // at rounds = 0 mod 10: the diagnosis windows (fault..fault+3) never
    // contain a jitter event.
    let pattern = |ctx: &TxCtx| {
        if ctx.round.as_u64() % 10 == 5 && ctx.sender == NodeId::new(2) {
            SlotEffect::Benign
        } else {
            SlotEffect::Correct
        }
    };
    let mut cluster = ClusterBuilder::new(n)
        .trace_mode(TraceMode::Anomalies)
        .build(Box::new(pattern))
        .unwrap();
    for id in NodeId::all(n) {
        let salt = id.get() as u64;
        cluster
            .add_dynamic_job(
                id,
                move |r: RoundIndex| {
                    // A new pseudo-random offset every 10th round.
                    let epoch = r.as_u64() / 10;
                    ((epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(salt)) >> 33) as usize
                        % 4
                },
                Box::new(DiagJob::new(id, config.clone())),
            )
            .unwrap();
    }
    let total = 80;
    cluster.run_rounds(total);
    for id in NodeId::all(n) {
        let d: &DiagJob = cluster.job_as(id).unwrap();
        for fault_round in (5..total - 4).step_by(10) {
            let rec = d
                .health_for(RoundIndex::new(fault_round))
                .unwrap_or_else(|| panic!("{id}: round {fault_round} missing"));
            assert_eq!(
                rec.health,
                vec![true, false, true, true],
                "{id} at {fault_round}"
            );
        }
    }
}

#[test]
fn single_send_curr_flip_is_outvoted() {
    // Node 4 flips send_curr_round from true (round 12) to false (round
    // 13): its round-13 slot re-transmits the syndrome already sent in
    // round 12 as if it were one round fresher. A fault in round 10
    // therefore surfaces as one stale accusation in the matrix for round
    // 11 — and is outvoted by the three fresh rows.
    let n = 4;
    let config = cfg(n);
    let fault = |ctx: &TxCtx| {
        if ctx.round == RoundIndex::new(10) && ctx.sender == NodeId::new(2) {
            SlotEffect::Benign
        } else {
            SlotEffect::Correct
        }
    };
    let mut cluster = ClusterBuilder::new(n).build(Box::new(fault)).unwrap();
    for id in NodeId::all(n) {
        let job = Box::new(DiagJob::new(id, config.clone()));
        if id == NodeId::new(4) {
            cluster
                .add_dynamic_job(
                    id,
                    |r: RoundIndex| if r == RoundIndex::new(13) { 0 } else { 2 },
                    job,
                )
                .unwrap();
        } else {
            cluster.add_job(id, 0, job).unwrap();
        }
    }
    cluster.run_rounds(24);
    for id in NodeId::all(n) {
        let d: &DiagJob = cluster.job_as(id).unwrap();
        // The genuine fault is diagnosed...
        let rec = d.health_for(RoundIndex::new(10)).unwrap();
        assert_eq!(rec.health, vec![true, false, true, true], "{id}");
        // ...and any stale accusation against node 2 around round 11 is
        // outvoted: the neighbouring rounds are diagnosed clean everywhere.
        for r in [9u64, 11, 12] {
            let rec = d.health_for(RoundIndex::new(r)).unwrap();
            assert_eq!(rec.health, vec![true; 4], "{id} at {r}");
        }
    }
}

#[test]
fn dynamic_schedule_provides_runtime_parameters_to_jobs() {
    // A probe job recording the schedule parameters the "OS" hands it.
    struct Probe {
        seen: Vec<(u64, usize, bool)>,
    }
    impl tt_sim::Job for Probe {
        fn execute(&mut self, ctx: &mut tt_sim::JobCtx<'_>) {
            self.seen
                .push((ctx.round().as_u64(), ctx.l(), ctx.send_curr_round()));
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
    }
    let mut cluster = ClusterBuilder::new(4)
        .build(Box::new(tt_sim::NoFaults))
        .unwrap();
    cluster
        .add_dynamic_job(
            NodeId::new(3), // own slot position 2
            |r: RoundIndex| (r.as_u64() as usize) % 4,
            Box::new(Probe { seen: Vec::new() }),
        )
        .unwrap();
    cluster.run_rounds(4);
    let probe: &Probe = cluster.job_as(NodeId::new(3)).unwrap();
    assert_eq!(
        probe.seen,
        vec![
            (0, 0, true),
            (1, 1, true),
            (2, 2, true),  // offset 2 <= own slot 2: still sends this round
            (3, 3, false), // offset 3 > own slot: sends next round
        ]
    );
}
