//! Integration tests for the replicated-bus substrate: the protocol over a
//! redundant TT network (as in the paper's prototype).

use tt_core::properties::{check_diag_cluster, checkable_rounds};
use tt_core::{DiagJob, ProtocolConfig};
use tt_fault::{Burst, DisturbanceNode, RandomNoise};
use tt_sim::{
    Cluster, ClusterBuilder, FaultPipeline, NodeId, ReplicatedBus, RoundIndex, TraceMode,
};

fn diag_cluster(channels: Vec<Box<dyn FaultPipeline>>, rounds: u64) -> Cluster {
    let config = ProtocolConfig::builder(4)
        .penalty_threshold(u64::MAX / 2)
        .reward_threshold(u64::MAX / 2)
        .build()
        .unwrap();
    let mut cluster = ClusterBuilder::new(4)
        .trace_mode(TraceMode::Anomalies)
        .build_with_jobs(
            |id| Box::new(DiagJob::new(id, config.clone())),
            Box::new(ReplicatedBus::new(channels)),
        );
    cluster.run_rounds(rounds);
    cluster
}

#[test]
fn single_channel_burst_is_invisible_to_the_protocol() {
    let a = DisturbanceNode::new(1).with(Burst::in_round(RoundIndex::new(10), 0, 8, 4));
    let cluster = diag_cluster(vec![Box::new(a), Box::new(tt_sim::NoFaults)], 24);
    assert!(cluster.trace().records().is_empty(), "masked on the wire");
    let d: &DiagJob = cluster.job_as(NodeId::new(1)).unwrap();
    assert!(d.health_log().iter().all(|h| h.health.iter().all(|&ok| ok)));
}

#[test]
fn overlapping_bursts_defeat_redundancy_and_are_diagnosed() {
    // Both channels lose round 10 (a spatially global disturbance, e.g.
    // strong EMI near the cluster): the fault reaches the protocol and is
    // diagnosed with full correctness/completeness/consistency.
    let a = DisturbanceNode::new(1).with(Burst::in_round(RoundIndex::new(10), 0, 4, 4));
    let b = DisturbanceNode::new(2).with(Burst::in_round(RoundIndex::new(10), 0, 4, 4));
    let cluster = diag_cluster(vec![Box::new(a), Box::new(b)], 24);
    assert_eq!(cluster.trace().records().len(), 4, "one lost round");
    let all: Vec<NodeId> = NodeId::all(4).collect();
    let report = check_diag_cluster(&cluster, &all, checkable_rounds(24, 3));
    assert!(report.ok(), "{:?}", report.violations);
    let d: &DiagJob = cluster.job_as(NodeId::new(1)).unwrap();
    assert_eq!(
        d.health_for(RoundIndex::new(10)).unwrap().health,
        vec![false; 4]
    );
}

#[test]
fn partially_overlapping_noise_reduces_fault_rate() {
    // Independent 40% noise per channel: effectively ~16% of slots lost.
    let mk = |seed| {
        Box::new(DisturbanceNode::new(seed).with(RandomNoise::everywhere(0.4)))
            as Box<dyn FaultPipeline>
    };
    let single = {
        let config = ProtocolConfig::builder(4)
            .penalty_threshold(u64::MAX / 2)
            .reward_threshold(u64::MAX / 2)
            .build()
            .unwrap();
        let mut c = ClusterBuilder::new(4)
            .trace_mode(TraceMode::Anomalies)
            .build_with_jobs(|id| Box::new(DiagJob::new(id, config.clone())), mk(3));
        c.run_rounds(100);
        c.trace().records().len()
    };
    let redundant = diag_cluster(vec![mk(3), mk(4)], 100);
    let merged = redundant.trace().records().len();
    assert!(
        merged * 2 < single,
        "redundancy cuts the effective fault rate: {merged} vs {single}"
    );
    // And the expected ~0.16 rate is in the right ballpark over 400 slots.
    assert!((30..=100).contains(&merged), "got {merged}");
}

#[test]
fn properties_hold_under_redundant_noisy_bus() {
    let mk = |seed| {
        Box::new(DisturbanceNode::new(seed).with(RandomNoise::everywhere(0.15)))
            as Box<dyn FaultPipeline>
    };
    let cluster = diag_cluster(vec![mk(10), mk(11)], 150);
    let all: Vec<NodeId> = NodeId::all(4).collect();
    let report = check_diag_cluster(&cluster, &all, checkable_rounds(150, 3));
    assert!(report.ok(), "{:?}", report.violations);
    assert!(report.rounds_checked > 100);
}

#[test]
fn burst_experiments_pass_over_a_redundant_bus() {
    // The Sec. 8 burst discipline is invariant under redundancy: a burst
    // that defeats both channels is detected exactly like a single-bus
    // burst; single-channel background noise never surfaces.
    use tt_core::DiagJob;
    for (len, start) in [(1u64, 0usize), (2, 3), (8, 2)] {
        let fault_round = RoundIndex::new(10);
        let both_a = DisturbanceNode::new(1)
            .with(Burst::in_round(fault_round, start, len, 4))
            .with(RandomNoise::everywhere(0.10));
        let both_b = DisturbanceNode::new(2)
            .with(Burst::in_round(fault_round, start, len, 4))
            .with(RandomNoise::everywhere(0.10));
        let cluster = diag_cluster(vec![Box::new(both_a), Box::new(both_b)], 24);
        // Only the deliberate burst got through both channels (the 10%
        // noises are independent; any coincidence shows in the trace and
        // is legal — the oracle handles it).
        let report = check_diag_cluster(
            &cluster,
            &NodeId::all(4).collect::<Vec<_>>(),
            checkable_rounds(24, 3),
        );
        assert!(report.ok(), "len {len}: {:?}", report.violations);
        let d: &DiagJob = cluster.job_as(NodeId::new(1)).unwrap();
        // Every burst slot convicted.
        for off in 0..len {
            let abs = fault_round.as_u64() * 4 + start as u64 + off;
            let (r, s) = (abs / 4, (abs % 4) as usize);
            let rec = d.health_for(RoundIndex::new(r)).unwrap();
            assert!(!rec.health[s], "len {len}, slot {abs}");
        }
    }
}
