//! Integration of the clock-synchronization substrate with the diagnostic
//! protocol: SOS faults emerge from clock physics and are handled per the
//! paper's extended fault model.

use tt_core::{DiagJob, ProtocolConfig};
use tt_sim::{
    ClockConfig, ClockDrivenPipeline, ClockEnsemble, ClusterBuilder, Nanos, NodeId, SlotFaultClass,
    TraceMode,
};

fn degraded_cluster(seed: u64, p: u64) -> tt_sim::Cluster {
    let mut clock_cfg = ClockConfig::healthy(4);
    clock_cfg.window_half = Nanos::from_micros(2);
    clock_cfg.measurement_jitter_ns = 120.0;
    let clocks = ClockEnsemble::new(clock_cfg, seed);
    let pipeline = ClockDrivenPipeline::new(clocks).degrade_at(10, 1, 140.0);
    let config = ProtocolConfig::builder(4)
        .penalty_threshold(p)
        .reward_threshold(1_000_000)
        .build()
        .unwrap();
    let mut cluster = ClusterBuilder::new(4)
        .trace_mode(TraceMode::Anomalies)
        .build_with_jobs(
            |id| Box::new(DiagJob::new(id, config.clone())),
            Box::new(pipeline),
        );
    cluster.run_rounds(400);
    cluster
}

#[test]
fn degrading_oscillator_is_isolated_by_the_protocol() {
    let cluster = degraded_cluster(7, 40);
    // Physics produced both asymmetric (SOS zone) and benign faults.
    let classes: Vec<SlotFaultClass> = cluster
        .trace()
        .records()
        .iter()
        .filter(|r| r.sender == NodeId::new(2))
        .map(|r| r.class)
        .collect();
    assert!(classes.contains(&SlotFaultClass::Asymmetric), "SOS crossed");
    assert!(
        classes.contains(&SlotFaultClass::Benign),
        "fully out of spec"
    );
    // Every obedient node isolated exactly the unhealthy one, consistently.
    let mut decided = Vec::new();
    for obs in [1u32, 3, 4] {
        let d: &DiagJob = cluster.job_as(NodeId::new(obs)).unwrap();
        assert!(!d.is_active(NodeId::new(2)), "node {obs}");
        assert!(d.is_active(NodeId::new(obs)));
        assert_eq!(d.isolations().len(), 1, "node {obs}");
        decided.push(d.isolations()[0].decided_at);
    }
    assert!(decided.windows(2).all(|w| w[0] == w[1]), "same round");
}

#[test]
fn healthy_ensemble_never_triggers_the_protocol() {
    let clocks = ClockEnsemble::new(ClockConfig::healthy(4), 3);
    let pipeline = ClockDrivenPipeline::new(clocks);
    let config = ProtocolConfig::builder(4)
        .penalty_threshold(5)
        .reward_threshold(100)
        .build()
        .unwrap();
    let mut cluster = ClusterBuilder::new(4)
        .trace_mode(TraceMode::Anomalies)
        .build_with_jobs(
            |id| Box::new(DiagJob::new(id, config.clone())),
            Box::new(pipeline),
        );
    cluster.run_rounds(1_000);
    assert!(cluster.trace().records().is_empty(), "no mistimed frames");
    for id in NodeId::all(4) {
        let d: &DiagJob = cluster.job_as(id).unwrap();
        assert!(NodeId::all(4).all(|x| d.is_active(x)));
        assert_eq!(d.penalty(NodeId::new(2)), 0);
    }
}

#[test]
fn sos_runs_are_deterministic_per_seed() {
    let fingerprint = |seed: u64| {
        let cluster = degraded_cluster(seed, 40);
        let d: &DiagJob = cluster.job_as(NodeId::new(1)).unwrap();
        (
            cluster.trace().records().len(),
            d.isolations().first().map(|i| i.decided_at),
        )
    };
    assert_eq!(fingerprint(7), fingerprint(7));
    assert_ne!(fingerprint(7), fingerprint(8));
}

#[test]
fn penalty_threshold_delays_but_does_not_prevent_isolation() {
    let early = degraded_cluster(7, 10);
    let late = degraded_cluster(7, 200);
    let e: &DiagJob = early.job_as(NodeId::new(1)).unwrap();
    let l: &DiagJob = late.job_as(NodeId::new(1)).unwrap();
    let e_at = e.isolations()[0].decided_at.as_u64();
    let l_at = l.isolations()[0].decided_at.as_u64();
    assert!(e_at < l_at, "higher P waits longer: {e_at} vs {l_at}");
    assert!(
        !l.is_active(NodeId::new(2)),
        "but the unhealthy node still goes"
    );
}
