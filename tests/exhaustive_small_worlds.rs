//! Exhaustive model-checking-style verification on small worlds: instead of
//! sampling fault patterns, enumerate *every* pattern in a bounded window
//! and check Theorem 1's properties on each. Complements the randomized
//! property tests with full coverage of the small state space.
//!
//! The enumerations are parameterized over the cluster size `N ∈ {4, 5}`
//! and the window shape (start round and width); the N = 5 two-round
//! enumerations are `#[ignore]`d and run by the weekly soak job
//! (`cargo test -- --ignored`).

use tt_core::properties::{check_diag_cluster, checkable_rounds};
use tt_core::{DiagJob, ProtocolConfig};
use tt_sim::{Cluster, ClusterBuilder, Nanos, NodeId, SlotEffect, TraceMode, TxCtx};

const TOTAL_ROUNDS: u64 = 16;

/// One world shape under enumeration: the cluster size and the bounded
/// window of rounds whose slots the enumerated pattern drives.
#[derive(Clone, Copy)]
struct World {
    n: usize,
    window_start: u64,
    window_rounds: u64,
}

/// N = 4 with the original two-round window starting at round 8.
const W4: World = World {
    n: 4,
    window_start: 8,
    window_rounds: 2,
};

/// N = 4, window shifted earlier — alignment must not matter.
const W4_EARLY: World = World {
    n: 4,
    window_start: 6,
    window_rounds: 2,
};

/// N = 5, single-round window (fast enough for every PR).
const W5: World = World {
    n: 5,
    window_start: 8,
    window_rounds: 1,
};

/// N = 5, two-round window — 2^10 benign worlds; weekly soak only.
const W5_WIDE: World = World {
    n: 5,
    window_start: 8,
    window_rounds: 2,
};

impl World {
    const fn slots(&self) -> u64 {
        self.window_rounds * self.n as u64
    }
}

/// TDMA round length divisible by `n` (slot boundaries must fall on whole
/// nanoseconds).
fn round_for(n: usize) -> Nanos {
    Nanos::from_nanos(2_500_000 - (2_500_000 % n as u64))
}

fn run_pattern(
    world: World,
    effect_of_slot: impl Fn(u64) -> SlotEffect + Send + Copy + 'static,
) -> Cluster {
    let cfg = ProtocolConfig::builder(world.n)
        .penalty_threshold(u64::MAX / 2)
        .reward_threshold(u64::MAX / 2)
        .build()
        .unwrap();
    let n = world.n;
    let pipeline = move |ctx: &TxCtx| {
        let r = ctx.round.as_u64();
        if (world.window_start..world.window_start + world.window_rounds).contains(&r) {
            let idx = (r - world.window_start) * n as u64 + ctx.sender.slot() as u64;
            effect_of_slot(idx)
        } else {
            SlotEffect::Correct
        }
    };
    let mut cluster = ClusterBuilder::new(n)
        .round_length(round_for(n))
        .trace_mode(TraceMode::Anomalies)
        .build_with_jobs(
            |id| Box::new(DiagJob::new(id, cfg.clone())),
            Box::new(pipeline),
        );
    cluster.run_rounds(TOTAL_ROUNDS);
    cluster
}

fn all_nodes(n: usize) -> Vec<NodeId> {
    NodeId::all(n).collect()
}

/// Every benign/correct pattern over the window: 2^slots worlds. All of
/// them lie within Lemma 3's hypothesis (benign-only), so all three
/// properties must hold in every world, including total blackouts.
fn check_benign_patterns(world: World) {
    let slots = world.slots() as u32;
    for mask in 0u32..(1 << slots) {
        let cluster = run_pattern(world, move |idx| {
            if mask & (1 << idx) != 0 {
                SlotEffect::Benign
            } else {
                SlotEffect::Correct
            }
        });
        let report = check_diag_cluster(
            &cluster,
            &all_nodes(world.n),
            checkable_rounds(TOTAL_ROUNDS, 3),
        );
        assert!(
            report.ok(),
            "n={} mask {mask:#012b}: {:?}",
            world.n,
            report.violations
        );
        assert_eq!(
            report.rounds_out_of_hypothesis, 0,
            "n={} mask {mask:#012b}",
            world.n
        );
    }
}

#[test]
fn all_benign_patterns_over_two_rounds() {
    check_benign_patterns(W4);
}

#[test]
fn all_benign_patterns_over_an_early_window() {
    check_benign_patterns(W4_EARLY);
}

#[test]
fn all_benign_patterns_at_n5() {
    check_benign_patterns(W5);
}

#[test]
#[ignore = "N = 5 two-round benign enumeration (1024 worlds): weekly soak"]
fn all_benign_patterns_at_n5_over_two_rounds() {
    check_benign_patterns(W5_WIDE);
}

/// One asymmetric sender (every non-trivial receiver subset) combined with
/// every placement of one additional benign slot in the same window.
/// Returns `(rounds_checked, rounds_out_of_hypothesis)` accumulated over
/// the enumeration so callers can assert the size-dependent expectation:
/// at N = 4, a = 1 plus b = 1 exceeds Lemma 2's bound (`4 > 2+0+1+1` is
/// false) and the oracle must classify-and-skip; at N = 5 the same pair is
/// within the bound and every round must be checked.
fn check_one_asymmetric_with_benign(world: World) -> (u64, u64) {
    let mut checked = 0u64;
    let mut skipped = 0u64;
    let n = world.n;
    // The asymmetric fault sits in the first slot of the window (the
    // round's first sender); receiver subsets: strict, non-empty subsets
    // of the other n-1 nodes.
    for subset in 1u8..(1 << (n - 1)) - 1 {
        // `benign_at = slots` places no extra benign fault.
        let slots = world.slots();
        for benign_at in 1..=slots {
            let cluster = run_pattern(world, move |idx| {
                if idx == 0 {
                    let detected_by = (1..n).filter(|&r| subset & (1 << (r - 1)) != 0).collect();
                    SlotEffect::Asymmetric {
                        detected_by,
                        collision_ok: true,
                    }
                } else if idx == benign_at && benign_at < slots {
                    SlotEffect::Benign
                } else {
                    SlotEffect::Correct
                }
            });
            let report =
                check_diag_cluster(&cluster, &all_nodes(n), checkable_rounds(TOTAL_ROUNDS, 3));
            assert!(
                report.ok(),
                "n={n} subset {subset:#06b}, benign at {benign_at}: {:?}",
                report.violations
            );
            checked += report.rounds_checked;
            skipped += report.rounds_out_of_hypothesis;
        }
    }
    (checked, skipped)
}

#[test]
fn one_asymmetric_sender_with_optional_benign_slot() {
    let (checked, skipped) = check_one_asymmetric_with_benign(W4);
    assert!(checked > 0, "in-hypothesis rounds were verified");
    assert!(skipped > 0, "a=1,b=1 exceeds N=4's bound and is skipped");
}

#[test]
fn one_asymmetric_sender_with_optional_benign_slot_at_n5() {
    let (checked, skipped) = check_one_asymmetric_with_benign(W5);
    assert!(checked > 0, "in-hypothesis rounds were verified");
    assert_eq!(skipped, 0, "a=1,b=1 is within N=5's bound: nothing skipped");
}

/// One symmetric-malicious diagnostic message in every slot position of
/// the window, sweeping every possible wrong syndrome payload (2^n). With
/// s = 1 the bound `n > 2a + 2s + b + 1` holds at both N = 4 and N = 5,
/// so correctness/completeness/consistency must all hold.
fn check_malicious_syndromes(world: World) {
    let payloads = 1u8 << world.n;
    for slot in 0..world.slots() {
        for payload in 0..payloads {
            let cluster = run_pattern(world, move |idx| {
                if idx == slot {
                    SlotEffect::SymmetricMalicious {
                        payload: bytes::Bytes::copy_from_slice(&[payload]),
                    }
                } else {
                    SlotEffect::Correct
                }
            });
            let report = check_diag_cluster(
                &cluster,
                &all_nodes(world.n),
                checkable_rounds(TOTAL_ROUNDS, 3),
            );
            assert!(
                report.ok(),
                "n={} slot {slot}, payload {payload:#07b}: {:?}",
                world.n,
                report.violations
            );
            assert_eq!(report.rounds_out_of_hypothesis, 0);
        }
    }
}

#[test]
fn every_malicious_syndrome_in_every_slot() {
    check_malicious_syndromes(W4);
}

#[test]
fn every_malicious_syndrome_at_n5() {
    check_malicious_syndromes(W5);
}

#[test]
#[ignore = "N = 5 two-round malicious sweep (320 worlds): weekly soak"]
fn every_malicious_syndrome_at_n5_over_two_rounds() {
    check_malicious_syndromes(W5_WIDE);
}

/// Every internal node schedule of a 4-node cluster (4^4 = 256 offset
/// combinations), each facing the same single benign fault: read/send
/// alignment must deliver identical, correct verdicts under all of them —
/// the "no constraints on scheduling" claim, checked exhaustively.
#[test]
fn all_node_schedules_agree() {
    const N: usize = 4;
    let cfg = ProtocolConfig::builder(N)
        .penalty_threshold(u64::MAX / 2)
        .reward_threshold(u64::MAX / 2)
        .build()
        .unwrap();
    let fault = |ctx: &TxCtx| {
        if ctx.round.as_u64() == 9 && ctx.sender == NodeId::new(3) {
            SlotEffect::Benign
        } else {
            SlotEffect::Correct
        }
    };
    for combo in 0..(N as u32).pow(N as u32) {
        let mut cluster = ClusterBuilder::new(N)
            .trace_mode(TraceMode::Off)
            .build(Box::new(fault))
            .unwrap();
        let mut c = combo;
        for id in NodeId::all(N) {
            let offset = (c as usize) % N;
            c /= N as u32;
            cluster
                .add_job(id, offset, Box::new(DiagJob::new(id, cfg.clone())))
                .unwrap();
        }
        cluster.run_rounds(TOTAL_ROUNDS);
        let expected = vec![true, true, false, true];
        for id in NodeId::all(N) {
            let d: &DiagJob = cluster.job_as(id).unwrap();
            let rec = d
                .health_for(tt_sim::RoundIndex::new(9))
                .unwrap_or_else(|| panic!("combo {combo}, node {id}: round 9 missing"));
            assert_eq!(rec.health, expected, "combo {combo}, node {id}");
            // Clean neighbours stay clean.
            let prev = d.health_for(tt_sim::RoundIndex::new(8)).unwrap();
            assert!(prev.health.iter().all(|&b| b), "combo {combo}, node {id}");
        }
    }
}
