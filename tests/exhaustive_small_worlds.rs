//! Exhaustive model-checking-style verification on small worlds: instead of
//! sampling fault patterns, enumerate *every* pattern in a bounded window
//! and check Theorem 1's properties on each. Complements the randomized
//! property tests with full coverage of the small state space.

use tt_core::properties::{check_diag_cluster, checkable_rounds};
use tt_core::{DiagJob, ProtocolConfig};
use tt_sim::{Cluster, ClusterBuilder, NodeId, SlotEffect, TraceMode, TxCtx};

const N: usize = 4;
/// The window of rounds whose slots are driven by the enumeration; wide
/// enough that one protocol execution (diagnosed + dissemination) fits
/// inside with margin.
const WINDOW_START: u64 = 8;
const WINDOW_ROUNDS: u64 = 2;
const TOTAL_ROUNDS: u64 = 16;

fn run_pattern(effect_of_slot: impl Fn(u64) -> SlotEffect + Send + Copy + 'static) -> Cluster {
    let cfg = ProtocolConfig::builder(N)
        .penalty_threshold(u64::MAX / 2)
        .reward_threshold(u64::MAX / 2)
        .build()
        .unwrap();
    let pipeline = move |ctx: &TxCtx| {
        let r = ctx.round.as_u64();
        if (WINDOW_START..WINDOW_START + WINDOW_ROUNDS).contains(&r) {
            let idx = (r - WINDOW_START) * N as u64 + ctx.sender.slot() as u64;
            effect_of_slot(idx)
        } else {
            SlotEffect::Correct
        }
    };
    let mut cluster = ClusterBuilder::new(N)
        .trace_mode(TraceMode::Anomalies)
        .build_with_jobs(
            |id| Box::new(DiagJob::new(id, cfg.clone())),
            Box::new(pipeline),
        );
    cluster.run_rounds(TOTAL_ROUNDS);
    cluster
}

fn all_nodes() -> Vec<NodeId> {
    NodeId::all(N).collect()
}

/// Every benign/correct pattern over a 2-round window: 2^(2N) = 256 worlds.
/// All of them lie within Lemma 3's hypothesis (benign-only), so all three
/// properties must hold in every world, including total blackouts.
#[test]
fn all_benign_patterns_over_two_rounds() {
    let slots = (WINDOW_ROUNDS * N as u64) as u32;
    for mask in 0u32..(1 << slots) {
        let cluster = run_pattern(move |idx| {
            if mask & (1 << idx) != 0 {
                SlotEffect::Benign
            } else {
                SlotEffect::Correct
            }
        });
        let report = check_diag_cluster(&cluster, &all_nodes(), checkable_rounds(TOTAL_ROUNDS, 3));
        assert!(report.ok(), "mask {mask:#010b}: {:?}", report.violations);
        assert_eq!(report.rounds_out_of_hypothesis, 0, "mask {mask:#010b}");
    }
}

/// One asymmetric sender (every non-trivial receiver subset) combined with
/// every placement of one additional benign slot in the same window:
/// within Lemma 2's bound for N = 4 (a = 1, s = 0, b <= 1: 4 > 2+0+1+1 is
/// false for b = 1... so only the b = 0 cases are in-hypothesis; the
/// oracle classifies and skips the rest, and we assert it found both
/// kinds).
#[test]
fn one_asymmetric_sender_with_optional_benign_slot() {
    let mut checked = 0u64;
    let mut skipped = 0u64;
    // The asymmetric fault sits in the first slot of the window (sender 1);
    // receiver subsets: strict, non-empty subsets of {1, 2, 3} (indices of
    // the other nodes).
    for subset in 1u8..7 {
        // `benign_at = slots` places no extra benign fault.
        let slots = WINDOW_ROUNDS * N as u64;
        for benign_at in 1..=slots {
            let cluster = run_pattern(move |idx| {
                if idx == 0 {
                    let detected_by = (1..N).filter(|&r| subset & (1 << (r - 1)) != 0).collect();
                    SlotEffect::Asymmetric {
                        detected_by,
                        collision_ok: true,
                    }
                } else if idx == benign_at && benign_at < slots {
                    SlotEffect::Benign
                } else {
                    SlotEffect::Correct
                }
            });
            let report =
                check_diag_cluster(&cluster, &all_nodes(), checkable_rounds(TOTAL_ROUNDS, 3));
            assert!(
                report.ok(),
                "subset {subset:#05b}, benign at {benign_at}: {:?}",
                report.violations
            );
            checked += report.rounds_checked;
            skipped += report.rounds_out_of_hypothesis;
        }
    }
    assert!(checked > 0, "in-hypothesis rounds were verified");
    assert!(skipped > 0, "a=1,b=1 exceeds N=4's bound and is skipped");
}

/// One symmetric-malicious diagnostic message in every slot position of the
/// window: with N = 4 and s = 1 the bound `4 > 2·0 + 2·1 + 0 + 1` holds,
/// so correctness/completeness/consistency must all hold. The malicious
/// payload sweeps all 16 possible wrong syndromes.
#[test]
fn every_malicious_syndrome_in_every_slot() {
    for slot in 0..(WINDOW_ROUNDS * N as u64) {
        for payload in 0u8..16 {
            let cluster = run_pattern(move |idx| {
                if idx == slot {
                    SlotEffect::SymmetricMalicious {
                        payload: bytes::Bytes::copy_from_slice(&[payload]),
                    }
                } else {
                    SlotEffect::Correct
                }
            });
            let report =
                check_diag_cluster(&cluster, &all_nodes(), checkable_rounds(TOTAL_ROUNDS, 3));
            assert!(
                report.ok(),
                "slot {slot}, payload {payload:#06b}: {:?}",
                report.violations
            );
            assert_eq!(report.rounds_out_of_hypothesis, 0);
        }
    }
}

/// Every internal node schedule of a 4-node cluster (4^4 = 256 offset
/// combinations), each facing the same single benign fault: read/send
/// alignment must deliver identical, correct verdicts under all of them —
/// the "no constraints on scheduling" claim, checked exhaustively.
#[test]
fn all_node_schedules_agree() {
    let cfg = ProtocolConfig::builder(N)
        .penalty_threshold(u64::MAX / 2)
        .reward_threshold(u64::MAX / 2)
        .build()
        .unwrap();
    let fault = |ctx: &TxCtx| {
        if ctx.round.as_u64() == 9 && ctx.sender == NodeId::new(3) {
            SlotEffect::Benign
        } else {
            SlotEffect::Correct
        }
    };
    for combo in 0..(N as u32).pow(N as u32) {
        let mut cluster = ClusterBuilder::new(N)
            .trace_mode(TraceMode::Off)
            .build(Box::new(fault))
            .unwrap();
        let mut c = combo;
        for id in NodeId::all(N) {
            let offset = (c as usize) % N;
            c /= N as u32;
            cluster
                .add_job(id, offset, Box::new(DiagJob::new(id, cfg.clone())))
                .unwrap();
        }
        cluster.run_rounds(TOTAL_ROUNDS);
        let expected = vec![true, true, false, true];
        for id in NodeId::all(N) {
            let d: &DiagJob = cluster.job_as(id).unwrap();
            let rec = d
                .health_for(tt_sim::RoundIndex::new(9))
                .unwrap_or_else(|| panic!("combo {combo}, node {id}: round 9 missing"));
            assert_eq!(rec.health, expected, "combo {combo}, node {id}");
            // Clean neighbours stay clean.
            let prev = d.health_for(tt_sim::RoundIndex::new(8)).unwrap();
            assert!(prev.health.iter().all(|&b| b), "combo {combo}, node {id}");
        }
    }
}

/// The benign-pattern enumeration repeated at N = 5 over one round
/// (2^5 = 32 patterns x 5 burst alignments): the blackout lemma and the
/// voting hold at the next cluster size up, exhaustively.
#[test]
fn all_benign_patterns_at_n5() {
    let cfg = ProtocolConfig::builder(5)
        .penalty_threshold(u64::MAX / 2)
        .reward_threshold(u64::MAX / 2)
        .build()
        .unwrap();
    for mask in 0u32..(1 << 5) {
        for shift in 0..5u64 {
            let pattern = move |ctx: &TxCtx| {
                let r = ctx.round.as_u64();
                if r == WINDOW_START && mask & (1 << ((ctx.sender.slot() as u64 + shift) % 5)) != 0
                {
                    SlotEffect::Benign
                } else {
                    SlotEffect::Correct
                }
            };
            let mut cluster = ClusterBuilder::new(5)
                .round_length(tt_sim::Nanos::from_micros(2_500))
                .trace_mode(TraceMode::Anomalies)
                .build(Box::new(pattern))
                .unwrap();
            for id in NodeId::all(5) {
                cluster
                    .add_job(id, 0, Box::new(DiagJob::new(id, cfg.clone())))
                    .unwrap();
            }
            cluster.run_rounds(TOTAL_ROUNDS);
            let all: Vec<NodeId> = NodeId::all(5).collect();
            let report = check_diag_cluster(&cluster, &all, checkable_rounds(TOTAL_ROUNDS, 3));
            assert!(
                report.ok(),
                "mask {mask:#07b} shift {shift}: {:?}",
                report.violations
            );
        }
    }
}
