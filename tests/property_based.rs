//! Property-based tests (proptest) on the protocol's core invariants,
//! generalizing beyond the paper's 4-node prototype.

use proptest::collection::vec;
use proptest::prelude::*;

use tt_core::alignment::read_align;
use tt_core::penalty::{PenaltyReward, ReintegrationPolicy};
use tt_core::properties::{
    alg2_state_violations, check_alg2_cluster, check_diag_cluster, checkable_rounds,
};
use tt_core::syndrome::Syndrome;
use tt_core::voting::{h_maj, HMaj};
use tt_core::{DiagJob, ProtocolConfig};
use tt_fault::explore::{
    clique_partition_faults, FaultSchedule, ProtocolUnderTest, ScheduledClass, ScheduledFault,
};
use tt_fault::DisturbanceNode;
use tt_sim::{ClusterBuilder, NodeId, SlotEffect, TraceMode};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// H-maj is invariant under vote permutation.
    #[test]
    fn hmaj_permutation_invariant(votes in vec(prop_oneof![
        Just(None), Just(Some(true)), Just(Some(false))
    ], 0..12), seed in any::<u64>()) {
        let base = h_maj(votes.clone());
        let mut shuffled = votes.clone();
        // Deterministic Fisher-Yates from the seed.
        let mut s = seed;
        for i in (1..shuffled.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            shuffled.swap(i, (s % (i as u64 + 1)) as usize);
        }
        prop_assert_eq!(h_maj(shuffled), base);
    }

    /// Adding ε votes never changes the outcome of a decided vote.
    #[test]
    fn hmaj_epsilon_padding_is_neutral(votes in vec(prop_oneof![
        Just(Some(true)), Just(Some(false))
    ], 1..10), pad in 0usize..8) {
        let base = h_maj(votes.clone());
        let mut padded = votes;
        padded.extend(std::iter::repeat_n(None, pad));
        prop_assert_eq!(h_maj(padded), base);
    }

    /// A strict majority of identical opinions always wins.
    #[test]
    fn hmaj_majority_wins(majority in 1usize..8, minority in 0usize..8, v in any::<bool>()) {
        prop_assume!(majority > minority);
        let mut votes: Vec<Option<bool>> = std::iter::repeat_n(Some(v), majority).collect();
        votes.extend(std::iter::repeat_n(Some(!v), minority));
        prop_assert_eq!(h_maj(votes), HMaj::Decided(v));
    }

    /// Read alignment is exactly prefix-of-prev + suffix-of-curr.
    #[test]
    fn read_align_law(prev in vec(any::<u32>(), 0..16), l_frac in 0.0f64..=1.0) {
        let n = prev.len();
        let curr: Vec<u32> = prev.iter().map(|x| x.wrapping_add(1)).collect();
        let l = (l_frac * n as f64) as usize;
        let aligned = read_align(&prev, &curr, l);
        prop_assert_eq!(&aligned[..l], &prev[..l]);
        prop_assert_eq!(&aligned[l..], &curr[l..]);
    }

    /// Syndromes survive the wire: encode/decode is the identity for any
    /// cluster size and bit pattern.
    #[test]
    fn syndrome_roundtrip(bits in vec(any::<bool>(), 1..64)) {
        let s = Syndrome::from_bits(bits.clone());
        let decoded = Syndrome::decode(&s.encode(), bits.len());
        prop_assert_eq!(decoded, s);
    }

    /// p/r invariants over arbitrary health sequences: activity is
    /// monotone (no reintegration), isolation implies the threshold was
    /// strictly exceeded, rewards never reach R after an update, and
    /// counters stay zero for always-healthy nodes.
    #[test]
    fn penalty_reward_invariants(
        seq in vec(vec(any::<bool>(), 3), 1..200),
        p in 1u64..20,
        r in 1u64..20,
        crit in 1u64..10,
    ) {
        let mut pr = PenaltyReward::new(3, vec![crit; 3], p, r, ReintegrationPolicy::Never);
        let mut was_inactive = [false; 3];
        for hv in &seq {
            pr.update(hv);
            #[allow(clippy::needless_range_loop)] // i indexes both the tracker and pr
            for i in 0..3 {
                let node = NodeId::from_slot(i);
                if was_inactive[i] {
                    prop_assert!(!pr.is_active(node), "no spontaneous reintegration");
                }
                was_inactive[i] = !pr.is_active(node);
                if !pr.is_active(node) {
                    prop_assert!(pr.penalty(node) > p);
                }
                prop_assert!(pr.reward(node) < r, "rewards reset at R");
                if pr.penalty(node) == 0 {
                    prop_assert_eq!(pr.reward(node), 0, "no reward without penalty");
                }
            }
        }
        // A node that was never reported faulty has untouched counters.
        let clean = (0..3).find(|&i| seq.iter().all(|hv| hv[i]));
        if let Some(i) = clean {
            let node = NodeId::from_slot(i);
            prop_assert_eq!(pr.penalty(node), 0);
            prop_assert!(pr.is_active(node));
        }
    }
}

proptest! {
    // End-to-end cases are heavier: fewer, bigger.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorem 1, mechanically: for any cluster size 3..=8, any node
    /// schedule offsets and any benign-only fault pattern (always within
    /// Lemma 3's hypothesis), the protocol satisfies correctness,
    /// completeness and consistency on every diagnosed round.
    #[test]
    fn theorem1_holds_for_random_benign_patterns(
        n in 3usize..=8,
        offsets_seed in any::<u64>(),
        fault_slots in vec((0u64..160, any::<bool>()), 0..40),
    ) {
        let rounds = 40u64;
        let faulty: std::collections::BTreeSet<u64> = fault_slots
            .iter()
            .filter(|(_, on)| *on)
            .map(|(s, _)| *s % (rounds * n as u64))
            .collect();
        let pattern = move |ctx: &tt_sim::TxCtx| {
            if faulty.contains(&ctx.abs_slot) {
                SlotEffect::Benign
            } else {
                SlotEffect::Correct
            }
        };
        let cfg = ProtocolConfig::builder(n)
            .penalty_threshold(u64::MAX / 2)
            .reward_threshold(u64::MAX / 2)
            .build()
            .unwrap();
        let mut cluster = ClusterBuilder::new(n)
            .round_length(tt_sim::Nanos::from_nanos(2_500_000 - (2_500_000 % n as u64)))
            .trace_mode(TraceMode::Anomalies)
            .build(Box::new(pattern))
            .unwrap();
        // Random (but deterministic) job offsets exercise read/send
        // alignment across mixed schedules.
        let mut s = offsets_seed;
        for id in NodeId::all(n) {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let offset = (s >> 33) as usize % n;
            cluster.add_job(id, offset, Box::new(DiagJob::new(id, cfg.clone()))).unwrap();
        }
        cluster.run_rounds(rounds);
        let all: Vec<NodeId> = NodeId::all(n).collect();
        let report = check_diag_cluster(&cluster, &all, checkable_rounds(rounds, 3));
        prop_assert!(report.ok(), "violations: {:?}", report.violations);
        prop_assert_eq!(report.rounds_out_of_hypothesis, 0, "benign-only is always in-hypothesis");
    }

    /// The low-latency variant agrees with itself across nodes and always
    /// decides with exactly one round of latency, for any benign pattern.
    #[test]
    fn lowlat_consistent_for_random_benign_patterns(
        n in 3usize..=6,
        fault_slots in vec(0u64..100, 0..20),
    ) {
        use tt_core::lowlat::LowLatCluster;
        let faulty: std::collections::BTreeSet<u64> = fault_slots.into_iter().collect();
        let pattern = move |ctx: &tt_sim::TxCtx| {
            if faulty.contains(&ctx.abs_slot) {
                SlotEffect::Benign
            } else {
                SlotEffect::Correct
            }
        };
        let mut cluster = LowLatCluster::new(n, false, Box::new(pattern));
        cluster.run_rounds(30);
        let reference = cluster.verdicts(NodeId::new(1)).to_vec();
        prop_assert!(reference.iter().all(|v| v.latency_slots() == n as u64));
        for id in 2..=n as u32 {
            prop_assert_eq!(cluster.verdicts(NodeId::new(id)), &reference[..]);
        }
    }

    /// Campaign experiments pass for arbitrary seeds (not just the ones
    /// hard-coded in unit tests).
    #[test]
    fn burst_experiments_pass_for_any_seed(seed in any::<u64>(), start in 0usize..4) {
        let outcome = tt_fault::run_experiment(
            tt_fault::ExperimentClass::Burst { len_slots: 2, start_slot: start },
            4,
            seed,
        );
        prop_assert!(outcome.passed, "{:?}", outcome.notes);
    }
}

/// Non-proptest sanity check: the DisturbanceNode used by campaigns is
/// deterministic per seed (guards the reproducibility claim).
#[test]
fn disturbance_node_determinism() {
    use tt_sim::FaultPipeline;
    let run = |seed: u64| {
        let mut d = DisturbanceNode::new(seed).with(tt_fault::RandomNoise::everywhere(0.5));
        (0..64u64)
            .map(|abs| {
                let ctx = tt_sim::TxCtx {
                    round: tt_sim::RoundIndex::new(abs / 4),
                    sender: NodeId::from_slot((abs % 4) as usize),
                    n_nodes: 4,
                    abs_slot: abs,
                };
                d.effect(&ctx) == SlotEffect::Benign
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(run(123), run(123));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Theorem 2, mechanically: a single asymmetric fault with any strict
    /// non-empty receiver subset, at any round, in any cluster size 4..=7:
    /// all obedient nodes install identical membership views, and any view
    /// change excludes only nodes that were deemed faulty or sat in the
    /// minority clique.
    #[test]
    fn membership_views_agree_for_any_single_asymmetric_fault(
        n in 4usize..=7,
        fault_round in 6u64..12,
        subset_seed in any::<u64>(),
        sender_pick in any::<u64>(),
    ) {
        use tt_core::MembershipJob;
        let sender = NodeId::new((sender_pick % n as u64) as u32 + 1);
        // A strict, non-empty subset of the receivers.
        let others: Vec<usize> = (0..n).filter(|&i| i != sender.index()).collect();
        let mut mask = subset_seed % (1u64 << others.len());
        if mask == 0 {
            mask = 1;
        }
        if mask == (1u64 << others.len()) - 1 {
            mask -= 1; // keep it strict (not all): that would be benign
        }
        let detected: Vec<usize> = others
            .iter()
            .enumerate()
            .filter(|(bit, _)| mask & (1 << bit) != 0)
            .map(|(_, &r)| r)
            .collect();
        prop_assume!(!detected.is_empty());
        let fr = tt_sim::RoundIndex::new(fault_round);
        let det = detected.clone();
        let pattern = move |ctx: &tt_sim::TxCtx| {
            if ctx.round == fr && ctx.sender == sender {
                SlotEffect::Asymmetric {
                    detected_by: det.clone(),
                    collision_ok: true,
                }
            } else {
                SlotEffect::Correct
            }
        };
        let cfg = ProtocolConfig::builder(n)
            .penalty_threshold(1_000)
            .reward_threshold(1_000)
            .build()
            .unwrap();
        let round_len = tt_sim::Nanos::from_nanos(2_520_000 - (2_520_000 % n as u64));
        let mut cluster = ClusterBuilder::new(n)
            .round_length(round_len)
            .build(Box::new(pattern))
            .unwrap();
        for id in NodeId::all(n) {
            cluster
                .add_job(id, 0, Box::new(MembershipJob::new(id, cfg.clone())))
                .unwrap();
        }
        cluster.run_rounds(fault_round + 14);
        let views: Vec<Vec<NodeId>> = NodeId::all(n)
            .map(|id| {
                let m: &MembershipJob = cluster.job_as(id).unwrap();
                m.current_view().members.clone()
            })
            .collect();
        prop_assert!(views.windows(2).all(|w| w[0] == w[1]), "views diverge: {views:?}");
        // The excluded set is either empty (majority saw the message, no
        // divergent syndrome survived), or the minority clique, or the
        // sender (when the accusers held the majority) — possibly plus
        // minority members. Never more than min(|detected|, N-1-|detected|) + 1.
        let excluded = n - views[0].len();
        let minority = detected.len().min(n - 1 - detected.len());
        prop_assert!(
            excluded <= minority + 1,
            "excluded {excluded}, detected {}, n {n}",
            detected.len()
        );
    }

    /// Syndrome decoding never panics and is total for arbitrary payloads
    /// and cluster sizes (malicious frames carry arbitrary bytes).
    #[test]
    fn syndrome_decode_is_total(payload in vec(any::<u8>(), 0..64), n in 1usize..=64) {
        let s = Syndrome::decode(&payload, n);
        prop_assert_eq!(s.len(), n);
        let _ = s.accused();
    }

    /// The campaign runner is green for the full class list on 6-node
    /// clusters too (the paper's structure generalized past N = 4).
    #[test]
    fn six_node_campaign_classes_pass(seed in any::<u64>()) {
        for class in [
            tt_fault::ExperimentClass::Burst { len_slots: 2, start_slot: 5 },
            tt_fault::ExperimentClass::Burst { len_slots: 12, start_slot: 1 },
            tt_fault::ExperimentClass::MaliciousSyndromes { node: NodeId::new(6) },
            tt_fault::ExperimentClass::CliqueFormation { victim: NodeId::new(2) },
        ] {
            let o = tt_fault::run_experiment(class, 6, seed);
            prop_assert!(o.passed, "{class:?}: {:?}", o.notes);
        }
    }
}

// Alg. 2 (penalty/reward) invariants, stated over the *same* predicates the
// fault-schedule explorer uses as oracles (`alg2_state_violations`,
// `check_alg2_cluster`): what proptest verifies here is exactly what the
// explorer checks against every generated schedule.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No isolation while the penalty is at or below P: an arbitrary
    /// health-vector sequence never drives a node inactive without its
    /// penalty strictly exceeding the threshold, and the explorer's
    /// stepwise oracle agrees at every step.
    #[test]
    fn alg2_no_isolation_at_or_below_threshold(
        seq in vec(vec(any::<bool>(), 4), 1..150),
        p in 1u64..12,
        r in 1u64..8,
        crit in 1u64..6,
    ) {
        let n = 4;
        let mut pr = PenaltyReward::new(n, vec![crit; n], p, r, ReintegrationPolicy::Never);
        for (step, hv) in seq.iter().enumerate() {
            pr.update(hv);
            for id in NodeId::all(n) {
                if !pr.is_active(id) {
                    prop_assert!(pr.penalty(id) > p, "isolated at penalty <= P");
                } else {
                    prop_assert!(pr.penalty(id) <= p, "active past the threshold");
                }
            }
            let viols = alg2_state_violations(
                &pr, n, p, r, NodeId::new(1), tt_sim::RoundIndex::new(step as u64),
            );
            prop_assert!(viols.is_empty(), "step {step}: {viols:?}");
        }
    }

    /// Forgiveness fires exactly when the reward reaches R — not one good
    /// round earlier (counters frozen except the climbing reward) and not
    /// one later (both counters reset to zero at the R-th good round).
    #[test]
    fn alg2_forgiveness_fires_exactly_at_r(
        convictions in 1u64..4,
        p in 4u64..10,
        r in 2u64..8,
    ) {
        let n = 4;
        let node = NodeId::new(2);
        let mut pr = PenaltyReward::new(n, vec![1; n], p, r, ReintegrationPolicy::Never);
        let mut bad = vec![true; n];
        bad[node.index()] = false;
        let good = vec![true; n];
        for _ in 0..convictions {
            pr.update(&bad);
        }
        prop_assert_eq!(pr.penalty(node), convictions, "s_i = 1 per conviction");
        prop_assert_eq!(pr.reward(node), 0, "conviction resets the reward");
        prop_assert!(pr.is_active(node), "penalty <= P keeps the node in");
        for k in 1..=r {
            pr.update(&good);
            if k < r {
                prop_assert_eq!(pr.penalty(node), convictions, "penalty frozen below R");
                prop_assert_eq!(pr.reward(node), k, "reward climbs one per good round");
            } else {
                prop_assert_eq!(pr.penalty(node), 0, "forgiveness resets the penalty");
                prop_assert_eq!(pr.reward(node), 0, "forgiveness resets the reward");
            }
        }
    }

    /// The counters never change except via the paper's transitions:
    /// conviction (+s_i, reward := 0, isolate iff penalty > P), reward
    /// increment (healthy with penalty > 0), forgiveness (reset at R),
    /// or frozen (isolated, clean, or healthy at zero penalty).
    #[test]
    fn alg2_counters_change_only_via_paper_transitions(
        seq in vec(vec(any::<bool>(), 4), 1..150),
        p in 1u64..12,
        r in 1u64..8,
        crit in 1u64..6,
    ) {
        let n = 4;
        let mut pr = PenaltyReward::new(n, vec![crit; n], p, r, ReintegrationPolicy::Never);
        for (step, hv) in seq.iter().enumerate() {
            let prev: Vec<(u64, u64, bool)> = NodeId::all(n)
                .map(|id| (pr.penalty(id), pr.reward(id), pr.is_active(id)))
                .collect();
            pr.update(hv);
            for id in NodeId::all(n) {
                let i = id.index();
                let (pp, pw, pa) = prev[i];
                let now = (pr.penalty(id), pr.reward(id), pr.is_active(id));
                let expect = if !pa {
                    (pp, pw, false) // isolated: frozen under Never
                } else if !hv[i] {
                    let np = pp + crit; // conviction
                    (np, 0, np <= p)
                } else if pp == 0 || pw + 1 >= r {
                    (0, 0, true) // clean already, or forgiveness at exactly R
                } else {
                    (pp, pw + 1, true) // reward climbs
                };
                prop_assert_eq!(now, expect, "step {}, node {}", step, id);
            }
        }
    }
}

proptest! {
    // End-to-end replay oracle: fewer, bigger cases.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `check_alg2_cluster` (the explorer's replay oracle) finds no
    /// violation in any real execution: for arbitrary benign fault
    /// patterns and live thresholds, replaying every node's consolidated
    /// health log through a fresh Alg. 2 instance reproduces the cluster's
    /// counters and isolation decisions exactly.
    #[test]
    fn alg2_replay_oracle_accepts_real_executions(
        n in 4usize..=6,
        fault_slots in vec(0u64..120, 0..24),
        p in 2u64..6,
        r in 1u64..4,
    ) {
        let rounds = 30u64;
        let faulty: std::collections::BTreeSet<u64> = fault_slots.into_iter().collect();
        let pattern = move |ctx: &tt_sim::TxCtx| {
            if faulty.contains(&ctx.abs_slot) {
                SlotEffect::Benign
            } else {
                SlotEffect::Correct
            }
        };
        let cfg = ProtocolConfig::builder(n)
            .penalty_threshold(p)
            .reward_threshold(r)
            .build()
            .unwrap();
        let mut cluster = ClusterBuilder::new(n)
            .round_length(tt_sim::Nanos::from_nanos(2_500_000 - (2_500_000 % n as u64)))
            .trace_mode(TraceMode::Anomalies)
            .build(Box::new(pattern))
            .unwrap();
        for id in NodeId::all(n) {
            cluster
                .add_job(id, 0, Box::new(DiagJob::new(id, cfg.clone()).with_counter_trace()))
                .unwrap();
        }
        cluster.run_rounds(rounds);
        let all: Vec<NodeId> = NodeId::all(n).collect();
        let viols = check_alg2_cluster(&cluster, &all);
        prop_assert!(viols.is_empty(), "replay diverged: {viols:?}");
    }
}

proptest! {
    // Theorem 2 (Sec. 7): randomized membership runs through the full
    // oracle stack. Fewer, bigger cases — each is a whole cluster run.
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorem 2 under random minority clique partitions: when every
    /// majority sender transmits frames only a never-winning detector set
    /// `D` (`2·|D| < N − 1`) rejects, the obedient majority still agrees
    /// on the complete view sequence, the clique is consistently accused
    /// and excluded, and no oracle in the membership stack fires.
    #[test]
    fn theorem2_holds_under_random_clique_partitions(
        n in 4usize..=6,
        clique_bits in 1u8..64,
        round in 4u64..=16,
        hits in 1u64..=2,
    ) {
        let clique: Vec<usize> =
            (0..n).filter(|&i| clique_bits & (1 << i) != 0).collect();
        prop_assume!(!clique.is_empty() && 2 * clique.len() < n - 1);
        let schedule = FaultSchedule {
            n,
            rounds: 24,
            penalty_threshold: 3,
            reward_threshold: 2,
            faults: clique_partition_faults(n, &clique, round, hits),
            protocol: ProtocolUnderTest::Membership,
        };
        let exec = tt_fault::explore::execute_schedule(&schedule);
        prop_assert!(exec.verdict.ok(), "{:?}", exec.verdict.all());
        prop_assert!(exec.verdict.view_synchrony.is_empty());
        prop_assert!(exec.verdict.liveness.is_empty());
    }

    /// Theorem 2 under random asymmetric schedules: arbitrary senders,
    /// rounds and detector subsets never break view agreement among the
    /// nodes every final view retains, and membership liveness holds for
    /// every in-hypothesis locally detectable fault.
    #[test]
    fn theorem2_holds_under_random_asymmetric_schedules(
        n in 4usize..=6,
        raw in vec(((1u32..=6, 4u64..=16), (1u64..=2, 1u8..64)), 1..=3),
    ) {
        let mut faults = Vec::new();
        for ((node, round), (hits, mask)) in raw {
            let node = (node - 1) % n as u32 + 1;
            let sender = (node - 1) as usize;
            let detected_by: Vec<usize> = (0..n)
                .filter(|&i| i != sender && mask & (1 << i) != 0)
                .collect();
            prop_assume!(!detected_by.is_empty());
            faults.push(ScheduledFault {
                node,
                round,
                hits,
                stride: 1,
                class: ScheduledClass::Asymmetric { detected_by },
            });
        }
        let schedule = FaultSchedule {
            n,
            rounds: 24,
            penalty_threshold: 3,
            reward_threshold: 2,
            faults,
            protocol: ProtocolUnderTest::Membership,
        };
        let exec = tt_fault::explore::execute_schedule(&schedule);
        prop_assert!(exec.verdict.ok(), "{:?}", exec.verdict.all());
    }

    /// Membership liveness under random benign faults, non-vacuously: the
    /// oracle stack stays silent, yet every non-empty schedule perturbs
    /// the fingerprinted membership state relative to the fault-free run
    /// (so the silence is earned, not a gated no-op).
    #[test]
    fn membership_liveness_holds_under_random_benign_faults(
        n in 4usize..=6,
        raw in vec((1u32..=6, 4u64..=16), 1..=4),
    ) {
        let mut schedule = FaultSchedule {
            n,
            rounds: 24,
            penalty_threshold: 3,
            reward_threshold: 2,
            faults: Vec::new(),
            protocol: ProtocolUnderTest::Membership,
        };
        let clean = tt_fault::explore::execute_schedule(&schedule);
        for (node, round) in raw {
            schedule.faults.push(ScheduledFault {
                node: (node - 1) % n as u32 + 1,
                round,
                hits: 1,
                stride: 1,
                class: ScheduledClass::Benign,
            });
        }
        let exec = tt_fault::explore::execute_schedule(&schedule);
        prop_assert!(exec.verdict.ok(), "{:?}", exec.verdict.all());
        prop_assert_ne!(
            exec.fingerprints,
            clean.fingerprints,
            "a benign fault left no trace in membership state"
        );
    }
}
