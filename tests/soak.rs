//! Long-running randomized soak tests, excluded from the default run
//! (`cargo test -- --ignored` to execute). Each soaks the full protocol
//! stack under sustained randomized fault load and checks every oracle.

use tt_core::properties::{check_counter_consistency, check_diag_cluster, checkable_rounds};
use tt_core::{DiagJob, ProtocolConfig};
use tt_fault::{DisturbanceNode, RandomNoise};
use tt_sim::{ClusterBuilder, NodeId, TraceMode};

#[test]
#[ignore = "soak test: ~100k simulated rounds; run with --ignored"]
fn hundred_thousand_rounds_of_noise() {
    let n = 4;
    let cfg = ProtocolConfig::builder(n)
        .penalty_threshold(u64::MAX / 2)
        .reward_threshold(1_000)
        .build()
        .unwrap();
    let pipeline = DisturbanceNode::new(0xDEAD_BEEF).with(RandomNoise::everywhere(0.03));
    let mut cluster = ClusterBuilder::new(n)
        .trace_mode(TraceMode::Anomalies)
        .build_with_jobs(
            |id| Box::new(DiagJob::with_logging(id, cfg.clone(), true)),
            Box::new(pipeline),
        );
    let total = 100_000u64;
    cluster.run_rounds(total);
    let all: Vec<NodeId> = NodeId::all(n).collect();
    let report = check_diag_cluster(&cluster, &all, checkable_rounds(total, 3));
    assert!(report.ok(), "{} violations", report.violations.len());
    assert!(report.rounds_checked > 80_000);
    assert!(check_counter_consistency(&cluster, &all).is_empty());
}

#[test]
#[ignore = "soak test: long randomized campaign; run with --ignored"]
fn thousand_rep_burst_campaign() {
    let classes = [
        tt_fault::ExperimentClass::Burst {
            len_slots: 2,
            start_slot: 1,
        },
        tt_fault::ExperimentClass::Burst {
            len_slots: 8,
            start_slot: 3,
        },
    ];
    let result = tt_fault::run_campaign(&classes, 4, 1_000, 0xC0FFEE);
    assert_eq!(result.total(), 2_000);
    assert!(result.all_passed());
}
