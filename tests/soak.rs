//! Long-running randomized soak tests, excluded from the default run
//! (`cargo test -- --ignored` to execute). Each soaks the full protocol
//! stack under sustained randomized fault load and checks every oracle.
//!
//! Each `#[ignore]`d soak has a fast smoke variant sharing the same body
//! at a fraction of the load, so the soak code paths compile *and run*
//! on every PR — a broken soak no longer waits for the weekly job to
//! surface.

use tt_core::properties::{check_counter_consistency, check_diag_cluster, checkable_rounds};
use tt_core::{DiagJob, ProtocolConfig};
use tt_fault::{DisturbanceNode, RandomNoise};
use tt_sim::{ClusterBuilder, NodeId, TraceMode};

/// Shared body of the noise soak: `total` rounds of 3% random benign
/// noise, every oracle checked, at least `min_checked` rounds verified.
fn rounds_of_noise(total: u64, min_checked: u64) {
    let n = 4;
    let cfg = ProtocolConfig::builder(n)
        .penalty_threshold(u64::MAX / 2)
        .reward_threshold(1_000)
        .build()
        .unwrap();
    let pipeline = DisturbanceNode::new(0xDEAD_BEEF).with(RandomNoise::everywhere(0.03));
    let mut cluster = ClusterBuilder::new(n)
        .trace_mode(TraceMode::Anomalies)
        .build_with_jobs(
            |id| Box::new(DiagJob::with_logging(id, cfg.clone(), true)),
            Box::new(pipeline),
        );
    cluster.run_rounds(total);
    let all: Vec<NodeId> = NodeId::all(n).collect();
    let report = check_diag_cluster(&cluster, &all, checkable_rounds(total, 3));
    assert!(report.ok(), "{} violations", report.violations.len());
    assert!(report.rounds_checked > min_checked);
    assert!(check_counter_consistency(&cluster, &all).is_empty());
}

/// Shared body of the burst campaign soak: two burst classes, `reps`
/// repetitions each.
fn burst_campaign(reps: u64) {
    let classes = [
        tt_fault::ExperimentClass::Burst {
            len_slots: 2,
            start_slot: 1,
        },
        tt_fault::ExperimentClass::Burst {
            len_slots: 8,
            start_slot: 3,
        },
    ];
    let result = tt_fault::run_campaign(&classes, 4, reps, 0xC0FFEE);
    assert_eq!(result.total(), 2 * reps as usize);
    assert!(result.all_passed());
}

#[test]
#[ignore = "soak test: ~100k simulated rounds; run with --ignored"]
fn hundred_thousand_rounds_of_noise() {
    rounds_of_noise(100_000, 80_000);
}

/// Fast smoke variant of [`hundred_thousand_rounds_of_noise`]: same body,
/// 1/200th of the load, runs on every PR.
#[test]
fn five_hundred_rounds_of_noise_smoke() {
    rounds_of_noise(500, 400);
}

#[test]
#[ignore = "soak test: long randomized campaign; run with --ignored"]
fn thousand_rep_burst_campaign() {
    burst_campaign(1_000);
}

/// Fast smoke variant of [`thousand_rep_burst_campaign`]: same body,
/// 1/100th of the repetitions, runs on every PR.
#[test]
fn ten_rep_burst_campaign_smoke() {
    burst_campaign(10);
}
