//! Property-based equivalence of the lockstep batch engine and the scalar
//! cluster: every lane of a [`BatchCluster`] must reproduce a scalar
//! [`Cluster`] run of the same fault schedule byte for byte — health
//! vectors, counter samples, isolation events, penalty/reward counters and
//! state fingerprints — at every required batch size B ∈ {1, 7, 64, 256}.
//!
//! Two layers of the stack are exercised:
//!
//! * the fault-crate conversion path ([`seeded_schedule`] →
//!   [`execute_schedules_batched`] vs [`execute_schedule`]), which is the
//!   one the explorer and the batched campaign actually run; and
//! * the raw engine ([`BatchCluster`] + [`BatchDiagJob::with_recording`])
//!   against a hand-driven scalar fault pipeline, comparing full protocol
//!   state rather than just its fingerprint stream.

use proptest::prelude::*;

use bytes::Bytes;
use tt_core::{BatchDiagJob, BatchLaneParams, DiagJob, ProtocolConfig};
use tt_fault::{execute_schedule, execute_schedules_batched, seeded_schedule, ExploreConfig};
use tt_sim::{
    BatchCluster, BatchFaultPlan, Cluster, ClusterBuilder, LaneEffect, LaneFault, NodeId,
    SlotEffect, TxCtx,
};

/// The batch sizes the lockstep engine must be exact at: a single lane, a
/// ragged non-power-of-two, a full SWAR word multiple and the campaign's
/// production width.
const BATCH_SIZES: [usize; 4] = [1, 7, 64, 256];

/// A lane's fault plan plus the thresholds it runs under.
#[derive(Debug, Clone)]
struct LaneCase {
    faults: Vec<LaneFault>,
    penalty_threshold: u64,
    reward_threshold: u64,
}

fn effect_strategy(n: usize) -> impl Strategy<Value = LaneEffect> {
    let full = (1u64 << n) - 1;
    prop_oneof![
        Just(LaneEffect::Benign),
        (0..=full).prop_map(|mask| LaneEffect::Malicious { mask }),
        (0..=full, any::<bool>()).prop_map(|(detected_by, collision_ok)| {
            LaneEffect::Asymmetric {
                detected_by,
                collision_ok,
            }
        }),
    ]
}

fn fault_strategy(n: usize, rounds: u64) -> impl Strategy<Value = LaneFault> {
    (
        (0..n, 0..rounds),
        (prop_oneof![1u64..6, Just(u64::MAX)], 1u64..4),
        effect_strategy(n),
    )
        .prop_map(|((slot, first_round), (hits, stride), effect)| LaneFault {
            slot,
            first_round,
            hits,
            stride,
            effect,
        })
}

fn lane_case_strategy(n: usize, rounds: u64) -> impl Strategy<Value = LaneCase> {
    (
        proptest::collection::vec(fault_strategy(n, rounds), 0..4),
        1u64..5,
        1u64..5,
    )
        .prop_map(|(faults, penalty_threshold, reward_threshold)| LaneCase {
            faults,
            penalty_threshold,
            reward_threshold,
        })
}

/// Replays a lane's fault plan through the scalar fault pipeline with the
/// engine's first-match-wins resolution, mapping each [`LaneEffect`] to
/// the [`SlotEffect`] it was pre-decoded from.
fn scalar_pipeline(faults: Vec<LaneFault>) -> impl FnMut(&TxCtx) -> SlotEffect + Send + 'static {
    move |ctx: &TxCtx| {
        let (round, slot) = (ctx.round.as_u64(), ctx.sender.index());
        match faults.iter().find(|f| f.covers(round, slot)) {
            None => SlotEffect::Correct,
            Some(f) => match f.effect {
                LaneEffect::Benign => SlotEffect::Benign,
                LaneEffect::Malicious { mask } => SlotEffect::SymmetricMalicious {
                    payload: Bytes::from(vec![mask as u8]),
                },
                LaneEffect::Asymmetric {
                    detected_by,
                    collision_ok,
                } => SlotEffect::Asymmetric {
                    detected_by: (0..64).filter(|i| detected_by & (1 << i) != 0).collect(),
                    collision_ok,
                },
            },
        }
    }
}

/// Asserts lane `lane` of the batched run matches the scalar cluster's
/// protocol state exactly.
fn assert_lane_matches(job: &BatchDiagJob, cluster: &Cluster, lane: usize) {
    let n = job.n_nodes();
    for i in 0..n {
        let scalar: &DiagJob = cluster.job_as(NodeId::from_slot(i)).expect("diag job");
        assert_eq!(
            job.health_log(lane, i),
            scalar.health_log(),
            "health log of observer {i} in lane {lane}"
        );
        assert_eq!(
            job.counter_trace(lane, i),
            scalar.counter_trace(),
            "counter trace of observer {i} in lane {lane}"
        );
        assert_eq!(
            job.isolation_events(lane, i),
            scalar.isolations(),
            "isolations of observer {i} in lane {lane}"
        );
        for j in 0..n {
            let node = NodeId::from_slot(j);
            assert_eq!(job.penalty(lane, i, j), scalar.penalty(node));
            assert_eq!(job.reward(lane, i, j), scalar.reward(node));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random lane plans at every required batch size: the full recorded
    /// protocol state of each lane equals an independent scalar run of the
    /// same plan under the same thresholds. Lanes are deliberately
    /// heterogeneous (plan and thresholds both vary per lane) so divergent
    /// control flow inside one SIMD batch is exercised, not just replicated
    /// uniform work.
    #[test]
    fn every_lane_matches_scalar_state(
        n in 4usize..7,
        seeds in proptest::collection::vec(lane_case_strategy(6, 24), 8),
    ) {
        let rounds = 24u64;
        let cases: Vec<LaneCase> = seeds
            .into_iter()
            .map(|mut c| {
                // Clamp out-of-range slots/masks drawn for the widest n.
                c.faults.retain(|f| f.slot < n);
                for f in &mut c.faults {
                    if let LaneEffect::Malicious { mask } = &mut f.effect {
                        *mask &= (1 << n) - 1;
                    }
                    if let LaneEffect::Asymmetric { detected_by, .. } = &mut f.effect {
                        *detected_by &= (1 << n) - 1;
                    }
                }
                c
            })
            .collect();
        for &b in &BATCH_SIZES {
            let lanes: Vec<&LaneCase> = (0..b).map(|l| &cases[l % cases.len()]).collect();
            let plans = lanes
                .iter()
                .map(|c| BatchFaultPlan::new(c.faults.clone()))
                .collect();
            let params: Vec<BatchLaneParams> = lanes
                .iter()
                .map(|c| BatchLaneParams {
                    penalty_threshold: c.penalty_threshold,
                    reward_threshold: c.reward_threshold,
                })
                .collect();
            let mut batch = BatchCluster::new(n, plans).expect("valid batch");
            let mut job = BatchDiagJob::new(n, &params).with_recording();
            batch.run_rounds(rounds, &mut job);

            // Distinct lane cases is all that needs scalar re-execution:
            // the engine is deterministic per (plan, params), so lane l
            // compares against the scalar run of cases[l % cases.len()].
            let scalars: Vec<Cluster> = cases
                .iter()
                .map(|c| {
                    let cfg = ProtocolConfig::builder(n)
                        .penalty_threshold(c.penalty_threshold)
                        .reward_threshold(c.reward_threshold)
                        .build()
                        .expect("valid config");
                    // Round length must divide into n equal slots (its
                    // absolute value is irrelevant to the diagnosis state).
                    let round = tt_sim::Nanos::from_nanos(2_520_000);
                    let mut cluster = ClusterBuilder::new(n).round_length(round).build_with_jobs(
                        move |id| Box::new(DiagJob::new(id, cfg.clone()).with_counter_trace()),
                        Box::new(scalar_pipeline(c.faults.clone())),
                    );
                    cluster.run_rounds(rounds);
                    cluster
                })
                .collect();
            for lane in 0..b {
                assert_lane_matches(&job, &scalars[lane % cases.len()], lane);
            }
        }
    }

    /// The production conversion path: explorer-grade random schedules
    /// (mixed fault classes, strides, budgets) run through
    /// [`execute_schedules_batched`] yield the exact scalar
    /// [`execute_schedule`] fingerprint stream, at every batch size.
    #[test]
    fn batched_fingerprints_match_scalar_at_all_batch_sizes(seed in any::<u64>()) {
        let cfg = ExploreConfig::default();
        for &b in &BATCH_SIZES {
            let schedules: Vec<_> = (0..b as u64)
                .map(|i| seeded_schedule(&cfg, seed.wrapping_add(i)))
                .collect();
            let batched = execute_schedules_batched(&schedules).expect("valid schedules");
            for (s, fps) in schedules.iter().zip(&batched) {
                prop_assert_eq!(
                    &execute_schedule(s).fingerprints,
                    fps,
                    "B={} schedule {:?}",
                    b,
                    s
                );
            }
        }
    }
}

/// Lane results are independent of batch width: running 256 random plans
/// as one batch and as 256 single-lane batches yields identical
/// fingerprint streams (so campaign results can't depend on how the work
/// was chunked).
#[test]
fn batch_width_does_not_change_lane_results() {
    let cfg = ExploreConfig {
        n: 5,
        rounds: 20,
        ..ExploreConfig::default()
    };
    let schedules: Vec<_> = (0..256)
        .map(|i| seeded_schedule(&cfg, 0xB_A7C4 + i))
        .collect();
    let wide = execute_schedules_batched(&schedules).expect("valid schedules");
    for (s, fps) in schedules.iter().zip(&wide) {
        let narrow = execute_schedules_batched(std::slice::from_ref(s)).expect("valid schedule");
        assert_eq!(&narrow[0], fps, "{s:?}");
    }
}
