//! Serde round-trips for the public data structures: experiment records,
//! protocol outputs and configurations survive serialization — required for
//! persisting campaign results and reloading tuned configurations.

use tt_core::{HealthRecord, MembershipView, ProtocolConfig};
use tt_fault::{run_experiment, ExperimentClass, TransientScenario};
use tt_sim::{Nanos, NodeId, RoundIndex, SlotFaultClass, SlotRecord};

fn roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serializes");
    serde_json::from_str(&json).expect("deserializes")
}

#[test]
fn protocol_config_roundtrips() {
    let cfg = ProtocolConfig::builder(4)
        .penalty_threshold(197)
        .reward_threshold(1_000_000)
        .criticalities(vec![40, 6, 1, 1])
        .all_send_curr_round(true)
        .reintegration(tt_core::ReintegrationPolicy::AfterRewards(400))
        .build()
        .unwrap();
    assert_eq!(roundtrip(&cfg), cfg);
}

#[test]
fn protocol_outputs_roundtrip() {
    let rec = HealthRecord {
        diagnosed: RoundIndex::new(10),
        decided_at: RoundIndex::new(13),
        health: vec![true, false, true, true],
    };
    assert_eq!(roundtrip(&rec), rec);
    let view = MembershipView {
        view_id: 2,
        members: vec![NodeId::new(1), NodeId::new(3)],
        installed_at: RoundIndex::new(14),
        diagnosed: RoundIndex::new(11),
    };
    assert_eq!(roundtrip(&view), view);
}

#[test]
fn sim_records_roundtrip() {
    let rec = SlotRecord {
        round: RoundIndex::new(7),
        sender: NodeId::new(3),
        class: SlotFaultClass::Asymmetric,
        effect: Some(tt_sim::EffectRecord::Asymmetric {
            detected_by: vec![0, 2],
            collision_ok: true,
        }),
    };
    assert_eq!(roundtrip(&rec), rec);
    assert_eq!(
        roundtrip(&Nanos::from_millis_f64(2.5)),
        Nanos::from_micros(2_500)
    );
}

#[test]
fn campaign_outcomes_roundtrip() {
    let outcome = run_experiment(
        ExperimentClass::Burst {
            len_slots: 2,
            start_slot: 1,
        },
        4,
        42,
    );
    assert_eq!(roundtrip(&outcome), outcome);
}

#[test]
fn scenarios_and_tuning_roundtrip() {
    let scenario = TransientScenario::lightning_bolt();
    assert_eq!(roundtrip(&scenario), scenario);
    let tuned = tt_analysis::tune(&tt_analysis::aerospace_setup());
    assert_eq!(roundtrip(&tuned), tuned);
}

#[test]
fn persisted_config_reproduces_behaviour() {
    // A tuned config written to "disk" and reloaded drives an identical
    // simulation — the operational reason the types implement serde.
    use tt_core::DiagJob;
    use tt_sim::{ClusterBuilder, SlotEffect, TxCtx};
    let crash = |ctx: &TxCtx| {
        if ctx.sender == NodeId::new(3) && ctx.round >= RoundIndex::new(6) {
            SlotEffect::Benign
        } else {
            SlotEffect::Correct
        }
    };
    let run = |cfg: &ProtocolConfig| {
        let mut cluster = ClusterBuilder::new(4).build_with_jobs(
            |id| Box::new(DiagJob::new(id, cfg.clone())),
            Box::new(crash),
        );
        cluster.run_rounds(30);
        let d: &DiagJob = cluster.job_as(NodeId::new(1)).unwrap();
        (d.isolations().to_vec(), d.health_log().to_vec())
    };
    let cfg = ProtocolConfig::builder(4)
        .penalty_threshold(3)
        .reward_threshold(10)
        .build()
        .unwrap();
    assert_eq!(run(&cfg), run(&roundtrip(&cfg)));
}
