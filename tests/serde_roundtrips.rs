//! Serde round-trips for the public data structures: experiment records,
//! protocol outputs and configurations survive serialization — required for
//! persisting campaign results and reloading tuned configurations.

use tt_core::{HealthRecord, MembershipView, ProtocolConfig};
use tt_fault::{run_experiment, ExperimentClass, TransientScenario};
use tt_sim::{
    CauseId, MetricsEvent, Nanos, NodeId, RoundIndex, SlotFaultClass, SlotRecord, SpanEvent,
    TracePhase, UpdateKind,
};

fn roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serializes");
    serde_json::from_str(&json).expect("deserializes")
}

#[test]
fn protocol_config_roundtrips() {
    let cfg = ProtocolConfig::builder(4)
        .penalty_threshold(197)
        .reward_threshold(1_000_000)
        .criticalities(vec![40, 6, 1, 1])
        .all_send_curr_round(true)
        .reintegration(tt_core::ReintegrationPolicy::AfterRewards(400))
        .build()
        .unwrap();
    assert_eq!(roundtrip(&cfg), cfg);
}

#[test]
fn protocol_outputs_roundtrip() {
    let rec = HealthRecord {
        diagnosed: RoundIndex::new(10),
        decided_at: RoundIndex::new(13),
        health: vec![true, false, true, true],
    };
    assert_eq!(roundtrip(&rec), rec);
    let view = MembershipView {
        view_id: 2,
        members: vec![NodeId::new(1), NodeId::new(3)],
        installed_at: RoundIndex::new(14),
        diagnosed: RoundIndex::new(11),
    };
    assert_eq!(roundtrip(&view), view);
}

#[test]
fn sim_records_roundtrip() {
    let rec = SlotRecord {
        round: RoundIndex::new(7),
        sender: NodeId::new(3),
        class: SlotFaultClass::Asymmetric,
        effect: Some(tt_sim::EffectRecord::Asymmetric {
            detected_by: vec![0, 2],
            collision_ok: true,
        }),
    };
    assert_eq!(roundtrip(&rec), rec);
    assert_eq!(
        roundtrip(&Nanos::from_millis_f64(2.5)),
        Nanos::from_micros(2_500)
    );
}

#[test]
fn campaign_outcomes_roundtrip() {
    let outcome = run_experiment(
        ExperimentClass::Burst {
            len_slots: 2,
            start_slot: 1,
        },
        4,
        42,
    );
    assert_eq!(roundtrip(&outcome), outcome);
}

#[test]
fn scenarios_and_tuning_roundtrip() {
    let scenario = TransientScenario::lightning_bolt();
    assert_eq!(roundtrip(&scenario), scenario);
    let tuned = tt_analysis::tune(&tt_analysis::aerospace_setup());
    assert_eq!(roundtrip(&tuned), tuned);
}

/// Every `MetricsEvent` variant survives a serde round trip. The `match`
/// below lists the variants without a wildcard, so adding a variant to the
/// enum without extending this test is a compile error.
#[test]
fn every_metrics_event_variant_roundtrips() {
    let n = NodeId::new(2);
    let s = NodeId::new(3);
    let r = RoundIndex::new(9);
    let d = RoundIndex::new(7);
    let events = vec![
        MetricsEvent::RoundCompleted {
            round: r,
            wall_ns: 1_234,
        },
        MetricsEvent::SlotFault {
            round: r,
            sender: s,
            class: SlotFaultClass::Benign,
        },
        MetricsEvent::Dissemination {
            node: n,
            round: r,
            tx_round: RoundIndex::new(10),
            accusations: 1,
        },
        MetricsEvent::Aggregation {
            node: n,
            round: r,
            epsilon_rows: 2,
        },
        MetricsEvent::VoteTally {
            node: n,
            decided_at: r,
            diagnosed: d,
            subject: s,
            ok: 2,
            faulty: 1,
            epsilon: 1,
            decided: None,
        },
        MetricsEvent::PenaltyCharged {
            node: n,
            decided_at: r,
            diagnosed: d,
            subject: s,
            penalty: 5,
        },
        MetricsEvent::RewardEarned {
            node: n,
            decided_at: r,
            diagnosed: d,
            subject: s,
            reward: 3,
        },
        MetricsEvent::Forgiveness {
            node: n,
            decided_at: r,
            diagnosed: d,
            subject: s,
        },
        MetricsEvent::Isolation {
            node: n,
            decided_at: r,
            diagnosed: d,
            subject: s,
            penalty: 197,
        },
        MetricsEvent::Reintegration {
            node: n,
            decided_at: r,
            diagnosed: d,
            subject: s,
        },
        MetricsEvent::ViewInstalled {
            node: n,
            view_id: 4,
            installed_at: r,
            diagnosed: d,
            members: vec![n, s],
        },
    ];
    let mut kinds = std::collections::BTreeSet::new();
    for e in &events {
        assert_eq!(&roundtrip(e), e, "{}", e.kind());
        kinds.insert(e.kind());
        // Exhaustiveness guard: extend `events` when adding a variant.
        match e {
            MetricsEvent::RoundCompleted { .. }
            | MetricsEvent::SlotFault { .. }
            | MetricsEvent::Dissemination { .. }
            | MetricsEvent::Aggregation { .. }
            | MetricsEvent::VoteTally { .. }
            | MetricsEvent::PenaltyCharged { .. }
            | MetricsEvent::RewardEarned { .. }
            | MetricsEvent::Forgiveness { .. }
            | MetricsEvent::Isolation { .. }
            | MetricsEvent::Reintegration { .. }
            | MetricsEvent::ViewInstalled { .. } => {}
        }
    }
    assert_eq!(kinds.len(), events.len(), "one sample per kind");
}

/// Every provenance `SpanEvent` variant (and the id/enum types it carries)
/// survives a serde round trip — `ttdiag trace --format jsonl` output must
/// be reloadable.
#[test]
fn every_span_event_variant_roundtrips() {
    let cause = CauseId::new(NodeId::new(3), RoundIndex::new(7));
    let n = NodeId::new(2);
    let r = RoundIndex::new(9);
    let spans = vec![
        SpanEvent::SlotFault {
            cause,
            class: SlotFaultClass::Benign,
        },
        SpanEvent::Detection {
            cause,
            node: n,
            round: r,
        },
        SpanEvent::Dissemination {
            cause,
            node: n,
            round: r,
            tx_round: RoundIndex::new(10),
        },
        SpanEvent::Aggregation {
            cause,
            node: n,
            round: r,
            epsilon: 1,
        },
        SpanEvent::Analysis {
            cause,
            node: n,
            round: r,
            ok: 1,
            faulty: 2,
            epsilon: 1,
            decided: Some(false),
        },
        SpanEvent::Update {
            cause,
            node: n,
            round: r,
            kind: UpdateKind::Penalty,
            counter: 4,
        },
    ];
    let mut phases = std::collections::BTreeSet::new();
    for e in &spans {
        assert_eq!(&roundtrip(e), e, "{}", e.phase().label());
        phases.insert(e.phase());
        // Exhaustiveness guard: extend `spans` when adding a variant.
        match e {
            SpanEvent::SlotFault { .. }
            | SpanEvent::Detection { .. }
            | SpanEvent::Dissemination { .. }
            | SpanEvent::Aggregation { .. }
            | SpanEvent::Analysis { .. }
            | SpanEvent::Update { .. } => {}
        }
    }
    assert_eq!(
        phases.into_iter().collect::<Vec<_>>(),
        TracePhase::ALL.to_vec(),
        "one sample per phase, covering the whole pipeline"
    );

    assert_eq!(roundtrip(&cause), cause);
    for phase in TracePhase::ALL {
        assert_eq!(roundtrip(&phase), phase);
    }
    for kind in [
        UpdateKind::Penalty,
        UpdateKind::Reward,
        UpdateKind::Forgiveness,
        UpdateKind::Isolation,
        UpdateKind::Reintegration,
    ] {
        assert_eq!(roundtrip(&kind), kind);
    }
}

#[test]
fn persisted_config_reproduces_behaviour() {
    // A tuned config written to "disk" and reloaded drives an identical
    // simulation — the operational reason the types implement serde.
    use tt_core::DiagJob;
    use tt_sim::{ClusterBuilder, SlotEffect, TxCtx};
    let crash = |ctx: &TxCtx| {
        if ctx.sender == NodeId::new(3) && ctx.round >= RoundIndex::new(6) {
            SlotEffect::Benign
        } else {
            SlotEffect::Correct
        }
    };
    let run = |cfg: &ProtocolConfig| {
        let mut cluster = ClusterBuilder::new(4).build_with_jobs(
            |id| Box::new(DiagJob::new(id, cfg.clone())),
            Box::new(crash),
        );
        cluster.run_rounds(30);
        let d: &DiagJob = cluster.job_as(NodeId::new(1)).unwrap();
        (d.isolations().to_vec(), d.health_log().to_vec())
    };
    let cfg = ProtocolConfig::builder(4)
        .penalty_threshold(3)
        .reward_threshold(10)
        .build()
        .unwrap();
    assert_eq!(run(&cfg), run(&roundtrip(&cfg)));
}
