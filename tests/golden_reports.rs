//! Golden snapshot tests: the deterministic experiment reports must match
//! the committed snapshots bit for bit. Regenerate intentionally with
//! `cargo run -p tt-bench --bin gen_golden` after a deliberate change.

fn check(name: &str, actual: String) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden")
        .join(name);
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {path:?}: {e}"));
    assert_eq!(
        actual, expected,
        "report {name} drifted from its golden snapshot; if intentional, \
         regenerate with `cargo run -p tt-bench --bin gen_golden`"
    );
}

#[test]
fn fig1_matches_golden() {
    check("fig1.txt", tt_bench::fig1_report());
}

#[test]
fn fig2_matches_golden() {
    check("fig2.txt", tt_bench::fig2_report());
}

#[test]
fn table1_matches_golden() {
    check("table1.txt", tt_bench::table1_report());
}

#[test]
fn fig3_matches_golden() {
    check("fig3.txt", tt_bench::fig3_report());
}

#[test]
fn table2_matches_golden() {
    check("table2.txt", tt_bench::table2_report());
}

#[test]
fn table3_matches_golden() {
    check("table3.txt", tt_bench::table3_report());
}

#[test]
fn bandwidth_matches_golden() {
    check("bandwidth.txt", tt_bench::bandwidth_report());
}

#[test]
fn lowlat_matches_golden() {
    check("lowlat.txt", tt_bench::lowlat_report());
}
