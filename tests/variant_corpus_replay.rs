//! Regression corpus replay for the protocol variants: the committed
//! membership (`tests/corpus/membership/`) and low-latency
//! (`tests/corpus/lowlat/`) corpora — discovered by the coverage-guided
//! explorer running the Sec. 7 / Sec. 10 oracle stacks — are re-executed
//! against the full variant oracles on every PR, exactly as
//! `tests/corpus_replay.rs` does for the base-protocol corpus. The
//! planted-bug self-test at the bottom proves the explorer would catch a
//! deliberately weakened view-synchrony oracle and shrink its reproducer
//! to a minimal schedule.

use std::path::{Path, PathBuf};

use tt_fault::explore::{
    execute_schedule, explore_with, load_corpus, ExploreConfig, FaultSchedule, ProtocolUnderTest,
};
use tt_sim::Cluster;

fn corpus_dir(variant: &str) -> PathBuf {
    // Tests are registered from crates/bench; the corpora live at the
    // workspace root, one subdirectory per protocol variant (invisible to
    // the flat diag corpus load — `load_corpus` is non-recursive).
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/corpus")
        .join(variant)
}

fn variant_corpus(variant: &str, protocol: ProtocolUnderTest) -> Vec<(PathBuf, FaultSchedule)> {
    let corpus = load_corpus(&corpus_dir(variant)).expect("corpus directory readable");
    assert!(
        !corpus.is_empty(),
        "the committed {variant} corpus is non-empty"
    );
    for (path, schedule) in &corpus {
        assert_eq!(
            schedule.protocol,
            protocol,
            "{}: misfiled schedule — the {variant} corpus holds only \
             {protocol:?} schedules",
            path.display(),
        );
    }
    corpus
}

/// Every stored membership schedule replays cleanly against the whole
/// Sec. 7 oracle stack (Theorem 1 with accusation exemptions, counter
/// agreement, Theorem 2 view synchrony, wrongful exclusion, membership
/// and clique liveness).
#[test]
fn membership_corpus_replays_clean_against_all_oracles() {
    for (path, schedule) in variant_corpus("membership", ProtocolUnderTest::Membership) {
        let exec = execute_schedule(&schedule);
        assert!(
            exec.verdict.ok(),
            "{}: {:?}",
            path.display(),
            exec.verdict.all(),
        );
    }
}

/// Every stored lowlat schedule replays cleanly against the Sec. 10
/// oracle stack (per-slot properties, 1-round latency bound, view
/// synchrony, membership liveness).
#[test]
fn lowlat_corpus_replays_clean_against_all_oracles() {
    for (path, schedule) in variant_corpus("lowlat", ProtocolUnderTest::Lowlat) {
        let exec = execute_schedule(&schedule);
        assert!(
            exec.verdict.ok(),
            "{}: {:?}",
            path.display(),
            exec.verdict.all(),
        );
    }
}

/// Stored filenames embed the schedule's content hash; a hand-edited or
/// corrupted corpus entry is caught before it silently weakens the suite.
#[test]
fn variant_corpus_filenames_match_schedule_ids() {
    for (variant, protocol) in [
        ("membership", ProtocolUnderTest::Membership),
        ("lowlat", ProtocolUnderTest::Lowlat),
    ] {
        for (path, schedule) in variant_corpus(variant, protocol) {
            let stem = path.file_stem().unwrap().to_string_lossy();
            let hex = stem.rsplit('-').next().unwrap();
            assert_eq!(
                u64::from_str_radix(hex, 16).ok(),
                Some(schedule.id()),
                "{}: filename does not match content id",
                path.display(),
            );
        }
    }
}

/// Replaying a variant corpus as an explorer seed primes coverage without
/// finding violations: the committed schedules stay within the variant's
/// verified envelope even when mutated further (mutations preserve each
/// seed's protocol).
fn corpus_seeds_explore_cleanly(variant: &str, protocol: ProtocolUnderTest) {
    let seeds: Vec<FaultSchedule> = variant_corpus(variant, protocol)
        .into_iter()
        .map(|(_, s)| s)
        .collect();
    let cfg = ExploreConfig {
        budget: seeds.len() as u64 + 20,
        protocol,
        ..ExploreConfig::default()
    };
    let report = explore_with(&cfg, &seeds, &tt_fault::explore::no_extra_oracle);
    assert!(
        report.counterexamples.is_empty(),
        "{:?}",
        report
            .counterexamples
            .iter()
            .map(|c| &c.violations)
            .collect::<Vec<_>>(),
    );
    assert!(report.unique_states > 0);
}

#[test]
fn membership_corpus_seeds_explore_cleanly() {
    corpus_seeds_explore_cleanly("membership", ProtocolUnderTest::Membership);
}

#[test]
fn lowlat_corpus_seeds_explore_cleanly() {
    corpus_seeds_explore_cleanly("lowlat", ProtocolUnderTest::Lowlat);
}

/// Harness self-test, mirroring `corpus_replay.rs`: plant a deliberately
/// weakened view-synchrony oracle — "the membership never installs a new
/// view", false under any effective fault because Sec. 7 turns every
/// conviction into a view change — and prove the membership explorer
/// detects it AND the shrinker minimizes the reproducer to a single
/// one-shot fault. The final `panic!` carries a sentinel message; if
/// detection or minimization ever silently breaks, the asserts above it
/// fail with different messages and `should_panic(expected)` rejects them.
#[test]
#[should_panic(expected = "weak view-synchrony oracle detected and minimized as designed")]
fn planted_weak_view_synchrony_oracle_self_test() {
    let weak = |cluster: &Cluster| -> Vec<String> {
        use tt_core::MembershipJob;
        use tt_sim::NodeId;
        let job: &MembershipJob = cluster.job_as(NodeId::new(1)).expect("membership job");
        if job.views().len() > 1 {
            vec!["weak: a new view was installed".into()]
        } else {
            Vec::new()
        }
    };
    let cfg = ExploreConfig {
        budget: 30,
        protocol: ProtocolUnderTest::Membership,
        ..ExploreConfig::default()
    };
    let report = explore_with(&cfg, &[], &weak);
    let cx = report
        .counterexamples
        .first()
        .expect("explorer trips the weak view-synchrony oracle");
    assert_eq!(cx.shrunk.faults.len(), 1, "minimized to one fault");
    assert_eq!(cx.shrunk.faults[0].hits, 1, "minimized to one hit");
    assert_eq!(
        cx.shrunk.protocol,
        ProtocolUnderTest::Membership,
        "shrinking preserves the protocol under test"
    );
    panic!("weak view-synchrony oracle detected and minimized as designed");
}
