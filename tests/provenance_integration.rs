//! End-to-end provenance tracing: a trace-instrumented diagnostic cluster
//! must reconstruct the full causal chain behind every conviction — slot
//! fault → local syndromes → dissemination → aggregated column → H-maj
//! tally → p/r counter transition — and every diagnosed fault must stay
//! within the protocol's ≤ 4-round detection-latency bound (read
//! alignment 1 + send alignment ≤ 1 + dissemination 1 + analysis 1).

use std::sync::Arc;

use tt_analysis::{
    group_chains, spans_to_perfetto, LatencySummary, ProvenanceChain, LATENCY_BOUND_ROUNDS,
};
use tt_core::{DiagJob, ProtocolConfig};
use tt_fault::{DisturbanceNode, IntermittentFault};
use tt_sim::{
    ClusterBuilder, Nanos, NodeId, RecordingTraceSink, RoundIndex, SpanEvent, TraceMode, TracePhase,
};

/// Drives the canonical intermittent-fault scenario (node 2 blinking every
/// second round from round 4) with provenance tracing on and returns the
/// grouped chains.
fn traced_canonical_chains() -> (Vec<SpanEvent>, Vec<ProvenanceChain>) {
    let sink = Arc::new(RecordingTraceSink::new());
    let config = ProtocolConfig::builder(4)
        .penalty_threshold(3)
        .reward_threshold(2)
        .build()
        .expect("valid protocol config");
    let mut pipeline = DisturbanceNode::new(0);
    pipeline.push(IntermittentFault::new(
        NodeId::new(2),
        RoundIndex::new(4),
        2,
    ));
    let mut cluster = ClusterBuilder::new(4)
        .trace_mode(TraceMode::Off)
        .trace_sink(sink.clone())
        .build_with_jobs(
            |id| Box::new(DiagJob::new(id, config.clone())),
            Box::new(pipeline),
        );
    cluster.run_rounds(16);
    let spans = sink.spans();
    let chains = group_chains(&spans);
    (spans, chains)
}

#[test]
fn every_conviction_carries_a_complete_provenance_chain() {
    let (_, chains) = traced_canonical_chains();
    assert!(!chains.is_empty(), "the intermittent fault produced chains");

    let convicted: Vec<_> = chains.iter().filter(|c| c.convicted()).collect();
    assert!(!convicted.is_empty(), "node 2 gets convicted");
    // Convictions diagnosed after the subject is already isolated no longer
    // move the p/r counters, so the Update phase legitimately ends with the
    // isolating transition; every conviction before that carries all six.
    assert!(
        convicted.iter().any(|c| c.has_phase(TracePhase::Update)),
        "at least one conviction reaches the counter-update phase"
    );
    for chain in &convicted {
        assert_eq!(chain.cause().subject, NodeId::new(2), "only node 2");
        let phases: &[TracePhase] = if chain.has_phase(TracePhase::Update) {
            &TracePhase::ALL
        } else {
            &TracePhase::ALL[..TracePhase::ALL.len() - 1]
        };
        for &phase in phases {
            assert!(
                chain.has_phase(phase),
                "conviction of {:?} is missing phase {:?}",
                chain.cause(),
                phase
            );
        }
        // The chain's rounds are causally ordered: fault, then detection,
        // then transmission, then verdict.
        let fault = chain.fault_round();
        let detected = chain.detection_round().expect("detected");
        let tx = chain.tx_round().expect("disseminated");
        let decided = chain.decided_round().expect("decided");
        assert!(fault < detected, "detection follows the fault");
        assert!(detected <= tx, "transmission follows detection");
        assert!(tx < decided, "the verdict follows transmission");
    }
}

#[test]
fn every_diagnosed_fault_is_within_the_latency_bound() {
    let (_, chains) = traced_canonical_chains();
    let summary = LatencySummary::check_bound(&chains, LATENCY_BOUND_ROUNDS)
        .expect("no chain exceeds the 4-round bound");
    assert!(summary.diagnosed() > 0, "faults were diagnosed");
    let max = summary.max_latency().expect("at least one latency");
    assert!(max <= LATENCY_BOUND_ROUNDS, "{max} > bound");
    // With all_send_curr_round = false the lag is exactly 3 rounds.
    assert_eq!(max, 3, "default alignment diagnoses in 3 rounds");
}

#[test]
fn perfetto_export_reconstructs_conviction_provenance() {
    let (spans, chains) = traced_canonical_chains();
    let body = spans_to_perfetto(&spans, Nanos::from_micros(2_500));
    let v: serde::Value = serde_json::from_str(&body).expect("valid Chrome trace JSON");
    let map = v.as_map().expect("top level is an object");
    let events = serde::Value::get_field(map, "traceEvents")
        .and_then(|e| e.as_seq())
        .expect("traceEvents array");

    // One metadata track per node plus one X slice per span.
    let field = |e: &serde::Value, k: &str| {
        e.as_map()
            .and_then(|m| serde::Value::get_field(m, k).cloned())
    };
    let slices: Vec<_> = events
        .iter()
        .filter(|e| field(e, "ph").and_then(|p| p.as_str().map(String::from)) == Some("X".into()))
        .cloned()
        .collect();
    assert_eq!(slices.len(), spans.len(), "one slice per span");
    let tracks = events
        .iter()
        .filter(|e| field(e, "ph").and_then(|p| p.as_str().map(String::from)) == Some("M".into()))
        .count();
    assert_eq!(tracks, 4, "one thread-name track per node");

    // Every convicted chain's cause key appears in the slice args, so the
    // conviction's provenance can be reassembled from the export alone.
    for chain in chains.iter().filter(|c| c.convicted()) {
        let key = chain.cause().key();
        let matching = slices
            .iter()
            .filter(|s| {
                field(s, "args")
                    .and_then(|a| {
                        a.as_map()
                            .and_then(|m| serde::Value::get_field(m, "cause_key").cloned())
                    })
                    .and_then(|k| match k {
                        serde::Value::U64(n) => Some(n),
                        _ => None,
                    })
                    == Some(key)
            })
            .count();
        assert!(
            matching >= TracePhase::ALL.len(),
            "conviction {:?} reconstructable from the export ({matching} slices)",
            chain.cause()
        );
    }
}
