//! Golden snapshots of the observability event stream: the canonical
//! intermittent-fault scenario ([`tt_bench::canonical_metrics_report`])
//! and the Table 3 lightning-bolt scenario
//! ([`tt_bench::lightning_metrics_report`]) must produce bit-for-bit
//! stable `MetricsReport`s once wall-clock timings are normalized away.
//! Regenerate intentionally with `cargo run -p tt-bench --bin gen_golden`
//! after a deliberate change to the event schema or the instrumentation
//! points.

use tt_sim::{MetricsEvent, MetricsReport};

fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden")
        .join(name)
}

fn assert_matches_golden(report: &MetricsReport, name: &str) {
    let actual = serde_json::to_string_pretty(report).expect("report serializes") + "\n";
    let path = golden_path(name);
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {path:?}: {e}"));
    assert_eq!(
        actual, expected,
        "metrics event stream drifted from its golden snapshot {name}; if \
         intentional, regenerate with `cargo run -p tt-bench --bin gen_golden`"
    );
}

#[test]
fn canonical_event_stream_matches_golden() {
    assert_matches_golden(&tt_bench::canonical_metrics_report(), "metrics_events.json");
}

#[test]
fn lightning_event_stream_matches_golden() {
    assert_matches_golden(
        &tt_bench::lightning_metrics_report(),
        "metrics_events_lightning.json",
    );
}

#[test]
fn lightning_golden_deserializes_and_tells_its_story() {
    let body =
        std::fs::read_to_string(golden_path("metrics_events_lightning.json")).expect("present");
    let report: MetricsReport = serde_json::from_str(&body).expect("golden parses");
    assert_eq!(report, tt_bench::lightning_metrics_report(), "round trip");

    // The aerospace tuning (P = 17, R = 2) must survive the Table 3
    // lightning bolt: penalties accrue while the burst lasts, rewards
    // forgive them afterwards, nobody is isolated.
    let kinds = |k: &str| report.events.iter().filter(|e| e.kind() == k).count();
    assert!(kinds("slot_fault") > 0, "the bolt corrupts slots");
    assert!(kinds("penalty_charged") > 0);
    assert!(kinds("forgiveness") > 0, "the transient is forgiven");
    assert_eq!(kinds("isolation"), 0, "no healthy node is isolated");
    assert!(report.events.iter().all(|e| e.round().as_u64() < 24));
}

#[test]
fn golden_stream_deserializes_and_replays_semantics() {
    let body = std::fs::read_to_string(golden_path("metrics_events.json")).expect("present");
    let report: MetricsReport = serde_json::from_str(&body).expect("golden parses");
    assert_eq!(report, tt_bench::canonical_metrics_report(), "round trip");

    // The committed stream must tell the scenario's story: node 2's
    // intermittent fault crosses P = 3 and is isolated, node 3's single
    // transient is forgiven by R = 2, and every event is round-stamped
    // within the 16 simulated rounds.
    let kinds = |k: &str| report.events.iter().filter(|e| e.kind() == k).count();
    assert_eq!(kinds("isolation"), 4, "all 4 nodes isolate node 2");
    assert!(kinds("forgiveness") >= 4, "all 4 nodes forgive node 3");
    assert!(report.events.iter().all(|e| e.round().as_u64() < 16));
    let subjects_isolated: Vec<_> = report
        .events
        .iter()
        .filter_map(|e| match e {
            MetricsEvent::Isolation { subject, .. } => Some(subject.get()),
            _ => None,
        })
        .collect();
    assert!(subjects_isolated.iter().all(|&s| s == 2), "only node 2");
}
