//! End-to-end integration tests spanning tt-sim, tt-core, tt-fault and
//! tt-analysis: full clusters running the protocols against injected
//! faults, checked by the ground-truth property oracles.

use tt_core::properties::{check_diag_cluster, checkable_rounds};
use tt_core::{DiagJob, MembershipJob, ProtocolConfig};
use tt_fault::{
    AsymmetricDisturbance, Burst, ContinuousFault, DisturbanceNode, RandomNoise, RandomSyndromeJob,
    Spike,
};
use tt_sim::{Cluster, ClusterBuilder, NodeId, RoundIndex, SlotEffect, TraceMode, TxCtx};

fn config(n: usize, p: u64, r: u64) -> ProtocolConfig {
    ProtocolConfig::builder(n)
        .penalty_threshold(p)
        .reward_threshold(r)
        .build()
        .unwrap()
}

fn diag_cluster(n: usize, cfg: &ProtocolConfig, pipeline: DisturbanceNode) -> Cluster {
    let cfg = cfg.clone();
    ClusterBuilder::new(n).build_with_jobs(
        move |id| Box::new(DiagJob::new(id, cfg.clone())),
        Box::new(pipeline),
    )
}

#[test]
fn tuned_automotive_stack_isolates_a_crashed_node() {
    // Full pipeline: tune on the simulator, then deploy the tuned
    // parameters against a real crash.
    let tuned = tt_analysis::tune(&tt_analysis::automotive_setup());
    let cfg = ProtocolConfig::builder(4)
        .penalty_threshold(tuned.penalty_threshold)
        .reward_threshold(tuned.reward_threshold)
        .uniform_criticality(tuned.rows[0].criticality) // SC nodes
        .build()
        .unwrap();
    let pipeline =
        DisturbanceNode::new(3).with(ContinuousFault::new(NodeId::new(4), RoundIndex::new(10)));
    let mut cluster = ClusterBuilder::new(4)
        .round_length(tuned.round)
        .build_with_jobs(
            |id| Box::new(DiagJob::new(id, cfg.clone())),
            Box::new(pipeline),
        );
    cluster.run_rounds(40);
    let d: &DiagJob = cluster.job_as(NodeId::new(1)).unwrap();
    assert!(!d.is_active(NodeId::new(4)));
    let iso = d.isolations()[0];
    // P = 197, s = 40: the 5th faulty round (diagnosed round 14) pushes the
    // penalty to 200 > 197; decided three rounds later.
    assert_eq!(iso.diagnosed, RoundIndex::new(14));
    assert_eq!(iso.decided_at, RoundIndex::new(17));
    // Isolation within the SC tolerated outage: 7 rounds of latency from
    // fault occurrence = 17.5 ms < 20 ms.
    let latency = (iso.decided_at.as_u64() - 10) * tuned.round.as_nanos();
    assert!(latency <= 20_000_000, "latency {latency} ns");
}

#[test]
fn mixed_fault_soup_within_hypothesis_passes_oracles() {
    // Spikes, short bursts and light noise — all benign — over 200 rounds.
    let pipeline = DisturbanceNode::new(11)
        .with(Spike::at(43))
        .with(Burst::slots(100, 3))
        .with(Burst::slots(400, 8))
        .with(RandomNoise::window(0.02, 500, 700));
    let cfg = config(4, 1_000_000, 1_000_000);
    let mut cluster = diag_cluster(4, &cfg, pipeline);
    cluster.run_rounds(200);
    let all: Vec<NodeId> = NodeId::all(4).collect();
    let report = check_diag_cluster(&cluster, &all, checkable_rounds(200, 3));
    assert!(report.ok(), "{:?}", report.violations);
    assert!(report.rounds_checked >= 190);
}

#[test]
fn eight_node_cluster_tolerates_concurrent_faults() {
    // N = 8 tolerates a = 1, s = 1, b = 2 (8 > 2 + 2 + 2 + 1): one
    // asymmetric sender, one malicious-content sender and a two-slot burst
    // in the same execution window.
    let mal = |ctx: &TxCtx, _: &mut rand::rngs::StdRng| {
        (ctx.round == RoundIndex::new(10) && ctx.sender == NodeId::new(5)).then(|| {
            SlotEffect::SymmetricMalicious {
                payload: bytes::Bytes::from_static(b"\xAA"),
            }
        })
    };
    let pipeline = DisturbanceNode::new(5)
        .with(AsymmetricDisturbance::new(
            NodeId::new(2),
            RoundIndex::new(10),
            1,
            tt_fault::malicious::AsymmetricTarget::Fixed(vec![6]),
        ))
        .with(mal)
        .with(Burst::in_round(RoundIndex::new(10), 6, 2, 8));
    let cfg = config(8, 1_000_000, 1_000_000);
    let mut cluster = diag_cluster(8, &cfg, pipeline);
    cluster.run_rounds(30);
    let all: Vec<NodeId> = NodeId::all(8).collect();
    let report = check_diag_cluster(&cluster, &all, checkable_rounds(30, 3));
    assert!(report.ok(), "{:?}", report.violations);
    assert_eq!(
        report.rounds_out_of_hypothesis, 0,
        "window is in-hypothesis"
    );
    // The benign burst victims were detected.
    let d: &DiagJob = cluster.job_as(NodeId::new(1)).unwrap();
    let rec = d.health_for(RoundIndex::new(10)).unwrap();
    assert!(!rec.health[6] && !rec.health[7], "burst victims convicted");
}

#[test]
fn malicious_syndromes_with_concurrent_burst() {
    // A malicious node spews random syndromes while a burst hits another
    // node: the burst victim must still be convicted and nobody framed.
    let n = 4;
    let cfg = config(n, 1_000_000, 1_000_000);
    let pipeline = DisturbanceNode::new(21).with(Burst::in_round(RoundIndex::new(12), 1, 1, n));
    let mal = NodeId::new(4);
    let mut cluster = ClusterBuilder::new(n).build_with_jobs(
        |id| {
            if id == mal {
                Box::new(RandomSyndromeJob::new(id, n, 77))
            } else {
                Box::new(DiagJob::new(id, cfg.clone()))
            }
        },
        Box::new(pipeline),
    );
    cluster.run_rounds(24);
    let obedient: Vec<NodeId> = NodeId::all(n).filter(|&x| x != mal).collect();
    let report = check_diag_cluster(&cluster, &obedient, checkable_rounds(24, 3));
    assert!(report.ok(), "{:?}", report.violations);
    let d: &DiagJob = cluster.job_as(NodeId::new(1)).unwrap();
    let rec = d.health_for(RoundIndex::new(12)).unwrap();
    assert_eq!(rec.health, vec![true, false, true, true]);
}

#[test]
fn isolated_node_traffic_is_ignored_but_cluster_continues() {
    let cfg = config(4, 2, 10);
    let pipeline =
        DisturbanceNode::new(9).with(ContinuousFault::new(NodeId::new(2), RoundIndex::new(8)));
    let mut cluster = diag_cluster(4, &cfg, pipeline);
    cluster.run_rounds(40);
    for obs in [1u32, 3, 4] {
        let d: &DiagJob = cluster.job_as(NodeId::new(obs)).unwrap();
        assert!(!d.is_active(NodeId::new(2)), "node {obs}");
        // The survivors keep diagnosing each other as healthy.
        let last = d.last_health().unwrap();
        assert!(last.health[0] && last.health[2] && last.health[3]);
        // And the controller drops the isolated node's traffic.
        let c = cluster.controller(NodeId::new(obs)).unwrap();
        assert!(!c.is_active(NodeId::new(2)));
    }
}

#[test]
fn diag_and_membership_agree_on_benign_faults() {
    // The same fault pattern drives a DiagJob cluster and a MembershipJob
    // cluster; their health verdicts must be identical.
    let pattern = |ctx: &TxCtx| {
        if ctx.abs_slot % 11 == 4 {
            SlotEffect::Benign
        } else {
            SlotEffect::Correct
        }
    };
    let cfg = config(4, 1_000_000, 1_000_000);
    let mut diag = ClusterBuilder::new(4).build_with_jobs(
        |id| Box::new(DiagJob::new(id, cfg.clone())),
        Box::new(pattern),
    );
    let mut memb = ClusterBuilder::new(4).build_with_jobs(
        |id| Box::new(MembershipJob::new(id, cfg.clone())),
        Box::new(pattern),
    );
    diag.run_rounds(40);
    memb.run_rounds(40);
    let d: &DiagJob = diag.job_as(NodeId::new(1)).unwrap();
    let m: &MembershipJob = memb.job_as(NodeId::new(1)).unwrap();
    for rec in d.health_log() {
        let mrec = m.health_for(rec.diagnosed).unwrap();
        assert_eq!(rec.health, mrec.health, "round {:?}", rec.diagnosed);
    }
}

#[test]
fn trace_mode_off_still_runs_protocol() {
    let cfg = config(4, 3, 10);
    let mut cluster = ClusterBuilder::new(4)
        .trace_mode(TraceMode::Off)
        .build(Box::new(tt_sim::NoFaults))
        .unwrap();
    for id in NodeId::all(4) {
        cluster
            .add_job(id, 0, Box::new(DiagJob::new(id, cfg.clone())))
            .unwrap();
    }
    cluster.run_rounds(20);
    assert!(cluster.trace().records().is_empty());
    let d: &DiagJob = cluster.job_as(NodeId::new(1)).unwrap();
    assert!(d.health_log().len() > 10);
}

#[test]
fn rewards_forgive_separated_bursts_end_to_end() {
    // Two bursts separated by more than R rounds: counters reset between
    // them and nobody is isolated, though the total fault count exceeds P.
    let cfg = ProtocolConfig::builder(4)
        .penalty_threshold(5)
        .reward_threshold(20)
        .build()
        .unwrap();
    let pipeline = DisturbanceNode::new(1)
        .with(Burst::in_round(RoundIndex::new(10), 0, 16, 4)) // 4 rounds
        .with(Burst::in_round(RoundIndex::new(50), 0, 16, 4)); // 4 rounds
    let mut cluster = diag_cluster(4, &cfg, pipeline);
    cluster.run_rounds(80);
    let d: &DiagJob = cluster.job_as(NodeId::new(1)).unwrap();
    assert!(d.isolations().is_empty(), "8 faults > P but decorrelated");
    assert!(NodeId::all(4).all(|n| d.is_active(n)));
}

#[test]
fn stalled_diagnostic_job_does_no_harm_in_steady_state() {
    // The paper assumes diagnostic jobs execute every round. If a job
    // *stalls* (host alive, application crashed), the controller keeps
    // retransmitting the last written syndrome. In a fault-free steady
    // state that stale syndrome is all-healthy, so nothing happens; when a
    // fault occurs later, the stale row is one wrong opinion among N - 1
    // and is outvoted — the failure mode degrades gracefully.
    struct Stalling {
        inner: DiagJob,
        stop_after: u64,
        executed: u64,
    }
    impl tt_sim::Job for Stalling {
        fn execute(&mut self, ctx: &mut tt_sim::JobCtx<'_>) {
            if self.executed < self.stop_after {
                self.inner.execute(ctx);
            }
            self.executed += 1;
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
    }
    let cfg = config(4, 1_000_000, 1_000_000);
    let mut cluster = ClusterBuilder::new(4)
        .build(Box::new(|ctx: &TxCtx| {
            if ctx.round == RoundIndex::new(20) && ctx.sender == NodeId::new(2) {
                SlotEffect::Benign
            } else {
                SlotEffect::Correct
            }
        }))
        .unwrap();
    for id in NodeId::all(4) {
        let job = DiagJob::new(id, cfg.clone());
        if id == NodeId::new(4) {
            // Node 4's diagnostic job stalls after round 12 (fault-free
            // steady state: its frozen syndrome is all-healthy).
            cluster
                .add_job(
                    id,
                    0,
                    Box::new(Stalling {
                        inner: job,
                        stop_after: 12,
                        executed: 0,
                    }),
                )
                .unwrap();
        } else {
            cluster.add_job(id, 0, Box::new(job)).unwrap();
        }
    }
    cluster.run_rounds(30);
    // The live nodes diagnose the round-20 fault correctly despite node
    // 4's stale (healthy-claiming) row: 2 accusations + 1 stale
    // endorsement -> majority accuses.
    for id in [1u32, 2, 3] {
        let d: &DiagJob = cluster.job_as(NodeId::new(id)).unwrap();
        let rec = d.health_for(RoundIndex::new(20)).unwrap();
        assert_eq!(rec.health, vec![true, false, true, true], "node {id}");
        // And nobody frames the stalled node: its frames stay valid.
        assert!(rec.health[3], "stalled node not convicted");
    }
}
