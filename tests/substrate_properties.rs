//! Property-based tests for the substrates added around the protocol:
//! replicated bus merge laws, clock-ensemble invariants and the TTP/C
//! baseline's determinism and single-fault guarantees.

use proptest::collection::vec;
use proptest::prelude::*;

use tt_baselines::TtpcCluster;
use tt_sim::{
    apply_effect, ClockConfig, ClockEnsemble, FaultPipeline, NodeId, Reception, ReplicatedBus,
    RoundIndex, SlotEffect, SlotOutcome, TxCtx,
};

fn ctx(n: usize, abs: u64) -> TxCtx {
    TxCtx {
        round: RoundIndex::new(abs / n as u64),
        sender: NodeId::from_slot((abs % n as u64) as usize),
        n_nodes: n,
        abs_slot: abs,
    }
}

/// An arbitrary slot effect over `n` nodes (benign-heavy mix).
fn arb_effect(n: usize) -> impl Strategy<Value = SlotEffect> {
    prop_oneof![
        3 => Just(SlotEffect::Correct),
        2 => Just(SlotEffect::Benign),
        1 => vec(any::<bool>(), n).prop_map(move |mask| {
            SlotEffect::Asymmetric {
                detected_by: mask
                    .iter()
                    .enumerate()
                    .filter(|(_, &b)| b)
                    .map(|(i, _)| i)
                    .collect(),
                collision_ok: true,
            }
        }),
        1 => any::<u8>().prop_map(|b| SlotEffect::SymmetricMalicious {
            payload: bytes::Bytes::copy_from_slice(&[b]),
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Redundancy is monotone: adding a channel never turns a valid
    /// reception into a detected one.
    #[test]
    fn replication_never_hurts(e1 in arb_effect(4), e2 in arb_effect(4), abs in 0u64..64) {
        let c = ctx(4, abs);
        let payload = bytes::Bytes::from_static(b"\x0b");
        let single = {
            let eff = e1.clone();
            let mut p = move |_: &TxCtx| eff.clone();
            FaultPipeline::transmit(&mut p, &c, &payload)
        };
        let double = {
            let (ea, eb) = (e1.clone(), e2.clone());
            let mut bus = ReplicatedBus::new(vec![
                Box::new(move |_: &TxCtx| ea.clone()),
                Box::new(move |_: &TxCtx| eb.clone()),
            ]);
            bus.transmit(&c, &payload)
        };
        for rx in 0..4 {
            if single.receptions[rx].is_valid() {
                prop_assert!(
                    double.receptions[rx].is_valid(),
                    "rx {rx}: {single:?} vs {double:?}"
                );
            }
        }
        prop_assert!(double.collision_ok || !single.collision_ok);
    }

    /// A healthy channel anywhere in the stack makes every reception valid.
    #[test]
    fn healthy_channel_heals_everything(e in arb_effect(6), abs in 0u64..64) {
        let c = ctx(6, abs);
        let payload = bytes::Bytes::from_static(b"\x2a");
        let mut bus = ReplicatedBus::new(vec![
            Box::new(move |_: &TxCtx| e.clone()),
            Box::new(tt_sim::NoFaults),
        ]);
        let out = bus.transmit(&c, &payload);
        prop_assert!(out.receptions.iter().all(Reception::is_valid));
        prop_assert!(out.collision_ok);
    }

    /// The replicated merge agrees with the single-channel outcome when all
    /// channels carry the same effect.
    #[test]
    fn identical_channels_match_single(e in arb_effect(4), abs in 0u64..64) {
        let c = ctx(4, abs);
        let payload = bytes::Bytes::from_static(b"\x07");
        let single = apply_effect(&e, &c, &payload);
        let (ea, eb) = (e.clone(), e.clone());
        let mut bus = ReplicatedBus::new(vec![
            Box::new(move |_: &TxCtx| ea.clone()),
            Box::new(move |_: &TxCtx| eb.clone()),
        ]);
        let double = bus.transmit(&c, &payload);
        prop_assert_eq!(&single.receptions, &double.receptions);
        prop_assert_eq!(single.collision_ok, double.collision_ok);
    }

    /// `transmit_into` is observationally identical to the legacy
    /// `transmit` for arbitrary fault effects — through the overridden
    /// closure fast path, the trait-default delegation, and the replicated
    /// bus merge — even when the output buffer is dirty from a previous
    /// slot.
    #[test]
    fn transmit_into_matches_transmit(
        e1 in arb_effect(4),
        e2 in arb_effect(4),
        b in any::<u8>(),
        abs in 0u64..64,
    ) {
        let c = ctx(4, abs);
        let payload = bytes::Bytes::copy_from_slice(&[b]);
        // Dirty the buffer with a different slot's outcome first, so the
        // test also proves a reused buffer is fully overwritten.
        let mut out = SlotOutcome::new();
        {
            let eff = e2.clone();
            let mut dirty = move |_: &TxCtx| eff.clone();
            FaultPipeline::transmit_into(
                &mut dirty,
                &ctx(4, abs + 1),
                &bytes::Bytes::from_static(b"\xde\xad"),
                &mut out,
            );
        }

        // Closure pipelines override transmit_into with an in-place fill.
        let eff = e1.clone();
        let mut closure = move |_: &TxCtx| eff.clone();
        let legacy = FaultPipeline::transmit(&mut closure, &c, &payload);
        FaultPipeline::transmit_into(&mut closure, &c, &payload, &mut out);
        prop_assert_eq!(&out.receptions, &legacy.receptions);
        prop_assert_eq!(out.collision_ok, legacy.collision_ok);
        prop_assert_eq!(out.class, legacy.class);

        // A pipeline implementing only `effect` uses the trait default,
        // which delegates to `transmit`.
        struct EffectOnly(SlotEffect);
        impl FaultPipeline for EffectOnly {
            fn effect(&mut self, _: &TxCtx) -> SlotEffect {
                self.0.clone()
            }
        }
        let mut default_path = EffectOnly(e1.clone());
        default_path.transmit_into(&c, &payload, &mut out);
        prop_assert_eq!(&out.receptions, &legacy.receptions);
        prop_assert_eq!(out.collision_ok, legacy.collision_ok);
        prop_assert_eq!(out.class, legacy.class);

        // The replicated bus overrides both methods; they must agree too.
        let mk_bus = |ea: SlotEffect, eb: SlotEffect| {
            ReplicatedBus::new(vec![
                Box::new(move |_: &TxCtx| ea.clone()) as Box<dyn FaultPipeline>,
                Box::new(move |_: &TxCtx| eb.clone()),
            ])
        };
        let bus_legacy = mk_bus(e1.clone(), e2.clone()).transmit(&c, &payload);
        mk_bus(e1.clone(), e2.clone()).transmit_into(&c, &payload, &mut out);
        prop_assert_eq!(&out.receptions, &bus_legacy.receptions);
        prop_assert_eq!(out.collision_ok, bus_legacy.collision_ok);
        prop_assert_eq!(out.class, bus_legacy.class);
    }

    /// Clock ensembles with in-spec drifts stay synchronized for any seed
    /// and any drift assignment within +-50 ppm.
    #[test]
    fn in_spec_clocks_stay_inside_the_window(
        seed in any::<u64>(),
        drifts in vec(-50.0f64..50.0, 4),
    ) {
        let mut cfg = ClockConfig::healthy(4);
        cfg.drift_ppm = drifts;
        let mut c = ClockEnsemble::new(cfg, seed);
        for _ in 0..300 {
            c.advance_round();
        }
        prop_assert!(c.precision_ns() < 2_000.0, "precision {}", c.precision_ns());
        for i in 0..4 {
            prop_assert!(c.detected_by(i).is_empty());
        }
    }

    /// TTP/C baseline: under a single benign sender fault at any position,
    /// exactly the faulty node is lost, for any cluster size 3..=8.
    #[test]
    fn ttpc_single_fault_guarantee(n in 3usize..=8, round in 3u64..10, sender in 1u32..=3) {
        prop_assume!((sender as usize) <= n);
        let fault = move |ctx: &TxCtx| {
            if ctx.round == RoundIndex::new(round) && ctx.sender == NodeId::new(sender) {
                SlotEffect::Benign
            } else {
                SlotEffect::Correct
            }
        };
        let mut c = TtpcCluster::new(n, Box::new(fault));
        c.run_rounds(round + 6);
        prop_assert_eq!(c.alive(), n - 1);
        prop_assert!(c.is_frozen(NodeId::new(sender)));
        for id in NodeId::all(n).filter(|&x| x != NodeId::new(sender)) {
            prop_assert_eq!(c.membership(id).len(), n - 1, "{}", id);
        }
    }
}
