//! Integration tests pitting the paper's protocol against the baselines on
//! identical fault environments — the executable version of the paper's
//! related-work comparison (Sec. 2) and availability argument (Sec. 9).

use tt_baselines::{AlphaCount, TtpcCluster};
use tt_bench::comparison::{intermittent_detection, ttpc_survival};
use tt_core::{MembershipJob, ProtocolConfig};
use tt_fault::TransientScenario;
use tt_sim::{ClusterBuilder, Nanos, NodeId, RoundIndex, SlotEffect, TxCtx};

/// The asymmetric 2-2 clique split: node 4's frame missed by nodes 2 and 3.
fn clique_split(ctx: &TxCtx) -> SlotEffect {
    if ctx.round == RoundIndex::new(8) && ctx.sender == NodeId::new(4) {
        SlotEffect::Asymmetric {
            detected_by: vec![1, 2],
            collision_ok: true,
        }
    } else {
        SlotEffect::Correct
    }
}

#[test]
fn clique_split_paper_protocol_beats_ttpc() {
    // TTP/C-style: the 2-2 membership split cascades through clique
    // avoidance and freezes the entire healthy cluster.
    let mut ttpc = TtpcCluster::new(4, Box::new(clique_split));
    ttpc.run_rounds(16);
    assert_eq!(ttpc.alive(), 0, "baseline loses all 4 healthy nodes");

    // The paper's membership protocol installs one consistent view keeping
    // the larger clique (3 of 4 nodes stay, only the minority-clique
    // member is excluded).
    let cfg = ProtocolConfig::builder(4)
        .penalty_threshold(100)
        .reward_threshold(1_000)
        .build()
        .unwrap();
    let mut cluster = ClusterBuilder::new(4).build_with_jobs(
        |id| Box::new(MembershipJob::new(id, cfg.clone())),
        Box::new(clique_split),
    );
    cluster.run_rounds(24);
    let views: Vec<Vec<NodeId>> = (1..=4u32)
        .map(|id| {
            let m: &MembershipJob = cluster.job_as(NodeId::new(id)).unwrap();
            m.current_view().members.clone()
        })
        .collect();
    assert!(views.windows(2).all(|w| w[0] == w[1]), "consistent views");
    assert_eq!(views[0].len(), 2, "two members survive in the view");
    // ...and crucially, the *nodes* themselves all keep running: exclusion
    // is a view change, not a cascade of freezes.
}

#[test]
fn transient_availability_paper_vs_baseline() {
    // A single 10 ms burst: the paper's tuned p/r forgives it entirely;
    // the TTP/C-style baseline loses the whole cluster.
    let one_burst = TransientScenario::new(
        "one burst",
        vec![tt_fault::scenario::BurstSegment {
            burst: Nanos::from_millis(10),
            reappearance: Nanos::from_millis(500),
            count: 1,
        }],
    );
    let t = Nanos::from_micros(2_500);
    let m = tt_analysis::measure_time_to_isolation(&one_burst, 40, 197, 1_000_000, t, 4);
    assert_eq!(m.time_to_isolation, None, "p/r: nobody isolated");
    let (_, alive) = ttpc_survival(&one_burst, t, 4);
    assert_eq!(alive, 0, "baseline: whole cluster frozen");
}

#[test]
fn unhealthy_node_detected_by_both_filters() {
    let k = AlphaCount::max_uncorrelating_k(5.0, 1_000_000).min(0.999_999_9);
    let (pr, alpha, ttpc) = intermittent_detection(50, 5, 1_000_000, k, 5.0, 4);
    // All mechanisms isolate the intermittent node; p/r and alpha-count
    // take ~P faults (P * period rounds), TTP/C immediately.
    assert!(pr.is_some() && alpha.is_some() && ttpc.is_some());
    let (pr, alpha) = (pr.unwrap(), alpha.unwrap());
    assert!((240..=270).contains(&pr), "pr at {pr}");
    assert!((190..=270).contains(&alpha), "alpha at {alpha}");
}

#[test]
fn pr_forgives_separated_bursts_that_alpha_count_accumulates() {
    // The structural difference between the two filters (the paper's own
    // p/r analysis, ref [7]): p/r resets *completely* after R consecutive
    // clean rounds, so fault bursts separated by more than R are fully
    // decorrelated no matter how many there are. Alpha-count's exponential
    // decay is never complete: with the decay tuned to the same correlation
    // horizon (steady-state boundary at period 50), residue from each burst
    // survives a 100-round gap and the score ratchets up to the threshold.
    //
    // Environment: bursts of 3 consecutive faults every 100 rounds.
    let (p, r) = (4u64, 50u64);
    let mut pr = tt_core::PenaltyReward::new(1, vec![1], p, r, tt_core::ReintegrationPolicy::Never);
    // Same horizon for alpha-count: the largest K that still decorrelates
    // single faults 50 rounds apart, with the same budget of 4.
    let k = AlphaCount::max_uncorrelating_k(4.0, 50);
    let mut alpha = AlphaCount::new(1, k, 4.0);
    let mut pr_isolated = false;
    let mut alpha_isolated = false;
    for round in 0..10_000u64 {
        let healthy = round % 100 >= 3;
        pr_isolated |= !pr.update(&[healthy]).is_empty();
        alpha_isolated |= !alpha.update(&[healthy]).is_empty();
    }
    assert!(
        !pr_isolated,
        "p/r: each burst (3 <= P) is forgotten after R clean rounds"
    );
    assert!(
        alpha_isolated,
        "alpha-count: per-burst residue (K^97 ~ 0.57) ratchets to the threshold"
    );
}

#[test]
fn ttpc_and_paper_agree_on_genuinely_crashed_nodes() {
    // On the bread-and-butter case (a permanent crash) both designs reach
    // the same end state — the baselines are not strawmen.
    let crash = |ctx: &TxCtx| {
        if ctx.sender == NodeId::new(3) && ctx.round >= RoundIndex::new(6) {
            SlotEffect::Benign
        } else {
            SlotEffect::Correct
        }
    };
    let mut ttpc = TtpcCluster::new(4, Box::new(crash));
    ttpc.run_rounds(20);
    assert_eq!(ttpc.alive(), 3);
    assert!(ttpc.is_frozen(NodeId::new(3)));

    let cfg = ProtocolConfig::builder(4)
        .penalty_threshold(3)
        .reward_threshold(100)
        .build()
        .unwrap();
    let mut cluster = ClusterBuilder::new(4).build_with_jobs(
        |id| Box::new(tt_core::DiagJob::new(id, cfg.clone())),
        Box::new(crash),
    );
    cluster.run_rounds(20);
    let d: &tt_core::DiagJob = cluster.job_as(NodeId::new(1)).unwrap();
    assert!(!d.is_active(NodeId::new(3)));
}
