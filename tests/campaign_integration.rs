//! Integration test of the Sec. 8 validation campaign: every experiment
//! class, multiple seeded repetitions, sequential and parallel runners.

use tt_bench::run_parallel_campaign;
use tt_fault::{run_campaign, sec8_classes, ExperimentClass};
use tt_sim::NodeId;

#[test]
fn full_campaign_small_reps_all_green() {
    let classes = sec8_classes(4);
    let result = run_campaign(&classes, 4, 5, 20_070_101);
    assert_eq!(result.total(), classes.len() * 5);
    let failures: Vec<_> = result
        .outcomes
        .iter()
        .filter(|o| !o.passed)
        .map(|o| (o.label.clone(), o.seed, o.notes.clone()))
        .collect();
    assert!(failures.is_empty(), "{failures:?}");
    // Per-class summaries are complete and green.
    let summary = result.summary();
    assert_eq!(summary.len(), classes.len());
    for (label, passed, total) in summary {
        assert_eq!(passed, total, "{label}");
        assert_eq!(total, 5, "{label}");
    }
}

#[test]
fn parallel_campaign_equals_sequential() {
    let classes = sec8_classes(4);
    let seq = run_campaign(&classes, 4, 2, 99);
    let par = run_parallel_campaign(&classes, 4, 2, 99, 8);
    assert_eq!(seq.outcomes, par.outcomes);
}

#[test]
fn campaign_covers_paper_experiment_structure() {
    let classes = sec8_classes(4);
    // 12 burst classes: lengths {1 slot, 2 slots, 2 rounds} x 4 start slots.
    let mut lens = std::collections::BTreeSet::new();
    let mut starts = std::collections::BTreeSet::new();
    for c in &classes {
        if let ExperimentClass::Burst {
            len_slots,
            start_slot,
        } = c
        {
            lens.insert(*len_slots);
            starts.insert(*start_slot);
        }
    }
    assert_eq!(lens.into_iter().collect::<Vec<_>>(), vec![1, 2, 8]);
    assert_eq!(starts.into_iter().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    // A malicious class per possible culprit.
    assert_eq!(
        NodeId::all(4)
            .filter(|&n| classes.contains(&ExperimentClass::MaliciousSyndromes { node: n }))
            .count(),
        4
    );
}

#[test]
fn hundred_rep_class_mirrors_paper_count() {
    // The paper repeats each class 100 times; run one class at full count
    // to show the harness sustains it (the `validation` binary runs all).
    let result = run_campaign(
        &[ExperimentClass::Burst {
            len_slots: 1,
            start_slot: 2,
        }],
        4,
        100,
        7,
    );
    assert_eq!(result.total(), 100);
    assert!(result.all_passed());
}
