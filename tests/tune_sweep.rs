//! Campaign-scale tuning sweeps (`tt_analysis::sweep`, `ttdiag tune
//! sweep`): the pinned small-grid golden behind CI's tune-goldens job,
//! halt/resume byte-equivalence at arbitrary interrupt points, the
//! batched-vs-scalar agreement of a sweep cell's observations, and the
//! empirical Fig. 3 boundary against the analytic model.

use proptest::prelude::*;

use tt_analysis::{
    analytic_agreement, check_analytic_agreement, resume_sweep, run_sweep, sweep_json,
    SweepCheckpoint, SweepConfig, SweepSupervisor,
};
use tt_fault::{
    experiment_seed, observe_schedule, observe_schedules_batched, read_json, sampled_schedule,
    FaultSchedule, TransientCell,
};

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden/tune_sweep_small.json")
}

/// A 4-cell grid small enough to proptest halt/resume over.
fn tiny_config() -> SweepConfig {
    SweepConfig {
        nodes: vec![4],
        rounds: vec![32],
        penalty_thresholds: vec![1],
        reward_thresholds: vec![2, 8],
        criticalities: vec![1],
        rates_per_hour: vec![72_000.0],
        intermittent_periods: vec![0, 6],
        experiments: 48,
        batch_size: 16,
        base_seed: 2_007,
    }
}

#[test]
fn pinned_grid_matches_golden() {
    let outcome = run_sweep(&SweepConfig::default(), &SweepSupervisor::default()).unwrap();
    let expected = std::fs::read_to_string(golden_path())
        .unwrap_or_else(|e| panic!("missing golden tune_sweep_small.json: {e}"));
    assert_eq!(
        sweep_json(&outcome.report),
        expected,
        "pinned sweep drifted from its golden snapshot; if intentional, \
         regenerate with `cargo run -p tt-bench --bin gen_golden`"
    );
}

#[test]
fn pinned_grid_reproduces_the_fig3_boundary() {
    // The acceptance criterion of the sweep: at every measured operating
    // point of the pinned grid, the empirical false-correlation
    // probability agrees with the analytic `correlation_probability`
    // within the reported 95% Wilson interval.
    let outcome = run_sweep(&SweepConfig::default(), &SweepSupervisor::default()).unwrap();
    let rows = analytic_agreement(&outcome.report);
    assert!(
        rows.len() >= 12,
        "the pinned grid measures the boundary at many operating points, got {}",
        rows.len()
    );
    let verdict = check_analytic_agreement(&outcome.report)
        .unwrap_or_else(|disagreement| panic!("{disagreement}"));
    assert!(verdict.contains("24/24"), "{verdict}");
}

#[test]
fn same_seed_means_byte_identical_json() {
    let sup = SweepSupervisor::default();
    let a = run_sweep(&tiny_config(), &sup).unwrap();
    let b = run_sweep(&tiny_config(), &sup).unwrap();
    assert_eq!(sweep_json(&a.report), sweep_json(&b.report));
    // A different base seed is a genuinely different sample.
    let mut reseeded = tiny_config();
    reseeded.base_seed ^= 0xDEAD_BEEF;
    let c = run_sweep(&reseeded, &sup).unwrap();
    assert_ne!(sweep_json(&a.report), sweep_json(&c.report));
}

#[test]
fn one_sweep_cell_agrees_batched_vs_scalar() {
    // The exact experiment list of one pinned-grid cell, observed once
    // through the lockstep engine and once per-schedule on the scalar
    // path: observation for observation identical.
    let cell = TransientCell {
        n: 4,
        rounds: 64,
        penalty_threshold: 1,
        reward_threshold: 8,
        rate_per_hour: 72_000.0,
        intermittent_period: 6,
    };
    let crit = vec![1u64; cell.n];
    let schedules: Vec<FaultSchedule> = (0..32)
        .map(|rep| sampled_schedule(&cell, experiment_seed(2_007, 5, rep)))
        .collect();
    let batched = observe_schedules_batched(&schedules, &crit).unwrap();
    for (schedule, b) in schedules.iter().zip(&batched) {
        let scalar = observe_schedule(schedule, &crit);
        assert_eq!(b.forgiveness, scalar.forgiveness);
        assert_eq!(b.isolations.len(), scalar.isolations.len());
        for (bi, si) in b.isolations.iter().zip(&scalar.isolations) {
            assert_eq!(
                (bi.subject, bi.diagnosed, bi.decided_at),
                (si.subject, si.diagnosed, si.decided_at)
            );
        }
    }
}

fn unique_checkpoint_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "tt-tune-sweep-test-{tag}-{}.json",
        std::process::id()
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A sweep halted after an arbitrary number of cells and resumed from
    /// its checkpoint produces byte-identical JSON to an uninterrupted
    /// run — the guarantee CI's halt/resume check leans on.
    #[test]
    fn halt_resume_is_byte_identical_at_any_interrupt_point(halt_after in 1u64..4) {
        let config = tiny_config();
        let uninterrupted = run_sweep(&config, &SweepSupervisor::default()).unwrap();
        let path = unique_checkpoint_path(&format!("halt{halt_after}"));
        let halted = run_sweep(
            &config,
            &SweepSupervisor {
                checkpoint_path: Some(path.clone()),
                halt_after_cells: Some(halt_after),
            },
        )
        .unwrap();
        prop_assert!(halted.halted);
        prop_assert_eq!(halted.report.cells.len() as u64, halt_after);
        let cp: SweepCheckpoint = read_json(&path).unwrap();
        prop_assert!(cp.matches(&config));
        let resumed = resume_sweep(cp, &SweepSupervisor::default()).unwrap();
        prop_assert!(!resumed.halted);
        prop_assert_eq!(
            sweep_json(&resumed.report),
            sweep_json(&uninterrupted.report)
        );
        let _ = std::fs::remove_file(&path);
    }
}
