//! Record/replay: a run's fault trace can be serialized and re-driven
//! deterministically against any protocol configuration — the workflow for
//! analyzing captured fault patterns (from this simulator or imported from
//! hardware instrumentation) offline.

use tt_core::{DiagJob, ProtocolConfig};
use tt_fault::{AsymmetricDisturbance, Burst, DisturbanceNode, RandomNoise};
use tt_sim::{Cluster, ClusterBuilder, NodeId, RoundIndex, Trace, TraceMode};

fn run_with(pipeline: Box<dyn tt_sim::FaultPipeline>, p: u64) -> Cluster {
    let cfg = ProtocolConfig::builder(4)
        .penalty_threshold(p)
        .reward_threshold(1_000)
        .build()
        .unwrap();
    let mut cluster = ClusterBuilder::new(4)
        .trace_mode(TraceMode::Anomalies)
        .build_with_jobs(|id| Box::new(DiagJob::new(id, cfg.clone())), pipeline);
    cluster.run_rounds(60);
    cluster
}

#[test]
fn replayed_trace_reproduces_the_original_run_exactly() {
    // Original: a seeded random mix of benign noise, a burst, and an
    // asymmetric fault.
    let pipeline = DisturbanceNode::new(42)
        .with(AsymmetricDisturbance::new(
            NodeId::new(2),
            RoundIndex::new(15),
            1,
            tt_fault::malicious::AsymmetricTarget::Fixed(vec![3]),
        ))
        .with(Burst::in_round(RoundIndex::new(30), 1, 3, 4))
        .with(RandomNoise::window(0.08, 0, 100));
    let original = run_with(Box::new(pipeline), 1_000_000);
    assert!(!original.trace().records().is_empty());

    // Replay the recorded effects (no RNG, no disturbance node) and compare
    // every protocol observable.
    let replayed = run_with(Box::new(original.trace().replay_pipeline()), 1_000_000);
    assert_eq!(
        original.trace().records(),
        replayed.trace().records(),
        "the replay regenerates the identical trace"
    );
    for id in NodeId::all(4) {
        let a: &DiagJob = original.job_as(id).unwrap();
        let b: &DiagJob = replayed.job_as(id).unwrap();
        assert_eq!(a.health_log(), b.health_log(), "{id}");
        assert_eq!(a.isolations(), b.isolations(), "{id}");
    }
}

#[test]
fn replay_supports_what_if_retuning() {
    // Capture once, then re-drive the same fault pattern under a different
    // penalty threshold: the what-if analysis loop of a diagnostician.
    let pipeline = DisturbanceNode::new(7).with(Burst::in_round(RoundIndex::new(10), 0, 24, 4));
    let original = run_with(Box::new(pipeline), 1_000_000);
    // Lenient tuning: nobody isolated (6 faulty rounds each, P huge).
    let o: &DiagJob = original.job_as(NodeId::new(1)).unwrap();
    assert!(o.isolations().is_empty());
    // Strict retune on the captured trace: isolation after 4 faults.
    let strict = run_with(Box::new(original.trace().replay_pipeline()), 3);
    let s: &DiagJob = strict.job_as(NodeId::new(1)).unwrap();
    assert_eq!(s.isolations().len(), 4, "all four nodes cross P = 3");
}

#[test]
fn traces_survive_serialization_for_offline_replay() {
    let pipeline = DisturbanceNode::new(3).with(RandomNoise::window(0.1, 0, 80));
    let original = run_with(Box::new(pipeline), 1_000_000);
    let json = serde_json::to_string(original.trace()).unwrap();
    let restored: Trace = serde_json::from_str(&json).unwrap();
    assert_eq!(original.trace().records(), restored.records());
    // And the restored trace drives an identical run.
    let replayed = run_with(Box::new(restored.replay_pipeline()), 1_000_000);
    let a: &DiagJob = original.job_as(NodeId::new(2)).unwrap();
    let b: &DiagJob = replayed.job_as(NodeId::new(2)).unwrap();
    assert_eq!(a.health_log(), b.health_log());
}

#[test]
fn imported_hand_written_trace_drives_a_run() {
    // A "hardware-captured" trace authored by hand: two anomalies.
    let mut trace = Trace::new(TraceMode::Anomalies);
    trace.record_with_effect(
        RoundIndex::new(9),
        NodeId::new(3),
        tt_sim::SlotFaultClass::Benign,
        Some(tt_sim::EffectRecord::Benign),
    );
    trace.record_with_effect(
        RoundIndex::new(12),
        NodeId::new(1),
        tt_sim::SlotFaultClass::Asymmetric,
        Some(tt_sim::EffectRecord::Asymmetric {
            detected_by: vec![1],
            collision_ok: true,
        }),
    );
    let cluster = run_with(Box::new(trace.replay_pipeline()), 1_000_000);
    let d: &DiagJob = cluster.job_as(NodeId::new(4)).unwrap();
    assert_eq!(
        d.health_for(RoundIndex::new(9)).unwrap().health,
        vec![true, true, false, true]
    );
    assert_eq!(
        d.health_for(RoundIndex::new(12)).unwrap().health,
        vec![true; 4],
        "single accuser outvoted"
    );
}
