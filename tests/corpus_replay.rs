//! Regression corpus replay: every schedule stored under `tests/corpus/`
//! (discovered by the coverage-guided explorer, committed to the repo) is
//! re-executed against the full oracle stack on every PR. A protocol
//! regression that breaks Theorem 1, counter consistency or an Alg. 2
//! invariant on any previously-explored state trips this test with the
//! offending schedule's filename.

use std::path::{Path, PathBuf};

use tt_fault::explore::{execute_schedule, explore_with, load_corpus, ExploreConfig};
use tt_sim::Cluster;

fn corpus_dir() -> PathBuf {
    // Tests are registered from crates/bench; the corpus lives at the
    // workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
}

/// Every stored schedule replays cleanly against every oracle.
#[test]
fn corpus_replays_clean_against_all_oracles() {
    let corpus = load_corpus(&corpus_dir()).expect("corpus directory readable");
    assert!(
        !corpus.is_empty(),
        "the seed corpus is committed and non-empty"
    );
    for (path, schedule) in &corpus {
        let exec = execute_schedule(schedule);
        assert!(
            exec.verdict.ok(),
            "{}: {:?}",
            path.display(),
            exec.verdict.all(),
        );
    }
}

/// The lockstep batch engine replays the whole committed corpus in one
/// batched pass with the exact scalar fingerprint stream per schedule —
/// the corpus doubles as a regression suite for the batched/scalar
/// equivalence on real explorer-discovered states, not just random ones.
#[test]
fn corpus_replays_identically_through_batched_engine() {
    let corpus = load_corpus(&corpus_dir()).expect("corpus directory readable");
    assert!(!corpus.is_empty(), "the seed corpus is non-empty");
    let schedules: Vec<_> = corpus.iter().map(|(_, s)| s.clone()).collect();
    let batched = tt_fault::execute_schedules_batched(&schedules).expect("corpus is batchable");
    for ((path, schedule), fps) in corpus.iter().zip(&batched) {
        assert_eq!(
            &execute_schedule(schedule).fingerprints,
            fps,
            "{}: batched replay diverged from scalar",
            path.display(),
        );
    }
}

/// Stored filenames embed the schedule's content hash; a hand-edited or
/// corrupted corpus entry is caught before it silently weakens the suite.
#[test]
fn corpus_filenames_match_schedule_ids() {
    for (path, schedule) in load_corpus(&corpus_dir()).expect("corpus directory readable") {
        let stem = path.file_stem().unwrap().to_string_lossy();
        let hex = stem.rsplit('-').next().unwrap();
        assert_eq!(
            u64::from_str_radix(hex, 16).ok(),
            Some(schedule.id()),
            "{}: filename does not match content id",
            path.display(),
        );
    }
}

/// Replaying the corpus as an explorer seed primes coverage without
/// finding violations: the committed schedules stay within the protocol's
/// verified envelope even when mutated further.
#[test]
fn corpus_seeds_explore_cleanly() {
    let seeds: Vec<_> = load_corpus(&corpus_dir())
        .expect("corpus directory readable")
        .into_iter()
        .map(|(_, s)| s)
        .collect();
    let cfg = ExploreConfig {
        budget: seeds.len() as u64 + 20,
        ..ExploreConfig::default()
    };
    let report = explore_with(&cfg, &seeds, &tt_fault::explore::no_extra_oracle);
    assert!(
        report.counterexamples.is_empty(),
        "{:?}",
        report
            .counterexamples
            .iter()
            .map(|c| &c.violations)
            .collect::<Vec<_>>(),
    );
    assert!(report.unique_states > 0);
}

/// Harness self-test: plant a deliberately weakened oracle ("no node is
/// ever convicted" — false under any effective fault) and prove the
/// explorer detects it AND the shrinker minimizes the reproducer to a
/// single one-shot fault. The final `panic!` carries a sentinel message;
/// if detection or minimization ever silently breaks, the asserts above
/// it fail with different messages and `should_panic(expected)` rejects
/// them.
#[test]
#[should_panic(expected = "weak oracle detected and minimized as designed")]
fn planted_weak_oracle_self_test() {
    let weak = |cluster: &Cluster| -> Vec<String> {
        use tt_core::DiagJob;
        use tt_sim::NodeId;
        let job: &DiagJob = cluster.job_as(NodeId::new(1)).expect("diag job");
        if job
            .health_log()
            .iter()
            .any(|rec| rec.health.iter().any(|&b| !b))
        {
            vec!["weak: somebody was convicted".into()]
        } else {
            Vec::new()
        }
    };
    let cfg = ExploreConfig {
        budget: 30,
        ..ExploreConfig::default()
    };
    let report = explore_with(&cfg, &[], &weak);
    let cx = report
        .counterexamples
        .first()
        .expect("explorer trips the weak oracle");
    assert_eq!(cx.shrunk.faults.len(), 1, "minimized to one fault");
    assert_eq!(cx.shrunk.faults[0].hits, 1, "minimized to one hit");
    panic!("weak oracle detected and minimized as designed");
}
