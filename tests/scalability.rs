//! Scalability: the paper claims the protocol's "resiliency also scales
//! with the number of available nodes". These tests exercise clusters well
//! beyond the 4-node prototype.

use tt_core::properties::{check_counter_consistency, check_diag_cluster, checkable_rounds};
use tt_core::{DiagJob, ProtocolConfig};
use tt_fault::{AsymmetricDisturbance, Burst, DisturbanceNode, RandomNoise};
use tt_sim::{ClusterBuilder, Nanos, NodeId, RoundIndex, SlotEffect, TraceMode, TxCtx};

fn round_for(n: usize) -> Nanos {
    // Keep slots equal-length: pick a round length divisible by n.
    Nanos::from_nanos(2_500_000 - (2_500_000 % n as u64))
}

fn diag_cluster(
    n: usize,
    pipeline: Box<dyn tt_sim::FaultPipeline>,
    rounds: u64,
) -> tt_sim::Cluster {
    let cfg = ProtocolConfig::builder(n)
        .penalty_threshold(u64::MAX / 2)
        .reward_threshold(u64::MAX / 2)
        .build()
        .unwrap();
    let mut cluster = ClusterBuilder::new(n)
        .round_length(round_for(n))
        .trace_mode(TraceMode::Anomalies)
        .build_with_jobs(|id| Box::new(DiagJob::new(id, cfg.clone())), pipeline);
    cluster.run_rounds(rounds);
    cluster
}

#[test]
fn sixteen_nodes_tolerate_heavy_coincident_faults() {
    // N = 16 tolerates a = 1, s = 2, b = 8: 16 > 2 + 4 + 8 + 1 = 15.
    let mal = |ctx: &TxCtx, _: &mut rand::rngs::StdRng| {
        (ctx.round == RoundIndex::new(10)
            && (ctx.sender == NodeId::new(5) || ctx.sender == NodeId::new(6)))
        .then(|| SlotEffect::SymmetricMalicious {
            payload: bytes::Bytes::from_static(b"\x5A\x5A"),
        })
    };
    let pipeline = DisturbanceNode::new(3)
        .with(AsymmetricDisturbance::new(
            NodeId::new(2),
            RoundIndex::new(10),
            1,
            tt_fault::malicious::AsymmetricTarget::Fixed(vec![12, 13, 14]),
        ))
        .with(mal)
        .with(Burst::in_round(RoundIndex::new(10), 7, 8, 16));
    let total = 30;
    let cluster = diag_cluster(16, Box::new(pipeline), total);
    let all: Vec<NodeId> = NodeId::all(16).collect();
    let report = check_diag_cluster(&cluster, &all, checkable_rounds(total, 3));
    assert!(report.ok(), "{:?}", report.violations);
    assert_eq!(report.rounds_out_of_hypothesis, 0, "within Lemma 2's bound");
    assert!(check_counter_consistency(&cluster, &all).is_empty());
    // All eight burst victims convicted.
    let d: &DiagJob = cluster.job_as(NodeId::new(1)).unwrap();
    let rec = d.health_for(RoundIndex::new(10)).unwrap();
    assert_eq!(rec.health.iter().filter(|&&ok| !ok).count(), 8);
}

#[test]
fn thirty_two_nodes_under_sustained_noise() {
    let pipeline = DisturbanceNode::new(11).with(RandomNoise::everywhere(0.02));
    let total = 60;
    let cluster = diag_cluster(32, Box::new(pipeline), total);
    let all: Vec<NodeId> = NodeId::all(32).collect();
    let report = check_diag_cluster(&cluster, &all, checkable_rounds(total, 3));
    assert!(report.ok(), "{:?}", report.violations);
    assert!(report.rounds_checked > 40, "most rounds in-hypothesis");
    assert!(check_counter_consistency(&cluster, &all).is_empty());
}

#[test]
fn resiliency_bound_scales_with_n() {
    // The same fault mix (a=1, s=1, b=3 in one round) is out of hypothesis
    // at N = 8 (8 > 2+2+3+1 = 8 is false) but inside it at N = 9.
    let mix = |ctx: &TxCtx, _: &mut rand::rngs::StdRng| -> Option<SlotEffect> {
        if ctx.round != RoundIndex::new(10) {
            return None;
        }
        match ctx.sender.get() {
            1 => Some(SlotEffect::Asymmetric {
                detected_by: vec![4],
                collision_ok: true,
            }),
            2 => Some(SlotEffect::SymmetricMalicious {
                payload: bytes::Bytes::from_static(b"\x3C\x3C"),
            }),
            3..=5 => Some(SlotEffect::Benign),
            _ => None,
        }
    };
    for (n, expect_in) in [(8usize, false), (9, true)] {
        let pipeline = DisturbanceNode::new(1).with(mix);
        let total = 24;
        let cluster = diag_cluster(n, Box::new(pipeline), total);
        let all: Vec<NodeId> = NodeId::all(n).collect();
        let report = check_diag_cluster(&cluster, &all, checkable_rounds(total, 3));
        assert!(report.ok(), "n={n}: {:?}", report.violations);
        let round10_checked = report.rounds_out_of_hypothesis == 0;
        assert_eq!(round10_checked, expect_in, "n = {n}");
        if expect_in {
            // With the bound satisfied, the three benign victims are
            // convicted and everyone else acquitted, everywhere.
            let d: &DiagJob = cluster.job_as(NodeId::new(n as u32)).unwrap();
            let rec = d.health_for(RoundIndex::new(10)).unwrap();
            assert!(!rec.health[2] && !rec.health[3] && !rec.health[4]);
            assert!(rec.health[0] && rec.health[1] && rec.health[5]);
        }
    }
}

#[test]
fn large_cluster_long_run_performance_sanity() {
    // 1000 rounds on 32 nodes completes promptly even in debug builds —
    // guards against accidental quadratic blowups in the hot loop.
    let start = std::time::Instant::now();
    let cluster = diag_cluster(32, Box::new(tt_sim::NoFaults), 1_000);
    assert_eq!(cluster.round().as_u64(), 1_000);
    assert!(
        start.elapsed() < std::time::Duration::from_secs(30),
        "took {:?}",
        start.elapsed()
    );
}
