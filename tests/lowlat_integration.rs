//! Integration tests for the Sec. 10 low-latency system-level variant,
//! including agreement with the portable add-on protocol.

use tt_core::lowlat::LowLatCluster;
use tt_core::{DiagJob, ProtocolConfig};
use tt_sim::{ClusterBuilder, NodeId, RoundIndex, SlotEffect, TxCtx};

fn pattern(ctx: &TxCtx) -> SlotEffect {
    // A scattered benign pattern over the first 30 rounds.
    if matches!(ctx.abs_slot, 13 | 14 | 40 | 41 | 42 | 43 | 77 | 99) {
        SlotEffect::Benign
    } else {
        SlotEffect::Correct
    }
}

#[test]
fn lowlat_and_addon_agree_on_verdicts() {
    // The same fault pattern through both variants: per (round, sender)
    // verdicts must be identical; only latency differs.
    let mut lowlat = LowLatCluster::new(4, false, Box::new(pattern));
    lowlat.run_rounds(30);
    let cfg = ProtocolConfig::builder(4)
        .penalty_threshold(u64::MAX / 2)
        .reward_threshold(u64::MAX / 2)
        .build()
        .unwrap();
    let mut addon = ClusterBuilder::new(4).build_with_jobs(
        |id| Box::new(DiagJob::new(id, cfg.clone())),
        Box::new(pattern),
    );
    addon.run_rounds(30);
    let diag: &DiagJob = addon.job_as(NodeId::new(1)).unwrap();
    for rec in diag
        .health_log()
        .iter()
        .filter(|r| r.diagnosed.as_u64() < 25)
    {
        for sender in NodeId::all(4) {
            let v = lowlat
                .verdict_for(NodeId::new(1), rec.diagnosed, sender)
                .unwrap_or_else(|| panic!("missing verdict for {:?}/{sender}", rec.diagnosed));
            assert_eq!(
                v.healthy,
                rec.health[sender.index()],
                "round {:?} sender {sender}",
                rec.diagnosed
            );
        }
    }
}

#[test]
fn lowlat_latency_is_quarter_of_addon() {
    // Single fault: the add-on (conservative alignment) needs 3 rounds of
    // latency; the system-level variant needs 1 round = 4 slots.
    let single = |ctx: &TxCtx| {
        if ctx.round == RoundIndex::new(10) && ctx.sender == NodeId::new(2) {
            SlotEffect::Benign
        } else {
            SlotEffect::Correct
        }
    };
    let mut lowlat = LowLatCluster::new(4, false, Box::new(single));
    lowlat.run_rounds(14);
    let v = lowlat
        .verdict_for(NodeId::new(3), RoundIndex::new(10), NodeId::new(2))
        .unwrap();
    assert_eq!(v.latency_slots(), 4);
    assert!(!v.healthy);
}

#[test]
fn lowlat_membership_latency_two_rounds_for_minority() {
    // A single asymmetric fault (Theorem 2's a <= 1 hypothesis): node 1
    // alone misses node 4's slot in round 6. Its divergent window vote must
    // get it evicted — consistently, everywhere — within two rounds.
    let partition = |ctx: &TxCtx| {
        if ctx.round == RoundIndex::new(6) && ctx.sender == NodeId::new(4) {
            SlotEffect::Asymmetric {
                detected_by: vec![0],
                collision_ok: true,
            }
        } else {
            SlotEffect::Correct
        }
    };
    let mut c = LowLatCluster::new(4, true, Box::new(partition));
    c.run_rounds(12);
    for id in 2..=4u32 {
        let view = c.view(NodeId::new(id));
        assert!(!view.contains(&NodeId::new(1)), "node {id}: {view:?}");
        assert_eq!(view.len(), 3);
        // Eviction time: the fault hits abs slot 27; the verdict lands one
        // round later and the accusation round completes one round after.
        let (installed, _) = c.view_log(NodeId::new(id))[0];
        assert!(installed <= 27 + 2 * 4, "installed at {installed}");
    }
    // Views agree everywhere, including at the evicted node.
    let reference = c.view(NodeId::new(2));
    for id in [1u32, 3, 4] {
        assert_eq!(c.view(NodeId::new(id)), reference, "node {id}");
    }
}

#[test]
fn lowlat_scales_to_larger_clusters() {
    for n in [3usize, 6, 12] {
        let single = move |ctx: &TxCtx| {
            if ctx.round == RoundIndex::new(5) && ctx.sender == NodeId::new(2) {
                SlotEffect::Benign
            } else {
                SlotEffect::Correct
            }
        };
        let mut c = LowLatCluster::new(n, false, Box::new(single));
        c.run_rounds(9);
        for id in NodeId::all(n) {
            let v = c
                .verdict_for(id, RoundIndex::new(5), NodeId::new(2))
                .unwrap();
            assert!(!v.healthy, "n={n}, node {id}");
            assert_eq!(v.latency_slots(), n as u64, "always one round");
        }
    }
}

#[test]
fn lowlat_properties_hold_across_all_burst_classes() {
    // The Sec. 8 burst classes (1 slot, 2 slots, 2 rounds; every start
    // slot), re-run against the Sec. 10 variant and checked by its own
    // per-slot oracles: "all the properties of the protocol are preserved
    // in this variant".
    for len in [1u64, 2, 8] {
        for start in 0..4u64 {
            for seed_round in [6u64, 9, 13] {
                let first = seed_round * 4 + start;
                let burst = move |ctx: &TxCtx| {
                    if (first..first + len).contains(&ctx.abs_slot) {
                        SlotEffect::Benign
                    } else {
                        SlotEffect::Correct
                    }
                };
                let mut c = LowLatCluster::new(4, false, Box::new(burst));
                c.run_rounds(20);
                let violations = c.check_properties();
                assert!(
                    violations.is_empty(),
                    "len {len}, start {start}, round {seed_round}: {violations:?}"
                );
                // Every burst slot convicted with one-round latency.
                for abs in first..first + len {
                    let v = c
                        .verdicts(NodeId::new(1))
                        .iter()
                        .find(|v| v.abs_slot == abs)
                        .expect("decided");
                    assert!(!v.healthy);
                    assert_eq!(v.latency_slots(), 4);
                }
            }
        }
    }
}

#[test]
fn lowlat_oracle_reports_ground_truth() {
    let burst = |ctx: &TxCtx| {
        if ctx.abs_slot == 21 {
            SlotEffect::Benign
        } else {
            SlotEffect::Correct
        }
    };
    let mut c = LowLatCluster::new(4, false, Box::new(burst));
    c.run_rounds(8);
    assert_eq!(c.ground_truth(21), Some(tt_sim::SlotFaultClass::Benign));
    assert_eq!(c.ground_truth(20), Some(tt_sim::SlotFaultClass::Correct));
    assert!(c.check_properties().is_empty());
}
