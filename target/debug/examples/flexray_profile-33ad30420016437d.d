/root/repo/target/debug/examples/flexray_profile-33ad30420016437d.d: crates/bench/../../examples/flexray_profile.rs

/root/repo/target/debug/examples/flexray_profile-33ad30420016437d: crates/bench/../../examples/flexray_profile.rs

crates/bench/../../examples/flexray_profile.rs:
