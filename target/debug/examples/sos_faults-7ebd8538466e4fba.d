/root/repo/target/debug/examples/sos_faults-7ebd8538466e4fba.d: crates/bench/../../examples/sos_faults.rs Cargo.toml

/root/repo/target/debug/examples/libsos_faults-7ebd8538466e4fba.rmeta: crates/bench/../../examples/sos_faults.rs Cargo.toml

crates/bench/../../examples/sos_faults.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
