/root/repo/target/debug/examples/automotive_xbywire-89216423af0f2e79.d: crates/bench/../../examples/automotive_xbywire.rs

/root/repo/target/debug/examples/automotive_xbywire-89216423af0f2e79: crates/bench/../../examples/automotive_xbywire.rs

crates/bench/../../examples/automotive_xbywire.rs:
