/root/repo/target/debug/examples/sos_faults-d579028c53ab822e.d: crates/bench/../../examples/sos_faults.rs

/root/repo/target/debug/examples/sos_faults-d579028c53ab822e: crates/bench/../../examples/sos_faults.rs

crates/bench/../../examples/sos_faults.rs:
