/root/repo/target/debug/examples/mixed_criticality-e907cb12b5e80cbe.d: crates/bench/../../examples/mixed_criticality.rs

/root/repo/target/debug/examples/mixed_criticality-e907cb12b5e80cbe: crates/bench/../../examples/mixed_criticality.rs

crates/bench/../../examples/mixed_criticality.rs:
