/root/repo/target/debug/examples/flexray_profile-3acaf079a69d45f9.d: crates/bench/../../examples/flexray_profile.rs

/root/repo/target/debug/examples/flexray_profile-3acaf079a69d45f9: crates/bench/../../examples/flexray_profile.rs

crates/bench/../../examples/flexray_profile.rs:
