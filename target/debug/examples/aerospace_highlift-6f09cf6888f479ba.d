/root/repo/target/debug/examples/aerospace_highlift-6f09cf6888f479ba.d: crates/bench/../../examples/aerospace_highlift.rs

/root/repo/target/debug/examples/aerospace_highlift-6f09cf6888f479ba: crates/bench/../../examples/aerospace_highlift.rs

crates/bench/../../examples/aerospace_highlift.rs:
