/root/repo/target/debug/examples/aerospace_highlift-f698516096984988.d: crates/bench/../../examples/aerospace_highlift.rs

/root/repo/target/debug/examples/aerospace_highlift-f698516096984988: crates/bench/../../examples/aerospace_highlift.rs

crates/bench/../../examples/aerospace_highlift.rs:
