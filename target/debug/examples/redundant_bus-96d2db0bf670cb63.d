/root/repo/target/debug/examples/redundant_bus-96d2db0bf670cb63.d: crates/bench/../../examples/redundant_bus.rs Cargo.toml

/root/repo/target/debug/examples/libredundant_bus-96d2db0bf670cb63.rmeta: crates/bench/../../examples/redundant_bus.rs Cargo.toml

crates/bench/../../examples/redundant_bus.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
