/root/repo/target/debug/examples/mixed_criticality-b3f3d28bc6456510.d: crates/bench/../../examples/mixed_criticality.rs

/root/repo/target/debug/examples/mixed_criticality-b3f3d28bc6456510: crates/bench/../../examples/mixed_criticality.rs

crates/bench/../../examples/mixed_criticality.rs:
