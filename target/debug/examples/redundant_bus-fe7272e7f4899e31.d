/root/repo/target/debug/examples/redundant_bus-fe7272e7f4899e31.d: crates/bench/../../examples/redundant_bus.rs

/root/repo/target/debug/examples/redundant_bus-fe7272e7f4899e31: crates/bench/../../examples/redundant_bus.rs

crates/bench/../../examples/redundant_bus.rs:
