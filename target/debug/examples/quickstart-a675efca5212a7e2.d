/root/repo/target/debug/examples/quickstart-a675efca5212a7e2.d: crates/bench/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-a675efca5212a7e2.rmeta: crates/bench/../../examples/quickstart.rs Cargo.toml

crates/bench/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
