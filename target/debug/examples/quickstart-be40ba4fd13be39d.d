/root/repo/target/debug/examples/quickstart-be40ba4fd13be39d.d: crates/bench/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-be40ba4fd13be39d: crates/bench/../../examples/quickstart.rs

crates/bench/../../examples/quickstart.rs:
