/root/repo/target/debug/examples/counter_stepping-4d606ed073ebfbfc.d: crates/bench/../../examples/counter_stepping.rs

/root/repo/target/debug/examples/counter_stepping-4d606ed073ebfbfc: crates/bench/../../examples/counter_stepping.rs

crates/bench/../../examples/counter_stepping.rs:
