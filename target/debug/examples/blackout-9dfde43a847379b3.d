/root/repo/target/debug/examples/blackout-9dfde43a847379b3.d: crates/bench/../../examples/blackout.rs

/root/repo/target/debug/examples/blackout-9dfde43a847379b3: crates/bench/../../examples/blackout.rs

crates/bench/../../examples/blackout.rs:
