/root/repo/target/debug/examples/blackout-95ac4ce7b821cb15.d: crates/bench/../../examples/blackout.rs

/root/repo/target/debug/examples/blackout-95ac4ce7b821cb15: crates/bench/../../examples/blackout.rs

crates/bench/../../examples/blackout.rs:
