/root/repo/target/debug/examples/lowlat_variant-8a9652443252eeff.d: crates/bench/../../examples/lowlat_variant.rs Cargo.toml

/root/repo/target/debug/examples/liblowlat_variant-8a9652443252eeff.rmeta: crates/bench/../../examples/lowlat_variant.rs Cargo.toml

crates/bench/../../examples/lowlat_variant.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
