/root/repo/target/debug/examples/filter_comparison-108d229e2e43ed03.d: crates/bench/../../examples/filter_comparison.rs

/root/repo/target/debug/examples/filter_comparison-108d229e2e43ed03: crates/bench/../../examples/filter_comparison.rs

crates/bench/../../examples/filter_comparison.rs:
