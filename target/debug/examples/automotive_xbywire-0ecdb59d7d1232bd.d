/root/repo/target/debug/examples/automotive_xbywire-0ecdb59d7d1232bd.d: crates/bench/../../examples/automotive_xbywire.rs Cargo.toml

/root/repo/target/debug/examples/libautomotive_xbywire-0ecdb59d7d1232bd.rmeta: crates/bench/../../examples/automotive_xbywire.rs Cargo.toml

crates/bench/../../examples/automotive_xbywire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
