/root/repo/target/debug/examples/counter_stepping-e338d814ff1f70d2.d: crates/bench/../../examples/counter_stepping.rs Cargo.toml

/root/repo/target/debug/examples/libcounter_stepping-e338d814ff1f70d2.rmeta: crates/bench/../../examples/counter_stepping.rs Cargo.toml

crates/bench/../../examples/counter_stepping.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
