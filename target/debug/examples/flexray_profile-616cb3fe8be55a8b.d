/root/repo/target/debug/examples/flexray_profile-616cb3fe8be55a8b.d: crates/bench/../../examples/flexray_profile.rs Cargo.toml

/root/repo/target/debug/examples/libflexray_profile-616cb3fe8be55a8b.rmeta: crates/bench/../../examples/flexray_profile.rs Cargo.toml

crates/bench/../../examples/flexray_profile.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
