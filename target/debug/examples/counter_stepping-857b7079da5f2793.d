/root/repo/target/debug/examples/counter_stepping-857b7079da5f2793.d: crates/bench/../../examples/counter_stepping.rs

/root/repo/target/debug/examples/counter_stepping-857b7079da5f2793: crates/bench/../../examples/counter_stepping.rs

crates/bench/../../examples/counter_stepping.rs:
