/root/repo/target/debug/examples/blackout-1cf9b227e451f99c.d: crates/bench/../../examples/blackout.rs Cargo.toml

/root/repo/target/debug/examples/libblackout-1cf9b227e451f99c.rmeta: crates/bench/../../examples/blackout.rs Cargo.toml

crates/bench/../../examples/blackout.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
