/root/repo/target/debug/examples/mixed_criticality-a9e1a0f6cada8e73.d: crates/bench/../../examples/mixed_criticality.rs Cargo.toml

/root/repo/target/debug/examples/libmixed_criticality-a9e1a0f6cada8e73.rmeta: crates/bench/../../examples/mixed_criticality.rs Cargo.toml

crates/bench/../../examples/mixed_criticality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
