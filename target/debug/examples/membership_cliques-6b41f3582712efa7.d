/root/repo/target/debug/examples/membership_cliques-6b41f3582712efa7.d: crates/bench/../../examples/membership_cliques.rs

/root/repo/target/debug/examples/membership_cliques-6b41f3582712efa7: crates/bench/../../examples/membership_cliques.rs

crates/bench/../../examples/membership_cliques.rs:
