/root/repo/target/debug/examples/filter_comparison-da9f222c1433be0a.d: crates/bench/../../examples/filter_comparison.rs Cargo.toml

/root/repo/target/debug/examples/libfilter_comparison-da9f222c1433be0a.rmeta: crates/bench/../../examples/filter_comparison.rs Cargo.toml

crates/bench/../../examples/filter_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
