/root/repo/target/debug/examples/lowlat_variant-43ddfcefe58eac56.d: crates/bench/../../examples/lowlat_variant.rs

/root/repo/target/debug/examples/lowlat_variant-43ddfcefe58eac56: crates/bench/../../examples/lowlat_variant.rs

crates/bench/../../examples/lowlat_variant.rs:
