/root/repo/target/debug/examples/quickstart-3c32d075114bbdc1.d: crates/bench/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-3c32d075114bbdc1: crates/bench/../../examples/quickstart.rs

crates/bench/../../examples/quickstart.rs:
