/root/repo/target/debug/examples/membership_cliques-56a36abdf3650ca5.d: crates/bench/../../examples/membership_cliques.rs Cargo.toml

/root/repo/target/debug/examples/libmembership_cliques-56a36abdf3650ca5.rmeta: crates/bench/../../examples/membership_cliques.rs Cargo.toml

crates/bench/../../examples/membership_cliques.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
