/root/repo/target/debug/examples/automotive_xbywire-89b370de0456fa3a.d: crates/bench/../../examples/automotive_xbywire.rs

/root/repo/target/debug/examples/automotive_xbywire-89b370de0456fa3a: crates/bench/../../examples/automotive_xbywire.rs

crates/bench/../../examples/automotive_xbywire.rs:
