/root/repo/target/debug/examples/filter_comparison-75c7b18db9050cd6.d: crates/bench/../../examples/filter_comparison.rs

/root/repo/target/debug/examples/filter_comparison-75c7b18db9050cd6: crates/bench/../../examples/filter_comparison.rs

crates/bench/../../examples/filter_comparison.rs:
