/root/repo/target/debug/examples/sos_faults-309d64e165a6a98c.d: crates/bench/../../examples/sos_faults.rs

/root/repo/target/debug/examples/sos_faults-309d64e165a6a98c: crates/bench/../../examples/sos_faults.rs

crates/bench/../../examples/sos_faults.rs:
