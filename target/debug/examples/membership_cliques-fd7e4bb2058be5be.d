/root/repo/target/debug/examples/membership_cliques-fd7e4bb2058be5be.d: crates/bench/../../examples/membership_cliques.rs

/root/repo/target/debug/examples/membership_cliques-fd7e4bb2058be5be: crates/bench/../../examples/membership_cliques.rs

crates/bench/../../examples/membership_cliques.rs:
