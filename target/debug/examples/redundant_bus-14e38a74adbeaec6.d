/root/repo/target/debug/examples/redundant_bus-14e38a74adbeaec6.d: crates/bench/../../examples/redundant_bus.rs

/root/repo/target/debug/examples/redundant_bus-14e38a74adbeaec6: crates/bench/../../examples/redundant_bus.rs

crates/bench/../../examples/redundant_bus.rs:
