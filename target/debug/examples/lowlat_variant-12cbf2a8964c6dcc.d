/root/repo/target/debug/examples/lowlat_variant-12cbf2a8964c6dcc.d: crates/bench/../../examples/lowlat_variant.rs

/root/repo/target/debug/examples/lowlat_variant-12cbf2a8964c6dcc: crates/bench/../../examples/lowlat_variant.rs

crates/bench/../../examples/lowlat_variant.rs:
