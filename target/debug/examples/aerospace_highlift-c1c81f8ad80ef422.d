/root/repo/target/debug/examples/aerospace_highlift-c1c81f8ad80ef422.d: crates/bench/../../examples/aerospace_highlift.rs Cargo.toml

/root/repo/target/debug/examples/libaerospace_highlift-c1c81f8ad80ef422.rmeta: crates/bench/../../examples/aerospace_highlift.rs Cargo.toml

crates/bench/../../examples/aerospace_highlift.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
