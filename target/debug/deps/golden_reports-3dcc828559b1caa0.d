/root/repo/target/debug/deps/golden_reports-3dcc828559b1caa0.d: crates/bench/../../tests/golden_reports.rs

/root/repo/target/debug/deps/golden_reports-3dcc828559b1caa0: crates/bench/../../tests/golden_reports.rs

crates/bench/../../tests/golden_reports.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
