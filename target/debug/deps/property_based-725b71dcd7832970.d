/root/repo/target/debug/deps/property_based-725b71dcd7832970.d: crates/bench/../../tests/property_based.rs

/root/repo/target/debug/deps/property_based-725b71dcd7832970: crates/bench/../../tests/property_based.rs

crates/bench/../../tests/property_based.rs:
