/root/repo/target/debug/deps/baseline_comparison-8d7208aa6de4c27e.d: crates/bench/benches/baseline_comparison.rs Cargo.toml

/root/repo/target/debug/deps/libbaseline_comparison-8d7208aa6de4c27e.rmeta: crates/bench/benches/baseline_comparison.rs Cargo.toml

crates/bench/benches/baseline_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
