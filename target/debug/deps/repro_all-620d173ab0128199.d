/root/repo/target/debug/deps/repro_all-620d173ab0128199.d: crates/bench/src/bin/repro_all.rs

/root/repo/target/debug/deps/repro_all-620d173ab0128199: crates/bench/src/bin/repro_all.rs

crates/bench/src/bin/repro_all.rs:
