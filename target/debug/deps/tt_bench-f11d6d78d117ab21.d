/root/repo/target/debug/deps/tt_bench-f11d6d78d117ab21.d: crates/bench/src/lib.rs crates/bench/src/comparison.rs crates/bench/src/experiments.rs crates/bench/src/parallel.rs

/root/repo/target/debug/deps/libtt_bench-f11d6d78d117ab21.rlib: crates/bench/src/lib.rs crates/bench/src/comparison.rs crates/bench/src/experiments.rs crates/bench/src/parallel.rs

/root/repo/target/debug/deps/libtt_bench-f11d6d78d117ab21.rmeta: crates/bench/src/lib.rs crates/bench/src/comparison.rs crates/bench/src/experiments.rs crates/bench/src/parallel.rs

crates/bench/src/lib.rs:
crates/bench/src/comparison.rs:
crates/bench/src/experiments.rs:
crates/bench/src/parallel.rs:
