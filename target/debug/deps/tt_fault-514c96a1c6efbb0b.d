/root/repo/target/debug/deps/tt_fault-514c96a1c6efbb0b.d: crates/fault/src/lib.rs crates/fault/src/bitflip.rs crates/fault/src/burst.rs crates/fault/src/campaign.rs crates/fault/src/injector.rs crates/fault/src/malicious.rs crates/fault/src/noise.rs crates/fault/src/scenario.rs Cargo.toml

/root/repo/target/debug/deps/libtt_fault-514c96a1c6efbb0b.rmeta: crates/fault/src/lib.rs crates/fault/src/bitflip.rs crates/fault/src/burst.rs crates/fault/src/campaign.rs crates/fault/src/injector.rs crates/fault/src/malicious.rs crates/fault/src/noise.rs crates/fault/src/scenario.rs Cargo.toml

crates/fault/src/lib.rs:
crates/fault/src/bitflip.rs:
crates/fault/src/burst.rs:
crates/fault/src/campaign.rs:
crates/fault/src/injector.rs:
crates/fault/src/malicious.rs:
crates/fault/src/noise.rs:
crates/fault/src/scenario.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
