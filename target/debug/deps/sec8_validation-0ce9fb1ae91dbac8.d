/root/repo/target/debug/deps/sec8_validation-0ce9fb1ae91dbac8.d: crates/bench/benches/sec8_validation.rs Cargo.toml

/root/repo/target/debug/deps/libsec8_validation-0ce9fb1ae91dbac8.rmeta: crates/bench/benches/sec8_validation.rs Cargo.toml

crates/bench/benches/sec8_validation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
