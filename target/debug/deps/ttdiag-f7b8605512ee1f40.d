/root/repo/target/debug/deps/ttdiag-f7b8605512ee1f40.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/ttdiag-f7b8605512ee1f40: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
