/root/repo/target/debug/deps/table4-c1aa7c698059e0f4.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-c1aa7c698059e0f4: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
