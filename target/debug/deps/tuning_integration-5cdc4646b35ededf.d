/root/repo/target/debug/deps/tuning_integration-5cdc4646b35ededf.d: crates/bench/../../tests/tuning_integration.rs

/root/repo/target/debug/deps/tuning_integration-5cdc4646b35ededf: crates/bench/../../tests/tuning_integration.rs

crates/bench/../../tests/tuning_integration.rs:
