/root/repo/target/debug/deps/tt_baselines-7a8d7c0b8bb10439.d: crates/baselines/src/lib.rs crates/baselines/src/alpha.rs crates/baselines/src/ttpc.rs

/root/repo/target/debug/deps/tt_baselines-7a8d7c0b8bb10439: crates/baselines/src/lib.rs crates/baselines/src/alpha.rs crates/baselines/src/ttpc.rs

crates/baselines/src/lib.rs:
crates/baselines/src/alpha.rs:
crates/baselines/src/ttpc.rs:
