/root/repo/target/debug/deps/gen_golden-37a228cc67cfe7dd.d: crates/bench/src/bin/gen_golden.rs

/root/repo/target/debug/deps/gen_golden-37a228cc67cfe7dd: crates/bench/src/bin/gen_golden.rs

crates/bench/src/bin/gen_golden.rs:
