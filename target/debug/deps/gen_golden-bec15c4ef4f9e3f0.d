/root/repo/target/debug/deps/gen_golden-bec15c4ef4f9e3f0.d: crates/bench/src/bin/gen_golden.rs Cargo.toml

/root/repo/target/debug/deps/libgen_golden-bec15c4ef4f9e3f0.rmeta: crates/bench/src/bin/gen_golden.rs Cargo.toml

crates/bench/src/bin/gen_golden.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
