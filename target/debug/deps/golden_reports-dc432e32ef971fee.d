/root/repo/target/debug/deps/golden_reports-dc432e32ef971fee.d: crates/bench/../../tests/golden_reports.rs Cargo.toml

/root/repo/target/debug/deps/libgolden_reports-dc432e32ef971fee.rmeta: crates/bench/../../tests/golden_reports.rs Cargo.toml

crates/bench/../../tests/golden_reports.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
