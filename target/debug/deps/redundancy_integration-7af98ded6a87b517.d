/root/repo/target/debug/deps/redundancy_integration-7af98ded6a87b517.d: crates/bench/../../tests/redundancy_integration.rs Cargo.toml

/root/repo/target/debug/deps/libredundancy_integration-7af98ded6a87b517.rmeta: crates/bench/../../tests/redundancy_integration.rs Cargo.toml

crates/bench/../../tests/redundancy_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
