/root/repo/target/debug/deps/tuning_integration-bfd217468464bfca.d: crates/bench/../../tests/tuning_integration.rs Cargo.toml

/root/repo/target/debug/deps/libtuning_integration-bfd217468464bfca.rmeta: crates/bench/../../tests/tuning_integration.rs Cargo.toml

crates/bench/../../tests/tuning_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
