/root/repo/target/debug/deps/validation-ae9c5731bed3ce39.d: crates/bench/src/bin/validation.rs

/root/repo/target/debug/deps/validation-ae9c5731bed3ce39: crates/bench/src/bin/validation.rs

crates/bench/src/bin/validation.rs:
