/root/repo/target/debug/deps/tuning_integration-2ee0cc4c0f05d968.d: crates/bench/../../tests/tuning_integration.rs

/root/repo/target/debug/deps/tuning_integration-2ee0cc4c0f05d968: crates/bench/../../tests/tuning_integration.rs

crates/bench/../../tests/tuning_integration.rs:
