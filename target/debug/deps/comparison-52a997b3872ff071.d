/root/repo/target/debug/deps/comparison-52a997b3872ff071.d: crates/bench/src/bin/comparison.rs

/root/repo/target/debug/deps/comparison-52a997b3872ff071: crates/bench/src/bin/comparison.rs

crates/bench/src/bin/comparison.rs:
