/root/repo/target/debug/deps/table1-f5c12d452a6f6a1a.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-f5c12d452a6f6a1a: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
