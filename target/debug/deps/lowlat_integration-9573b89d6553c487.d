/root/repo/target/debug/deps/lowlat_integration-9573b89d6553c487.d: crates/bench/../../tests/lowlat_integration.rs Cargo.toml

/root/repo/target/debug/deps/liblowlat_integration-9573b89d6553c487.rmeta: crates/bench/../../tests/lowlat_integration.rs Cargo.toml

crates/bench/../../tests/lowlat_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
