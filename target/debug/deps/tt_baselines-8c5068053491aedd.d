/root/repo/target/debug/deps/tt_baselines-8c5068053491aedd.d: crates/baselines/src/lib.rs crates/baselines/src/alpha.rs crates/baselines/src/ttpc.rs

/root/repo/target/debug/deps/libtt_baselines-8c5068053491aedd.rlib: crates/baselines/src/lib.rs crates/baselines/src/alpha.rs crates/baselines/src/ttpc.rs

/root/repo/target/debug/deps/libtt_baselines-8c5068053491aedd.rmeta: crates/baselines/src/lib.rs crates/baselines/src/alpha.rs crates/baselines/src/ttpc.rs

crates/baselines/src/lib.rs:
crates/baselines/src/alpha.rs:
crates/baselines/src/ttpc.rs:
