/root/repo/target/debug/deps/validation-9cc00952fc8f8796.d: crates/bench/src/bin/validation.rs Cargo.toml

/root/repo/target/debug/deps/libvalidation-9cc00952fc8f8796.rmeta: crates/bench/src/bin/validation.rs Cargo.toml

crates/bench/src/bin/validation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
