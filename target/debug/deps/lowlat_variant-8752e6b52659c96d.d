/root/repo/target/debug/deps/lowlat_variant-8752e6b52659c96d.d: crates/bench/benches/lowlat_variant.rs Cargo.toml

/root/repo/target/debug/deps/liblowlat_variant-8752e6b52659c96d.rmeta: crates/bench/benches/lowlat_variant.rs Cargo.toml

crates/bench/benches/lowlat_variant.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
