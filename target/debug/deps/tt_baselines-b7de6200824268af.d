/root/repo/target/debug/deps/tt_baselines-b7de6200824268af.d: crates/baselines/src/lib.rs crates/baselines/src/alpha.rs crates/baselines/src/ttpc.rs

/root/repo/target/debug/deps/tt_baselines-b7de6200824268af: crates/baselines/src/lib.rs crates/baselines/src/alpha.rs crates/baselines/src/ttpc.rs

crates/baselines/src/lib.rs:
crates/baselines/src/alpha.rs:
crates/baselines/src/ttpc.rs:
