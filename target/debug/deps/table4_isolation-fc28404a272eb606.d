/root/repo/target/debug/deps/table4_isolation-fc28404a272eb606.d: crates/bench/benches/table4_isolation.rs

/root/repo/target/debug/deps/table4_isolation-fc28404a272eb606: crates/bench/benches/table4_isolation.rs

crates/bench/benches/table4_isolation.rs:
