/root/repo/target/debug/deps/golden_reports-ce5185db5eb4e4a1.d: crates/bench/../../tests/golden_reports.rs

/root/repo/target/debug/deps/golden_reports-ce5185db5eb4e4a1: crates/bench/../../tests/golden_reports.rs

crates/bench/../../tests/golden_reports.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
