/root/repo/target/debug/deps/table2-03b08cd79240e8bb.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-03b08cd79240e8bb: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
