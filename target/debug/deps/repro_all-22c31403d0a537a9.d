/root/repo/target/debug/deps/repro_all-22c31403d0a537a9.d: crates/bench/src/bin/repro_all.rs

/root/repo/target/debug/deps/repro_all-22c31403d0a537a9: crates/bench/src/bin/repro_all.rs

crates/bench/src/bin/repro_all.rs:
