/root/repo/target/debug/deps/table1_matrix-3cd2f3dee52e7c44.d: crates/bench/benches/table1_matrix.rs

/root/repo/target/debug/deps/table1_matrix-3cd2f3dee52e7c44: crates/bench/benches/table1_matrix.rs

crates/bench/benches/table1_matrix.rs:
