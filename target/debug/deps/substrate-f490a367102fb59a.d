/root/repo/target/debug/deps/substrate-f490a367102fb59a.d: crates/bench/benches/substrate.rs Cargo.toml

/root/repo/target/debug/deps/libsubstrate-f490a367102fb59a.rmeta: crates/bench/benches/substrate.rs Cargo.toml

crates/bench/benches/substrate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
