/root/repo/target/debug/deps/table4_isolation-297ab20fe31c43cc.d: crates/bench/benches/table4_isolation.rs Cargo.toml

/root/repo/target/debug/deps/libtable4_isolation-297ab20fe31c43cc.rmeta: crates/bench/benches/table4_isolation.rs Cargo.toml

crates/bench/benches/table4_isolation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
