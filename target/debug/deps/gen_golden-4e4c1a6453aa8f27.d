/root/repo/target/debug/deps/gen_golden-4e4c1a6453aa8f27.d: crates/bench/src/bin/gen_golden.rs

/root/repo/target/debug/deps/gen_golden-4e4c1a6453aa8f27: crates/bench/src/bin/gen_golden.rs

crates/bench/src/bin/gen_golden.rs:
