/root/repo/target/debug/deps/soak-a268caa75be1a8e4.d: crates/bench/../../tests/soak.rs

/root/repo/target/debug/deps/soak-a268caa75be1a8e4: crates/bench/../../tests/soak.rs

crates/bench/../../tests/soak.rs:
