/root/repo/target/debug/deps/tt_analysis-4c22eedfb54df2e0.d: crates/analysis/src/lib.rs crates/analysis/src/availability.rs crates/analysis/src/chart.rs crates/analysis/src/correlation.rs crates/analysis/src/isolation.rs crates/analysis/src/report.rs crates/analysis/src/sensitivity.rs crates/analysis/src/stats.rs crates/analysis/src/table.rs crates/analysis/src/tuning.rs

/root/repo/target/debug/deps/tt_analysis-4c22eedfb54df2e0: crates/analysis/src/lib.rs crates/analysis/src/availability.rs crates/analysis/src/chart.rs crates/analysis/src/correlation.rs crates/analysis/src/isolation.rs crates/analysis/src/report.rs crates/analysis/src/sensitivity.rs crates/analysis/src/stats.rs crates/analysis/src/table.rs crates/analysis/src/tuning.rs

crates/analysis/src/lib.rs:
crates/analysis/src/availability.rs:
crates/analysis/src/chart.rs:
crates/analysis/src/correlation.rs:
crates/analysis/src/isolation.rs:
crates/analysis/src/report.rs:
crates/analysis/src/sensitivity.rs:
crates/analysis/src/stats.rs:
crates/analysis/src/table.rs:
crates/analysis/src/tuning.rs:
