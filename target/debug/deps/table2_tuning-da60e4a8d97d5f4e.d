/root/repo/target/debug/deps/table2_tuning-da60e4a8d97d5f4e.d: crates/bench/benches/table2_tuning.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_tuning-da60e4a8d97d5f4e.rmeta: crates/bench/benches/table2_tuning.rs Cargo.toml

crates/bench/benches/table2_tuning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
