/root/repo/target/debug/deps/replay_integration-a28b0ff6db037616.d: crates/bench/../../tests/replay_integration.rs Cargo.toml

/root/repo/target/debug/deps/libreplay_integration-a28b0ff6db037616.rmeta: crates/bench/../../tests/replay_integration.rs Cargo.toml

crates/bench/../../tests/replay_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
