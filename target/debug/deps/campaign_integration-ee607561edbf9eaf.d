/root/repo/target/debug/deps/campaign_integration-ee607561edbf9eaf.d: crates/bench/../../tests/campaign_integration.rs Cargo.toml

/root/repo/target/debug/deps/libcampaign_integration-ee607561edbf9eaf.rmeta: crates/bench/../../tests/campaign_integration.rs Cargo.toml

crates/bench/../../tests/campaign_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
