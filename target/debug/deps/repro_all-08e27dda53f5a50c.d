/root/repo/target/debug/deps/repro_all-08e27dda53f5a50c.d: crates/bench/src/bin/repro_all.rs

/root/repo/target/debug/deps/repro_all-08e27dda53f5a50c: crates/bench/src/bin/repro_all.rs

crates/bench/src/bin/repro_all.rs:
