/root/repo/target/debug/deps/baselines_integration-98986e18756ac672.d: crates/bench/../../tests/baselines_integration.rs

/root/repo/target/debug/deps/baselines_integration-98986e18756ac672: crates/bench/../../tests/baselines_integration.rs

crates/bench/../../tests/baselines_integration.rs:
