/root/repo/target/debug/deps/gen_golden-0fcebb88846825e1.d: crates/bench/src/bin/gen_golden.rs

/root/repo/target/debug/deps/gen_golden-0fcebb88846825e1: crates/bench/src/bin/gen_golden.rs

crates/bench/src/bin/gen_golden.rs:
