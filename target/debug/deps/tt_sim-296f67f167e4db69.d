/root/repo/target/debug/deps/tt_sim-296f67f167e4db69.d: crates/sim/src/lib.rs crates/sim/src/bus.rs crates/sim/src/channels.rs crates/sim/src/clock.rs crates/sim/src/controller.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/frame.rs crates/sim/src/job.rs crates/sim/src/node.rs crates/sim/src/schedule.rs crates/sim/src/time.rs crates/sim/src/timeline.rs crates/sim/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libtt_sim-296f67f167e4db69.rmeta: crates/sim/src/lib.rs crates/sim/src/bus.rs crates/sim/src/channels.rs crates/sim/src/clock.rs crates/sim/src/controller.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/frame.rs crates/sim/src/job.rs crates/sim/src/node.rs crates/sim/src/schedule.rs crates/sim/src/time.rs crates/sim/src/timeline.rs crates/sim/src/trace.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/bus.rs:
crates/sim/src/channels.rs:
crates/sim/src/clock.rs:
crates/sim/src/controller.rs:
crates/sim/src/engine.rs:
crates/sim/src/error.rs:
crates/sim/src/frame.rs:
crates/sim/src/job.rs:
crates/sim/src/node.rs:
crates/sim/src/schedule.rs:
crates/sim/src/time.rs:
crates/sim/src/timeline.rs:
crates/sim/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
