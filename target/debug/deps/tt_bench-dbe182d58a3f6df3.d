/root/repo/target/debug/deps/tt_bench-dbe182d58a3f6df3.d: crates/bench/src/lib.rs crates/bench/src/comparison.rs crates/bench/src/experiments.rs crates/bench/src/parallel.rs

/root/repo/target/debug/deps/tt_bench-dbe182d58a3f6df3: crates/bench/src/lib.rs crates/bench/src/comparison.rs crates/bench/src/experiments.rs crates/bench/src/parallel.rs

crates/bench/src/lib.rs:
crates/bench/src/comparison.rs:
crates/bench/src/experiments.rs:
crates/bench/src/parallel.rs:
