/root/repo/target/debug/deps/ablations-044b6ef0f42d2be5.d: crates/bench/benches/ablations.rs

/root/repo/target/debug/deps/ablations-044b6ef0f42d2be5: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:
