/root/repo/target/debug/deps/redundancy_integration-88d0ea7911616508.d: crates/bench/../../tests/redundancy_integration.rs

/root/repo/target/debug/deps/redundancy_integration-88d0ea7911616508: crates/bench/../../tests/redundancy_integration.rs

crates/bench/../../tests/redundancy_integration.rs:
