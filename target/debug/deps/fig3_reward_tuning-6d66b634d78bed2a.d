/root/repo/target/debug/deps/fig3_reward_tuning-6d66b634d78bed2a.d: crates/bench/benches/fig3_reward_tuning.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_reward_tuning-6d66b634d78bed2a.rmeta: crates/bench/benches/fig3_reward_tuning.rs Cargo.toml

crates/bench/benches/fig3_reward_tuning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
