/root/repo/target/debug/deps/comparison-2a3cdaa2cb505e48.d: crates/bench/src/bin/comparison.rs

/root/repo/target/debug/deps/comparison-2a3cdaa2cb505e48: crates/bench/src/bin/comparison.rs

crates/bench/src/bin/comparison.rs:
