/root/repo/target/debug/deps/baseline_comparison-b23268995dec63ea.d: crates/bench/benches/baseline_comparison.rs

/root/repo/target/debug/deps/baseline_comparison-b23268995dec63ea: crates/bench/benches/baseline_comparison.rs

crates/bench/benches/baseline_comparison.rs:
