/root/repo/target/debug/deps/exhaustive_small_worlds-defa815d20ec61c1.d: crates/bench/../../tests/exhaustive_small_worlds.rs

/root/repo/target/debug/deps/exhaustive_small_worlds-defa815d20ec61c1: crates/bench/../../tests/exhaustive_small_worlds.rs

crates/bench/../../tests/exhaustive_small_worlds.rs:
