/root/repo/target/debug/deps/fig3-d09c9dc17b457ae3.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-d09c9dc17b457ae3: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
