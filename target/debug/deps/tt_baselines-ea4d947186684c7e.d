/root/repo/target/debug/deps/tt_baselines-ea4d947186684c7e.d: crates/baselines/src/lib.rs crates/baselines/src/alpha.rs crates/baselines/src/ttpc.rs

/root/repo/target/debug/deps/libtt_baselines-ea4d947186684c7e.rlib: crates/baselines/src/lib.rs crates/baselines/src/alpha.rs crates/baselines/src/ttpc.rs

/root/repo/target/debug/deps/libtt_baselines-ea4d947186684c7e.rmeta: crates/baselines/src/lib.rs crates/baselines/src/alpha.rs crates/baselines/src/ttpc.rs

crates/baselines/src/lib.rs:
crates/baselines/src/alpha.rs:
crates/baselines/src/ttpc.rs:
