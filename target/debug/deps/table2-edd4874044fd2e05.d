/root/repo/target/debug/deps/table2-edd4874044fd2e05.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-edd4874044fd2e05: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
