/root/repo/target/debug/deps/repro_all-f97c0ee7344769cb.d: crates/bench/src/bin/repro_all.rs

/root/repo/target/debug/deps/repro_all-f97c0ee7344769cb: crates/bench/src/bin/repro_all.rs

crates/bench/src/bin/repro_all.rs:
