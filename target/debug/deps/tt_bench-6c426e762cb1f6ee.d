/root/repo/target/debug/deps/tt_bench-6c426e762cb1f6ee.d: crates/bench/src/lib.rs crates/bench/src/comparison.rs crates/bench/src/experiments.rs crates/bench/src/parallel.rs

/root/repo/target/debug/deps/tt_bench-6c426e762cb1f6ee: crates/bench/src/lib.rs crates/bench/src/comparison.rs crates/bench/src/experiments.rs crates/bench/src/parallel.rs

crates/bench/src/lib.rs:
crates/bench/src/comparison.rs:
crates/bench/src/experiments.rs:
crates/bench/src/parallel.rs:
