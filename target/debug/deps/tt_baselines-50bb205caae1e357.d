/root/repo/target/debug/deps/tt_baselines-50bb205caae1e357.d: crates/baselines/src/lib.rs crates/baselines/src/alpha.rs crates/baselines/src/ttpc.rs Cargo.toml

/root/repo/target/debug/deps/libtt_baselines-50bb205caae1e357.rmeta: crates/baselines/src/lib.rs crates/baselines/src/alpha.rs crates/baselines/src/ttpc.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/alpha.rs:
crates/baselines/src/ttpc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
