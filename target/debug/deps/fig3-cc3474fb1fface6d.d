/root/repo/target/debug/deps/fig3-cc3474fb1fface6d.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-cc3474fb1fface6d: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
