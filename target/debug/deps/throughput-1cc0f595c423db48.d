/root/repo/target/debug/deps/throughput-1cc0f595c423db48.d: crates/bench/src/bin/throughput.rs

/root/repo/target/debug/deps/throughput-1cc0f595c423db48: crates/bench/src/bin/throughput.rs

crates/bench/src/bin/throughput.rs:
