/root/repo/target/debug/deps/serde_roundtrips-62d1082bf354017d.d: crates/bench/../../tests/serde_roundtrips.rs

/root/repo/target/debug/deps/serde_roundtrips-62d1082bf354017d: crates/bench/../../tests/serde_roundtrips.rs

crates/bench/../../tests/serde_roundtrips.rs:
