/root/repo/target/debug/deps/tt_baselines-a0d597aea7b0ae5c.d: crates/baselines/src/lib.rs crates/baselines/src/alpha.rs crates/baselines/src/ttpc.rs Cargo.toml

/root/repo/target/debug/deps/libtt_baselines-a0d597aea7b0ae5c.rmeta: crates/baselines/src/lib.rs crates/baselines/src/alpha.rs crates/baselines/src/ttpc.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/alpha.rs:
crates/baselines/src/ttpc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
