/root/repo/target/debug/deps/campaign_integration-2fdffe186a099b35.d: crates/bench/../../tests/campaign_integration.rs

/root/repo/target/debug/deps/campaign_integration-2fdffe186a099b35: crates/bench/../../tests/campaign_integration.rs

crates/bench/../../tests/campaign_integration.rs:
