/root/repo/target/debug/deps/lowlat_integration-151f57f282520284.d: crates/bench/../../tests/lowlat_integration.rs

/root/repo/target/debug/deps/lowlat_integration-151f57f282520284: crates/bench/../../tests/lowlat_integration.rs

crates/bench/../../tests/lowlat_integration.rs:
