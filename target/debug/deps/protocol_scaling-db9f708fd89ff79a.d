/root/repo/target/debug/deps/protocol_scaling-db9f708fd89ff79a.d: crates/bench/benches/protocol_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libprotocol_scaling-db9f708fd89ff79a.rmeta: crates/bench/benches/protocol_scaling.rs Cargo.toml

crates/bench/benches/protocol_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
