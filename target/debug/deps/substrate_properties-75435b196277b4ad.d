/root/repo/target/debug/deps/substrate_properties-75435b196277b4ad.d: crates/bench/../../tests/substrate_properties.rs Cargo.toml

/root/repo/target/debug/deps/libsubstrate_properties-75435b196277b4ad.rmeta: crates/bench/../../tests/substrate_properties.rs Cargo.toml

crates/bench/../../tests/substrate_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
