/root/repo/target/debug/deps/table2_tuning-0e94857be0a0d5c5.d: crates/bench/benches/table2_tuning.rs

/root/repo/target/debug/deps/table2_tuning-0e94857be0a0d5c5: crates/bench/benches/table2_tuning.rs

crates/bench/benches/table2_tuning.rs:
