/root/repo/target/debug/deps/scalability-c433d98a239c6707.d: crates/bench/../../tests/scalability.rs

/root/repo/target/debug/deps/scalability-c433d98a239c6707: crates/bench/../../tests/scalability.rs

crates/bench/../../tests/scalability.rs:
