/root/repo/target/debug/deps/ttdiag-ca67af29b198c39c.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/ttdiag-ca67af29b198c39c: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
