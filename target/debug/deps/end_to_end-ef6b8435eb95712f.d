/root/repo/target/debug/deps/end_to_end-ef6b8435eb95712f.d: crates/bench/../../tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-ef6b8435eb95712f: crates/bench/../../tests/end_to_end.rs

crates/bench/../../tests/end_to_end.rs:
