/root/repo/target/debug/deps/dynamic_scheduling-1c23191bf8a6db2d.d: crates/bench/../../tests/dynamic_scheduling.rs

/root/repo/target/debug/deps/dynamic_scheduling-1c23191bf8a6db2d: crates/bench/../../tests/dynamic_scheduling.rs

crates/bench/../../tests/dynamic_scheduling.rs:
