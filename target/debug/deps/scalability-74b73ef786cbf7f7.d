/root/repo/target/debug/deps/scalability-74b73ef786cbf7f7.d: crates/bench/../../tests/scalability.rs

/root/repo/target/debug/deps/scalability-74b73ef786cbf7f7: crates/bench/../../tests/scalability.rs

crates/bench/../../tests/scalability.rs:
