/root/repo/target/debug/deps/table1_matrix-85f4b4d386f765c9.d: crates/bench/benches/table1_matrix.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_matrix-85f4b4d386f765c9.rmeta: crates/bench/benches/table1_matrix.rs Cargo.toml

crates/bench/benches/table1_matrix.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
