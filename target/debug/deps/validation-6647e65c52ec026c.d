/root/repo/target/debug/deps/validation-6647e65c52ec026c.d: crates/bench/src/bin/validation.rs

/root/repo/target/debug/deps/validation-6647e65c52ec026c: crates/bench/src/bin/validation.rs

crates/bench/src/bin/validation.rs:
