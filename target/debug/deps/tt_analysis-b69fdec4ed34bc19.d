/root/repo/target/debug/deps/tt_analysis-b69fdec4ed34bc19.d: crates/analysis/src/lib.rs crates/analysis/src/availability.rs crates/analysis/src/chart.rs crates/analysis/src/correlation.rs crates/analysis/src/isolation.rs crates/analysis/src/report.rs crates/analysis/src/sensitivity.rs crates/analysis/src/stats.rs crates/analysis/src/table.rs crates/analysis/src/tuning.rs Cargo.toml

/root/repo/target/debug/deps/libtt_analysis-b69fdec4ed34bc19.rmeta: crates/analysis/src/lib.rs crates/analysis/src/availability.rs crates/analysis/src/chart.rs crates/analysis/src/correlation.rs crates/analysis/src/isolation.rs crates/analysis/src/report.rs crates/analysis/src/sensitivity.rs crates/analysis/src/stats.rs crates/analysis/src/table.rs crates/analysis/src/tuning.rs Cargo.toml

crates/analysis/src/lib.rs:
crates/analysis/src/availability.rs:
crates/analysis/src/chart.rs:
crates/analysis/src/correlation.rs:
crates/analysis/src/isolation.rs:
crates/analysis/src/report.rs:
crates/analysis/src/sensitivity.rs:
crates/analysis/src/stats.rs:
crates/analysis/src/table.rs:
crates/analysis/src/tuning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
