/root/repo/target/debug/deps/tt_core-d889b98967ba46a7.d: crates/core/src/lib.rs crates/core/src/alignment.rs crates/core/src/bandwidth.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/lowlat.rs crates/core/src/matrix.rs crates/core/src/membership.rs crates/core/src/penalty.rs crates/core/src/pipeline.rs crates/core/src/properties.rs crates/core/src/protocol.rs crates/core/src/syndrome.rs crates/core/src/voting.rs

/root/repo/target/debug/deps/libtt_core-d889b98967ba46a7.rlib: crates/core/src/lib.rs crates/core/src/alignment.rs crates/core/src/bandwidth.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/lowlat.rs crates/core/src/matrix.rs crates/core/src/membership.rs crates/core/src/penalty.rs crates/core/src/pipeline.rs crates/core/src/properties.rs crates/core/src/protocol.rs crates/core/src/syndrome.rs crates/core/src/voting.rs

/root/repo/target/debug/deps/libtt_core-d889b98967ba46a7.rmeta: crates/core/src/lib.rs crates/core/src/alignment.rs crates/core/src/bandwidth.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/lowlat.rs crates/core/src/matrix.rs crates/core/src/membership.rs crates/core/src/penalty.rs crates/core/src/pipeline.rs crates/core/src/properties.rs crates/core/src/protocol.rs crates/core/src/syndrome.rs crates/core/src/voting.rs

crates/core/src/lib.rs:
crates/core/src/alignment.rs:
crates/core/src/bandwidth.rs:
crates/core/src/config.rs:
crates/core/src/error.rs:
crates/core/src/lowlat.rs:
crates/core/src/matrix.rs:
crates/core/src/membership.rs:
crates/core/src/penalty.rs:
crates/core/src/pipeline.rs:
crates/core/src/properties.rs:
crates/core/src/protocol.rs:
crates/core/src/syndrome.rs:
crates/core/src/voting.rs:
