/root/repo/target/debug/deps/lowlat_integration-14c89fba4816953a.d: crates/bench/../../tests/lowlat_integration.rs

/root/repo/target/debug/deps/lowlat_integration-14c89fba4816953a: crates/bench/../../tests/lowlat_integration.rs

crates/bench/../../tests/lowlat_integration.rs:
