/root/repo/target/debug/deps/property_based-55d9640a5210fdf7.d: crates/bench/../../tests/property_based.rs Cargo.toml

/root/repo/target/debug/deps/libproperty_based-55d9640a5210fdf7.rmeta: crates/bench/../../tests/property_based.rs Cargo.toml

crates/bench/../../tests/property_based.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
