/root/repo/target/debug/deps/dynamic_scheduling-115944f8e7032e97.d: crates/bench/../../tests/dynamic_scheduling.rs

/root/repo/target/debug/deps/dynamic_scheduling-115944f8e7032e97: crates/bench/../../tests/dynamic_scheduling.rs

crates/bench/../../tests/dynamic_scheduling.rs:
