/root/repo/target/debug/deps/sec8_validation-f952180d4ce12ddf.d: crates/bench/benches/sec8_validation.rs

/root/repo/target/debug/deps/sec8_validation-f952180d4ce12ddf: crates/bench/benches/sec8_validation.rs

crates/bench/benches/sec8_validation.rs:
