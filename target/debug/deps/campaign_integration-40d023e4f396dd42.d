/root/repo/target/debug/deps/campaign_integration-40d023e4f396dd42.d: crates/bench/../../tests/campaign_integration.rs

/root/repo/target/debug/deps/campaign_integration-40d023e4f396dd42: crates/bench/../../tests/campaign_integration.rs

crates/bench/../../tests/campaign_integration.rs:
