/root/repo/target/debug/deps/tt_bench-b79924a38ac07662.d: crates/bench/src/lib.rs crates/bench/src/comparison.rs crates/bench/src/experiments.rs crates/bench/src/parallel.rs Cargo.toml

/root/repo/target/debug/deps/libtt_bench-b79924a38ac07662.rmeta: crates/bench/src/lib.rs crates/bench/src/comparison.rs crates/bench/src/experiments.rs crates/bench/src/parallel.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/comparison.rs:
crates/bench/src/experiments.rs:
crates/bench/src/parallel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
