/root/repo/target/debug/deps/tt_bench-cd3af72e92d8e804.d: crates/bench/src/lib.rs crates/bench/src/comparison.rs crates/bench/src/experiments.rs crates/bench/src/parallel.rs

/root/repo/target/debug/deps/libtt_bench-cd3af72e92d8e804.rlib: crates/bench/src/lib.rs crates/bench/src/comparison.rs crates/bench/src/experiments.rs crates/bench/src/parallel.rs

/root/repo/target/debug/deps/libtt_bench-cd3af72e92d8e804.rmeta: crates/bench/src/lib.rs crates/bench/src/comparison.rs crates/bench/src/experiments.rs crates/bench/src/parallel.rs

crates/bench/src/lib.rs:
crates/bench/src/comparison.rs:
crates/bench/src/experiments.rs:
crates/bench/src/parallel.rs:
