/root/repo/target/debug/deps/gen_golden-2bd6b75da12ac7f3.d: crates/bench/src/bin/gen_golden.rs Cargo.toml

/root/repo/target/debug/deps/libgen_golden-2bd6b75da12ac7f3.rmeta: crates/bench/src/bin/gen_golden.rs Cargo.toml

crates/bench/src/bin/gen_golden.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
