/root/repo/target/debug/deps/clock_integration-c951cc594edc2108.d: crates/bench/../../tests/clock_integration.rs

/root/repo/target/debug/deps/clock_integration-c951cc594edc2108: crates/bench/../../tests/clock_integration.rs

crates/bench/../../tests/clock_integration.rs:
