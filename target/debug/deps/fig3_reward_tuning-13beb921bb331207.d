/root/repo/target/debug/deps/fig3_reward_tuning-13beb921bb331207.d: crates/bench/benches/fig3_reward_tuning.rs

/root/repo/target/debug/deps/fig3_reward_tuning-13beb921bb331207: crates/bench/benches/fig3_reward_tuning.rs

crates/bench/benches/fig3_reward_tuning.rs:
