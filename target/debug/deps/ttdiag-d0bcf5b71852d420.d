/root/repo/target/debug/deps/ttdiag-d0bcf5b71852d420.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/ttdiag-d0bcf5b71852d420: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
