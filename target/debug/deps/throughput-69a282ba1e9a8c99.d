/root/repo/target/debug/deps/throughput-69a282ba1e9a8c99.d: crates/bench/src/bin/throughput.rs

/root/repo/target/debug/deps/throughput-69a282ba1e9a8c99: crates/bench/src/bin/throughput.rs

crates/bench/src/bin/throughput.rs:
