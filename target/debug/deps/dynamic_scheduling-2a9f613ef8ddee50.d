/root/repo/target/debug/deps/dynamic_scheduling-2a9f613ef8ddee50.d: crates/bench/../../tests/dynamic_scheduling.rs Cargo.toml

/root/repo/target/debug/deps/libdynamic_scheduling-2a9f613ef8ddee50.rmeta: crates/bench/../../tests/dynamic_scheduling.rs Cargo.toml

crates/bench/../../tests/dynamic_scheduling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
