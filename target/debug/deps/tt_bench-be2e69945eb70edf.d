/root/repo/target/debug/deps/tt_bench-be2e69945eb70edf.d: crates/bench/src/lib.rs crates/bench/src/comparison.rs crates/bench/src/experiments.rs crates/bench/src/parallel.rs Cargo.toml

/root/repo/target/debug/deps/libtt_bench-be2e69945eb70edf.rmeta: crates/bench/src/lib.rs crates/bench/src/comparison.rs crates/bench/src/experiments.rs crates/bench/src/parallel.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/comparison.rs:
crates/bench/src/experiments.rs:
crates/bench/src/parallel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
