/root/repo/target/debug/deps/baselines_integration-02455b2f7dbf0383.d: crates/bench/../../tests/baselines_integration.rs Cargo.toml

/root/repo/target/debug/deps/libbaselines_integration-02455b2f7dbf0383.rmeta: crates/bench/../../tests/baselines_integration.rs Cargo.toml

crates/bench/../../tests/baselines_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
