/root/repo/target/debug/deps/throughput-9802f4ab6bac1b74.d: crates/bench/src/bin/throughput.rs

/root/repo/target/debug/deps/throughput-9802f4ab6bac1b74: crates/bench/src/bin/throughput.rs

crates/bench/src/bin/throughput.rs:
