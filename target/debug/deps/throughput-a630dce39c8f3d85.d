/root/repo/target/debug/deps/throughput-a630dce39c8f3d85.d: crates/bench/src/bin/throughput.rs

/root/repo/target/debug/deps/throughput-a630dce39c8f3d85: crates/bench/src/bin/throughput.rs

crates/bench/src/bin/throughput.rs:
