/root/repo/target/debug/deps/alloc_free-65362812a807571c.d: crates/bench/../../tests/alloc_free.rs

/root/repo/target/debug/deps/alloc_free-65362812a807571c: crates/bench/../../tests/alloc_free.rs

crates/bench/../../tests/alloc_free.rs:
