/root/repo/target/debug/deps/table1-bcfff5eda1d01815.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-bcfff5eda1d01815: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
