/root/repo/target/debug/deps/substrate_properties-39610a4445aaf7e0.d: crates/bench/../../tests/substrate_properties.rs

/root/repo/target/debug/deps/substrate_properties-39610a4445aaf7e0: crates/bench/../../tests/substrate_properties.rs

crates/bench/../../tests/substrate_properties.rs:
