/root/repo/target/debug/deps/table2-73239585c7105fc5.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-73239585c7105fc5: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
