/root/repo/target/debug/deps/table2-b2657708d9beb377.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-b2657708d9beb377: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
