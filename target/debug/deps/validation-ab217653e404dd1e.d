/root/repo/target/debug/deps/validation-ab217653e404dd1e.d: crates/bench/src/bin/validation.rs

/root/repo/target/debug/deps/validation-ab217653e404dd1e: crates/bench/src/bin/validation.rs

crates/bench/src/bin/validation.rs:
