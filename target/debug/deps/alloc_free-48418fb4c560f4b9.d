/root/repo/target/debug/deps/alloc_free-48418fb4c560f4b9.d: crates/bench/../../tests/alloc_free.rs

/root/repo/target/debug/deps/alloc_free-48418fb4c560f4b9: crates/bench/../../tests/alloc_free.rs

crates/bench/../../tests/alloc_free.rs:
