/root/repo/target/debug/deps/soak-d5fa4b714d070c79.d: crates/bench/../../tests/soak.rs

/root/repo/target/debug/deps/soak-d5fa4b714d070c79: crates/bench/../../tests/soak.rs

crates/bench/../../tests/soak.rs:
