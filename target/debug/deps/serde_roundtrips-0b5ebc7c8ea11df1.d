/root/repo/target/debug/deps/serde_roundtrips-0b5ebc7c8ea11df1.d: crates/bench/../../tests/serde_roundtrips.rs Cargo.toml

/root/repo/target/debug/deps/libserde_roundtrips-0b5ebc7c8ea11df1.rmeta: crates/bench/../../tests/serde_roundtrips.rs Cargo.toml

crates/bench/../../tests/serde_roundtrips.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
