/root/repo/target/debug/deps/soak-a58a66f76b9d4a90.d: crates/bench/../../tests/soak.rs Cargo.toml

/root/repo/target/debug/deps/libsoak-a58a66f76b9d4a90.rmeta: crates/bench/../../tests/soak.rs Cargo.toml

crates/bench/../../tests/soak.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
