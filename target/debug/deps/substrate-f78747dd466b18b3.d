/root/repo/target/debug/deps/substrate-f78747dd466b18b3.d: crates/bench/benches/substrate.rs

/root/repo/target/debug/deps/substrate-f78747dd466b18b3: crates/bench/benches/substrate.rs

crates/bench/benches/substrate.rs:
