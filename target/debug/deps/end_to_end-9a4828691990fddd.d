/root/repo/target/debug/deps/end_to_end-9a4828691990fddd.d: crates/bench/../../tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-9a4828691990fddd: crates/bench/../../tests/end_to_end.rs

crates/bench/../../tests/end_to_end.rs:
