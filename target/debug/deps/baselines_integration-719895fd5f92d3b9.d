/root/repo/target/debug/deps/baselines_integration-719895fd5f92d3b9.d: crates/bench/../../tests/baselines_integration.rs

/root/repo/target/debug/deps/baselines_integration-719895fd5f92d3b9: crates/bench/../../tests/baselines_integration.rs

crates/bench/../../tests/baselines_integration.rs:
