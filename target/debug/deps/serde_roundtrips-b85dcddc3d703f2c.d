/root/repo/target/debug/deps/serde_roundtrips-b85dcddc3d703f2c.d: crates/bench/../../tests/serde_roundtrips.rs

/root/repo/target/debug/deps/serde_roundtrips-b85dcddc3d703f2c: crates/bench/../../tests/serde_roundtrips.rs

crates/bench/../../tests/serde_roundtrips.rs:
