/root/repo/target/debug/deps/table4-6516d46ad112f730.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-6516d46ad112f730: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
