/root/repo/target/debug/deps/comparison-ca05e8d2f848c72d.d: crates/bench/src/bin/comparison.rs

/root/repo/target/debug/deps/comparison-ca05e8d2f848c72d: crates/bench/src/bin/comparison.rs

crates/bench/src/bin/comparison.rs:
