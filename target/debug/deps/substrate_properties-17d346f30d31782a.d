/root/repo/target/debug/deps/substrate_properties-17d346f30d31782a.d: crates/bench/../../tests/substrate_properties.rs

/root/repo/target/debug/deps/substrate_properties-17d346f30d31782a: crates/bench/../../tests/substrate_properties.rs

crates/bench/../../tests/substrate_properties.rs:
