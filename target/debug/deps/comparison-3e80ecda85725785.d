/root/repo/target/debug/deps/comparison-3e80ecda85725785.d: crates/bench/src/bin/comparison.rs

/root/repo/target/debug/deps/comparison-3e80ecda85725785: crates/bench/src/bin/comparison.rs

crates/bench/src/bin/comparison.rs:
