/root/repo/target/debug/deps/tt_core-436c43c50bb1c95e.d: crates/core/src/lib.rs crates/core/src/alignment.rs crates/core/src/bandwidth.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/lowlat.rs crates/core/src/matrix.rs crates/core/src/membership.rs crates/core/src/penalty.rs crates/core/src/pipeline.rs crates/core/src/properties.rs crates/core/src/protocol.rs crates/core/src/syndrome.rs crates/core/src/voting.rs Cargo.toml

/root/repo/target/debug/deps/libtt_core-436c43c50bb1c95e.rmeta: crates/core/src/lib.rs crates/core/src/alignment.rs crates/core/src/bandwidth.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/lowlat.rs crates/core/src/matrix.rs crates/core/src/membership.rs crates/core/src/penalty.rs crates/core/src/pipeline.rs crates/core/src/properties.rs crates/core/src/protocol.rs crates/core/src/syndrome.rs crates/core/src/voting.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/alignment.rs:
crates/core/src/bandwidth.rs:
crates/core/src/config.rs:
crates/core/src/error.rs:
crates/core/src/lowlat.rs:
crates/core/src/matrix.rs:
crates/core/src/membership.rs:
crates/core/src/penalty.rs:
crates/core/src/pipeline.rs:
crates/core/src/properties.rs:
crates/core/src/protocol.rs:
crates/core/src/syndrome.rs:
crates/core/src/voting.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
