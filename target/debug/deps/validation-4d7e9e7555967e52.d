/root/repo/target/debug/deps/validation-4d7e9e7555967e52.d: crates/bench/src/bin/validation.rs Cargo.toml

/root/repo/target/debug/deps/libvalidation-4d7e9e7555967e52.rmeta: crates/bench/src/bin/validation.rs Cargo.toml

crates/bench/src/bin/validation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
