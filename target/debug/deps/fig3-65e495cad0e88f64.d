/root/repo/target/debug/deps/fig3-65e495cad0e88f64.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-65e495cad0e88f64: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
