/root/repo/target/debug/deps/tt_fault-6a64c26f82087815.d: crates/fault/src/lib.rs crates/fault/src/bitflip.rs crates/fault/src/burst.rs crates/fault/src/campaign.rs crates/fault/src/injector.rs crates/fault/src/malicious.rs crates/fault/src/noise.rs crates/fault/src/scenario.rs

/root/repo/target/debug/deps/tt_fault-6a64c26f82087815: crates/fault/src/lib.rs crates/fault/src/bitflip.rs crates/fault/src/burst.rs crates/fault/src/campaign.rs crates/fault/src/injector.rs crates/fault/src/malicious.rs crates/fault/src/noise.rs crates/fault/src/scenario.rs

crates/fault/src/lib.rs:
crates/fault/src/bitflip.rs:
crates/fault/src/burst.rs:
crates/fault/src/campaign.rs:
crates/fault/src/injector.rs:
crates/fault/src/malicious.rs:
crates/fault/src/noise.rs:
crates/fault/src/scenario.rs:
