/root/repo/target/debug/deps/ablations-06db6705aee9df27.d: crates/bench/benches/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-06db6705aee9df27.rmeta: crates/bench/benches/ablations.rs Cargo.toml

crates/bench/benches/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
