/root/repo/target/debug/deps/tt_sim-2b6b07f5d4b9f1ca.d: crates/sim/src/lib.rs crates/sim/src/bus.rs crates/sim/src/channels.rs crates/sim/src/clock.rs crates/sim/src/controller.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/frame.rs crates/sim/src/job.rs crates/sim/src/node.rs crates/sim/src/schedule.rs crates/sim/src/time.rs crates/sim/src/timeline.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/tt_sim-2b6b07f5d4b9f1ca: crates/sim/src/lib.rs crates/sim/src/bus.rs crates/sim/src/channels.rs crates/sim/src/clock.rs crates/sim/src/controller.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/frame.rs crates/sim/src/job.rs crates/sim/src/node.rs crates/sim/src/schedule.rs crates/sim/src/time.rs crates/sim/src/timeline.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/bus.rs:
crates/sim/src/channels.rs:
crates/sim/src/clock.rs:
crates/sim/src/controller.rs:
crates/sim/src/engine.rs:
crates/sim/src/error.rs:
crates/sim/src/frame.rs:
crates/sim/src/job.rs:
crates/sim/src/node.rs:
crates/sim/src/schedule.rs:
crates/sim/src/time.rs:
crates/sim/src/timeline.rs:
crates/sim/src/trace.rs:
