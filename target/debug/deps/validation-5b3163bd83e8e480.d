/root/repo/target/debug/deps/validation-5b3163bd83e8e480.d: crates/bench/src/bin/validation.rs

/root/repo/target/debug/deps/validation-5b3163bd83e8e480: crates/bench/src/bin/validation.rs

crates/bench/src/bin/validation.rs:
