/root/repo/target/debug/deps/protocol_scaling-4370640627e9e565.d: crates/bench/benches/protocol_scaling.rs

/root/repo/target/debug/deps/protocol_scaling-4370640627e9e565: crates/bench/benches/protocol_scaling.rs

crates/bench/benches/protocol_scaling.rs:
