/root/repo/target/debug/deps/gen_golden-e097efdb792288c5.d: crates/bench/src/bin/gen_golden.rs

/root/repo/target/debug/deps/gen_golden-e097efdb792288c5: crates/bench/src/bin/gen_golden.rs

crates/bench/src/bin/gen_golden.rs:
