/root/repo/target/debug/deps/table4-5d925d0de1c94cb9.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-5d925d0de1c94cb9: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
