/root/repo/target/debug/deps/comparison-0736576dc6cdc633.d: crates/bench/src/bin/comparison.rs Cargo.toml

/root/repo/target/debug/deps/libcomparison-0736576dc6cdc633.rmeta: crates/bench/src/bin/comparison.rs Cargo.toml

crates/bench/src/bin/comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
