/root/repo/target/debug/deps/lowlat_variant-2020b82bd30e8009.d: crates/bench/benches/lowlat_variant.rs

/root/repo/target/debug/deps/lowlat_variant-2020b82bd30e8009: crates/bench/benches/lowlat_variant.rs

crates/bench/benches/lowlat_variant.rs:
