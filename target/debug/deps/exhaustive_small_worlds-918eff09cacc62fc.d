/root/repo/target/debug/deps/exhaustive_small_worlds-918eff09cacc62fc.d: crates/bench/../../tests/exhaustive_small_worlds.rs

/root/repo/target/debug/deps/exhaustive_small_worlds-918eff09cacc62fc: crates/bench/../../tests/exhaustive_small_worlds.rs

crates/bench/../../tests/exhaustive_small_worlds.rs:
