/root/repo/target/debug/deps/fig3-5c3106281c87bc5e.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-5c3106281c87bc5e: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
