/root/repo/target/debug/deps/property_based-50225e57a1e5be10.d: crates/bench/../../tests/property_based.rs

/root/repo/target/debug/deps/property_based-50225e57a1e5be10: crates/bench/../../tests/property_based.rs

crates/bench/../../tests/property_based.rs:
