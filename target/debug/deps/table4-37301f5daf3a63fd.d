/root/repo/target/debug/deps/table4-37301f5daf3a63fd.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-37301f5daf3a63fd: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
