/root/repo/target/debug/deps/table1-1db58b7084d66c3e.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-1db58b7084d66c3e: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
