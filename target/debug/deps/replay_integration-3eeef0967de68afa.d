/root/repo/target/debug/deps/replay_integration-3eeef0967de68afa.d: crates/bench/../../tests/replay_integration.rs

/root/repo/target/debug/deps/replay_integration-3eeef0967de68afa: crates/bench/../../tests/replay_integration.rs

crates/bench/../../tests/replay_integration.rs:
