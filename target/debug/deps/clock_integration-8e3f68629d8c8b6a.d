/root/repo/target/debug/deps/clock_integration-8e3f68629d8c8b6a.d: crates/bench/../../tests/clock_integration.rs Cargo.toml

/root/repo/target/debug/deps/libclock_integration-8e3f68629d8c8b6a.rmeta: crates/bench/../../tests/clock_integration.rs Cargo.toml

crates/bench/../../tests/clock_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
