/root/repo/target/debug/deps/table1-f5cbb74992a805da.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-f5cbb74992a805da: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
