/root/repo/target/debug/deps/exhaustive_small_worlds-909945882144a739.d: crates/bench/../../tests/exhaustive_small_worlds.rs Cargo.toml

/root/repo/target/debug/deps/libexhaustive_small_worlds-909945882144a739.rmeta: crates/bench/../../tests/exhaustive_small_worlds.rs Cargo.toml

crates/bench/../../tests/exhaustive_small_worlds.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
