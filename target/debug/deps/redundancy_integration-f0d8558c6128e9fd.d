/root/repo/target/debug/deps/redundancy_integration-f0d8558c6128e9fd.d: crates/bench/../../tests/redundancy_integration.rs

/root/repo/target/debug/deps/redundancy_integration-f0d8558c6128e9fd: crates/bench/../../tests/redundancy_integration.rs

crates/bench/../../tests/redundancy_integration.rs:
