/root/repo/target/debug/deps/replay_integration-50dc49885d5f4ea0.d: crates/bench/../../tests/replay_integration.rs

/root/repo/target/debug/deps/replay_integration-50dc49885d5f4ea0: crates/bench/../../tests/replay_integration.rs

crates/bench/../../tests/replay_integration.rs:
