/root/repo/target/debug/deps/clock_integration-d170076b61a3de6d.d: crates/bench/../../tests/clock_integration.rs

/root/repo/target/debug/deps/clock_integration-d170076b61a3de6d: crates/bench/../../tests/clock_integration.rs

crates/bench/../../tests/clock_integration.rs:
