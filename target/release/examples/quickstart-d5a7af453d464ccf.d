/root/repo/target/release/examples/quickstart-d5a7af453d464ccf.d: crates/bench/../../examples/quickstart.rs

/root/repo/target/release/examples/quickstart-d5a7af453d464ccf: crates/bench/../../examples/quickstart.rs

crates/bench/../../examples/quickstart.rs:
