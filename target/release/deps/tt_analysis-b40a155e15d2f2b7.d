/root/repo/target/release/deps/tt_analysis-b40a155e15d2f2b7.d: crates/analysis/src/lib.rs crates/analysis/src/availability.rs crates/analysis/src/chart.rs crates/analysis/src/correlation.rs crates/analysis/src/isolation.rs crates/analysis/src/report.rs crates/analysis/src/sensitivity.rs crates/analysis/src/stats.rs crates/analysis/src/table.rs crates/analysis/src/tuning.rs

/root/repo/target/release/deps/libtt_analysis-b40a155e15d2f2b7.rlib: crates/analysis/src/lib.rs crates/analysis/src/availability.rs crates/analysis/src/chart.rs crates/analysis/src/correlation.rs crates/analysis/src/isolation.rs crates/analysis/src/report.rs crates/analysis/src/sensitivity.rs crates/analysis/src/stats.rs crates/analysis/src/table.rs crates/analysis/src/tuning.rs

/root/repo/target/release/deps/libtt_analysis-b40a155e15d2f2b7.rmeta: crates/analysis/src/lib.rs crates/analysis/src/availability.rs crates/analysis/src/chart.rs crates/analysis/src/correlation.rs crates/analysis/src/isolation.rs crates/analysis/src/report.rs crates/analysis/src/sensitivity.rs crates/analysis/src/stats.rs crates/analysis/src/table.rs crates/analysis/src/tuning.rs

crates/analysis/src/lib.rs:
crates/analysis/src/availability.rs:
crates/analysis/src/chart.rs:
crates/analysis/src/correlation.rs:
crates/analysis/src/isolation.rs:
crates/analysis/src/report.rs:
crates/analysis/src/sensitivity.rs:
crates/analysis/src/stats.rs:
crates/analysis/src/table.rs:
crates/analysis/src/tuning.rs:
