/root/repo/target/release/deps/tt_bench-03a3d9a4fa16324b.d: crates/bench/src/lib.rs crates/bench/src/comparison.rs crates/bench/src/experiments.rs crates/bench/src/parallel.rs

/root/repo/target/release/deps/libtt_bench-03a3d9a4fa16324b.rlib: crates/bench/src/lib.rs crates/bench/src/comparison.rs crates/bench/src/experiments.rs crates/bench/src/parallel.rs

/root/repo/target/release/deps/libtt_bench-03a3d9a4fa16324b.rmeta: crates/bench/src/lib.rs crates/bench/src/comparison.rs crates/bench/src/experiments.rs crates/bench/src/parallel.rs

crates/bench/src/lib.rs:
crates/bench/src/comparison.rs:
crates/bench/src/experiments.rs:
crates/bench/src/parallel.rs:
