/root/repo/target/release/deps/table2-9c90c1d77fde3be9.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-9c90c1d77fde3be9: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
