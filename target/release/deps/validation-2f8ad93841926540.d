/root/repo/target/release/deps/validation-2f8ad93841926540.d: crates/bench/src/bin/validation.rs

/root/repo/target/release/deps/validation-2f8ad93841926540: crates/bench/src/bin/validation.rs

crates/bench/src/bin/validation.rs:
