/root/repo/target/release/deps/repro_all-22c084eaea84b9c5.d: crates/bench/src/bin/repro_all.rs

/root/repo/target/release/deps/repro_all-22c084eaea84b9c5: crates/bench/src/bin/repro_all.rs

crates/bench/src/bin/repro_all.rs:
