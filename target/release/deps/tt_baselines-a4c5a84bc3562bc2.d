/root/repo/target/release/deps/tt_baselines-a4c5a84bc3562bc2.d: crates/baselines/src/lib.rs crates/baselines/src/alpha.rs crates/baselines/src/ttpc.rs

/root/repo/target/release/deps/libtt_baselines-a4c5a84bc3562bc2.rlib: crates/baselines/src/lib.rs crates/baselines/src/alpha.rs crates/baselines/src/ttpc.rs

/root/repo/target/release/deps/libtt_baselines-a4c5a84bc3562bc2.rmeta: crates/baselines/src/lib.rs crates/baselines/src/alpha.rs crates/baselines/src/ttpc.rs

crates/baselines/src/lib.rs:
crates/baselines/src/alpha.rs:
crates/baselines/src/ttpc.rs:
