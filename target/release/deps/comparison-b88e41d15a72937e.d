/root/repo/target/release/deps/comparison-b88e41d15a72937e.d: crates/bench/src/bin/comparison.rs

/root/repo/target/release/deps/comparison-b88e41d15a72937e: crates/bench/src/bin/comparison.rs

crates/bench/src/bin/comparison.rs:
