/root/repo/target/release/deps/fig3-c522366e4e8cbfa2.d: crates/bench/src/bin/fig3.rs

/root/repo/target/release/deps/fig3-c522366e4e8cbfa2: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
