/root/repo/target/release/deps/throughput-18fc8ef973194d76.d: crates/bench/src/bin/throughput.rs

/root/repo/target/release/deps/throughput-18fc8ef973194d76: crates/bench/src/bin/throughput.rs

crates/bench/src/bin/throughput.rs:
