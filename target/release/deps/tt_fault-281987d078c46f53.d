/root/repo/target/release/deps/tt_fault-281987d078c46f53.d: crates/fault/src/lib.rs crates/fault/src/bitflip.rs crates/fault/src/burst.rs crates/fault/src/campaign.rs crates/fault/src/injector.rs crates/fault/src/malicious.rs crates/fault/src/noise.rs crates/fault/src/scenario.rs

/root/repo/target/release/deps/libtt_fault-281987d078c46f53.rlib: crates/fault/src/lib.rs crates/fault/src/bitflip.rs crates/fault/src/burst.rs crates/fault/src/campaign.rs crates/fault/src/injector.rs crates/fault/src/malicious.rs crates/fault/src/noise.rs crates/fault/src/scenario.rs

/root/repo/target/release/deps/libtt_fault-281987d078c46f53.rmeta: crates/fault/src/lib.rs crates/fault/src/bitflip.rs crates/fault/src/burst.rs crates/fault/src/campaign.rs crates/fault/src/injector.rs crates/fault/src/malicious.rs crates/fault/src/noise.rs crates/fault/src/scenario.rs

crates/fault/src/lib.rs:
crates/fault/src/bitflip.rs:
crates/fault/src/burst.rs:
crates/fault/src/campaign.rs:
crates/fault/src/injector.rs:
crates/fault/src/malicious.rs:
crates/fault/src/noise.rs:
crates/fault/src/scenario.rs:
