/root/repo/target/release/deps/gen_golden-fd7673dc3ed1da24.d: crates/bench/src/bin/gen_golden.rs

/root/repo/target/release/deps/gen_golden-fd7673dc3ed1da24: crates/bench/src/bin/gen_golden.rs

crates/bench/src/bin/gen_golden.rs:
