/root/repo/target/release/deps/tt_core-f00a409a458e41cd.d: crates/core/src/lib.rs crates/core/src/alignment.rs crates/core/src/bandwidth.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/lowlat.rs crates/core/src/matrix.rs crates/core/src/membership.rs crates/core/src/penalty.rs crates/core/src/pipeline.rs crates/core/src/properties.rs crates/core/src/protocol.rs crates/core/src/syndrome.rs crates/core/src/voting.rs

/root/repo/target/release/deps/libtt_core-f00a409a458e41cd.rlib: crates/core/src/lib.rs crates/core/src/alignment.rs crates/core/src/bandwidth.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/lowlat.rs crates/core/src/matrix.rs crates/core/src/membership.rs crates/core/src/penalty.rs crates/core/src/pipeline.rs crates/core/src/properties.rs crates/core/src/protocol.rs crates/core/src/syndrome.rs crates/core/src/voting.rs

/root/repo/target/release/deps/libtt_core-f00a409a458e41cd.rmeta: crates/core/src/lib.rs crates/core/src/alignment.rs crates/core/src/bandwidth.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/lowlat.rs crates/core/src/matrix.rs crates/core/src/membership.rs crates/core/src/penalty.rs crates/core/src/pipeline.rs crates/core/src/properties.rs crates/core/src/protocol.rs crates/core/src/syndrome.rs crates/core/src/voting.rs

crates/core/src/lib.rs:
crates/core/src/alignment.rs:
crates/core/src/bandwidth.rs:
crates/core/src/config.rs:
crates/core/src/error.rs:
crates/core/src/lowlat.rs:
crates/core/src/matrix.rs:
crates/core/src/membership.rs:
crates/core/src/penalty.rs:
crates/core/src/pipeline.rs:
crates/core/src/properties.rs:
crates/core/src/protocol.rs:
crates/core/src/syndrome.rs:
crates/core/src/voting.rs:
