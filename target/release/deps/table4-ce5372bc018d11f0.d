/root/repo/target/release/deps/table4-ce5372bc018d11f0.d: crates/bench/src/bin/table4.rs

/root/repo/target/release/deps/table4-ce5372bc018d11f0: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
