/root/repo/target/release/deps/tt_sim-73c4ee5ea9410534.d: crates/sim/src/lib.rs crates/sim/src/bus.rs crates/sim/src/channels.rs crates/sim/src/clock.rs crates/sim/src/controller.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/frame.rs crates/sim/src/job.rs crates/sim/src/node.rs crates/sim/src/schedule.rs crates/sim/src/time.rs crates/sim/src/timeline.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/libtt_sim-73c4ee5ea9410534.rlib: crates/sim/src/lib.rs crates/sim/src/bus.rs crates/sim/src/channels.rs crates/sim/src/clock.rs crates/sim/src/controller.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/frame.rs crates/sim/src/job.rs crates/sim/src/node.rs crates/sim/src/schedule.rs crates/sim/src/time.rs crates/sim/src/timeline.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/libtt_sim-73c4ee5ea9410534.rmeta: crates/sim/src/lib.rs crates/sim/src/bus.rs crates/sim/src/channels.rs crates/sim/src/clock.rs crates/sim/src/controller.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/frame.rs crates/sim/src/job.rs crates/sim/src/node.rs crates/sim/src/schedule.rs crates/sim/src/time.rs crates/sim/src/timeline.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/bus.rs:
crates/sim/src/channels.rs:
crates/sim/src/clock.rs:
crates/sim/src/controller.rs:
crates/sim/src/engine.rs:
crates/sim/src/error.rs:
crates/sim/src/frame.rs:
crates/sim/src/job.rs:
crates/sim/src/node.rs:
crates/sim/src/schedule.rs:
crates/sim/src/time.rs:
crates/sim/src/timeline.rs:
crates/sim/src/trace.rs:
