/root/repo/target/release/deps/ttdiag-f733b774d9508d7b.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/ttdiag-f733b774d9508d7b: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
