/root/repo/target/release/deps/table1-8921b9c8aafaf24b.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-8921b9c8aafaf24b: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
